#!/usr/bin/env python
"""Quickstart: run one spatial join through all three systems.

Generates a small NYC-like workload (taxi pickup points × census-block
polygons), executes the full distributed pipeline of HadoopGIS,
SpatialHadoop and SpatialSpark on the simulated workstation, and shows
that all three return the identical join result with very different
(simulated) costs.

Run:  python examples/quickstart.py
"""

from repro import spatial_join
from repro.data import census_blocks_batch, taxi_points_batch
from repro.systems import ALL_SYSTEMS


def main() -> None:
    # 1. A toy workload: 2,000 pickup points over 200 census blocks,
    #    generated straight into columnar GeometryBatch form — coordinates
    #    live in one packed array and every MBR is computed exactly once.
    #    (The object-based taxi_points / census_blocks generators still
    #    exist and produce bit-identical joins; batches are just faster.)
    points = taxi_points_batch(2_000, seed=7)
    blocks = census_blocks_batch(200, seed=8)
    print(f"workload: {len(points):,} points × {len(blocks):,} polygons\n")

    # 2. Run each system end to end on the simulated workstation (HDFS +
    #    MapReduce/Spark + the hardware model); spatial_join stages the
    #    data, runs the full pipeline, and costs the clock in one call.
    reports = {}
    for name in sorted(ALL_SYSTEMS):
        report = spatial_join(points, blocks, system=name, block_size=1 << 13)
        reports[name] = report
        b = report.breakdown_seconds()
        # SpatialSpark's asynchronous stages are all accounted to the
        # join group, matching how the paper reports it (TOT only).
        print(
            f"{name:<14} status={report.status:<6} "
            f"pairs={len(report.pairs or ()):>5}  "
            f"simulated: index A {b['IA']:7.2f}s + index B {b['IB']:7.2f}s "
            f"+ join {b['DJ']:7.2f}s = {b['TOT']:7.2f}s"
        )

    # 3. Every system answers the same query with the same result.
    results = {r.pairs for r in reports.values()}
    assert len(results) == 1, "systems disagree!"
    print(f"\nall three systems agree: {len(reports['SpatialSpark'].pairs):,} "
          "matching (point, polygon) pairs")

    # 4. Peek at the design differences through the resource counters.
    print("\nresource profile (per system):")
    for name, report in reports.items():
        c = report.counters
        print(
            f"  {name:<14} hdfs_read={c['hdfs.bytes_read']:>10,.0f}B "
            f"shuffle_disk={c['shuffle.bytes_disk']:>10,.0f}B "
            f"shuffle_mem={c['shuffle.bytes_mem']:>10,.0f}B "
            f"mr_jobs={c['mr.jobs']:.0f} spark_stages={c['spark.stages']:.0f}"
        )


if __name__ == "__main__":
    main()
