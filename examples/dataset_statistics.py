#!/usr/bin/env python
"""Workload characterization: what the synthetic datasets look like.

Prints the statistics that drive the reproduction's extrapolation
machinery — record sizes (matching Table 1's bytes/record), spatial skew
(the taxi hotspots), a text density map, and the analytic join-candidate
estimate next to the measured value.

Run:  python examples/dataset_statistics.py
"""

import numpy as np

from repro.data import (
    census_blocks,
    dataset,
    describe,
    density_grid,
    estimate_join_candidates,
    linear_water,
    skew_ratio,
    taxi_points,
    tiger_edges,
)
from repro.geometry import MBRArray
from repro.index import STRtree


def text_heatmap(grid: np.ndarray) -> str:
    """Render a density grid with block characters (top row = north)."""
    shades = " .:-=+*#%@"
    peak = grid.max() or 1
    rows = []
    for row in grid[::-1]:
        rows.append("".join(shades[min(int(v / peak * 9.999), 9)] for v in row))
    return "\n".join(rows)


def main() -> None:
    generators = {
        "taxi": taxi_points(6000, seed=1),
        "nycb": census_blocks(600, seed=2),
        "edges": tiger_edges(4000, seed=3),
        "linearwater": linear_water(1200, seed=4),
    }
    for name, geoms in generators.items():
        spec = dataset(name)
        paper_bpr = spec.logical_bytes / spec.logical_records
        stats = describe(geoms)
        print(f"=== {name} "
              f"(paper: {spec.logical_records:,} records, "
              f"{paper_bpr:.0f} B/record) ===")
        print(stats.render())
        print(f"skew:    max/mean cell density = {skew_ratio(geoms):.1f}\n")

    print("taxi pickup density (NYC extent, darker = denser):")
    print(text_heatmap(density_grid(generators["taxi"], 48, 16)))

    # Join selectivity: analytic model vs measured candidates.
    edges, water = generators["edges"], generators["linearwater"]
    est = estimate_join_candidates(edges, water)
    tree = STRtree(MBRArray.from_geometries(water))
    measured = sum(tree.query(g.mbr).size for g in edges)
    print(f"\nedges × linearwater MBR-join candidates: "
          f"analytic estimate {est:,.0f} vs measured {measured:,} "
          f"(clustering pushes the measured value above the uniform model)")


if __name__ == "__main__":
    main()
