#!/usr/bin/env python
"""The paper's second experiment: TIGER edges × linearwater intersection.

A polyline-with-polyline intersection join (roads crossing waterways).
This example runs it directly on the public API — no experiment harness —
to show how the pieces compose: synthetic TIGER-like data, one system per
run, and the counters/clock that explain *where* the time goes.

Run:  python examples/edges_linearwater_join.py
"""

from repro.data import linear_water, tiger_edges
from repro.systems import RunEnvironment, SpatialHadoop, SpatialSpark


def describe(report) -> None:
    report.costed()
    print(f"\n=== {report.system} ===")
    print(f"result pairs: {len(report.pairs):,}")
    print("phase breakdown (simulated workstation seconds):")
    for phase in report.clock.phases:
        if phase.seconds < 0.05:
            continue
        print(f"  {phase.name:<42} {phase.seconds:>8.2f}s  "
              f"(tasks={phase.tasks}, group={phase.group})")
    c = report.counters
    print(f"geometry work: {c['geom.seg_pair_tests']:,.0f} segment-pair tests, "
          f"{c['geom.mbr_tests']:,.0f} MBR refinement tests")
    print(f"I/O: {c['hdfs.bytes_read']:,.0f} B read from HDFS, "
          f"{c['shuffle.bytes_disk'] + c['shuffle.bytes_mem']:,.0f} B shuffled")


def main() -> None:
    edges = tiger_edges(6_000, seed=17)
    water = linear_water(2_000, seed=18)
    print(f"workload: {len(edges):,} road edges × {len(water):,} waterway "
          "polylines (synthetic TIGER)")

    for system in (SpatialHadoop(), SpatialSpark()):
        env = RunEnvironment.create(block_size=1 << 15)
        describe(system.run(env, edges, water))

    # SpatialHadoop also offers a synchronized R-tree local join; the
    # result is identical, only the filter cost profile changes.
    env = RunEnvironment.create(block_size=1 << 15)
    alt = SpatialHadoop(local_algorithm="sync_rtree").run(env, edges, water)
    describe(alt)


if __name__ == "__main__":
    main()
