#!/usr/bin/env python
"""A tour of the generalized framework (the paper's Fig. 1).

Prints each system's pipeline in three-stage framework terms — which
component runs where (mapper / reducer / job master / executor / serial
local program) and what touches HDFS — then demonstrates the substrate
building blocks directly: the simulated HDFS, a MapReduce job, a Spark
RDD chain, and the partitioning/local-join toolbox.

Run:  python examples/framework_tour.py
"""

import numpy as np

from repro.cluster import SimClock
from repro.core import local_join, make_partitioner
from repro.data import taxi_points
from repro.experiments import fig1
from repro.geometry import MBR, MBRArray, JtsLikeEngine
from repro.hdfs import SimulatedHDFS
from repro.mapreduce import MapReduceJob
from repro.metrics import Counters
from repro.spark import SparkContext


def main() -> None:
    # ---- The Fig. 1 reproduction -------------------------------------
    print(fig1())

    # ---- Substrate tour ----------------------------------------------
    print("\n--- substrate tour ---------------------------------------")
    counters = Counters()
    hdfs = SimulatedHDFS(block_size=256, counters=counters)
    hdfs.write_file("/demo/lines", [f"record {i}" for i in range(40)])
    print(f"HDFS: wrote /demo/lines as {hdfs.num_blocks('/demo/lines')} blocks, "
          f"{counters['hdfs.bytes_written']:.0f} B charged")

    job = MapReduceJob(
        "demo",
        hdfs=hdfs, counters=counters, clock=SimClock(),
        inputs=["/demo/lines"],
        map_task=lambda d: ((len(r) % 3, 1) for r in d.records),
        reduce_task=lambda k, vs: [(k, sum(vs))],
        output_path="/demo/out",
    )
    result = job.run()
    print(f"MapReduce: {result.splits} map tasks, {result.reducers} reducers, "
          f"output {dict(hdfs.read_all('/demo/out'))}")

    sc = SparkContext(counters=counters, hdfs=hdfs, default_parallelism=4)
    grouped = (
        sc.from_hdfs("/demo/lines")
        .map(lambda line: (len(line) % 3, line))
        .groupByKey(3)
        .mapValues(len)
    )
    print(f"Spark: lazy lineage → {dict(grouped.collect())}, "
          f"{counters['spark.stages']:.0f} stages, "
          f"{counters['shuffle.bytes_mem']:.0f} B shuffled in memory")

    # ---- Partitioning + local join toolbox ---------------------------
    pts = taxi_points(3_000, seed=5)
    boxes = MBRArray.from_geometries(pts)
    universe = boxes.extent()
    for name in ("grid", "bsp", "str", "hilbert"):
        part = make_partitioner(name).partition(boxes, 16, universe)
        kind = "tiling" if part.tiles else "tight"
        print(f"partitioner {name:<8} → {len(part):>3} partitions ({kind})")

    left = pts[:1500]
    right = pts[1500:]
    engine = JtsLikeEngine()
    n = len(local_join("plane_sweep",
                       left, right, engine))
    print(f"local join (plane sweep) on split point sets: {n} coincident pairs")


if __name__ == "__main__":
    main()
