#!/usr/bin/env python
"""Scalability study: every experiment × system × cluster configuration.

Regenerates both paper tables in one sweep and prints the running-text
speedup claims next to the reproduced values (the EXPERIMENTS.md data).
Slower than the other examples (~2-4 minutes): it executes 40 distributed
joins.

Run:  python examples/scalability_study.py
"""

from repro.experiments import headline_comparisons, table1, table2, table3


def main() -> None:
    print(table1())

    print("\nrunning Table 2 (24 cells)...")
    t2 = table2(exec_records={"taxi-nycb": 2000, "edges-linearwater": 6000}, seed=1)
    print()
    print(t2.render())

    print("\nrunning Table 3 (12 cells)...")
    t3 = table3(
        exec_records={"taxi1m-nycb": 2000, "edges0.1-linearwater0.1": 6000}, seed=1
    )
    print()
    print(t3.render())

    print("\nheadline claims (Section III running text):")
    print(f"{'claim':<64}{'paper':>8}{'ours':>8}")
    for label, paper, ours in headline_comparisons(t2, t3):
        ours_text = f"{ours:.2f}x" if ours else "n/a"
        print(f"{label:<64}{paper:>7.2f}x{ours_text:>8}")

    print("\nfailure matrix (emergent, not hard-coded):")
    for (exp, system, config), kind in sorted(t2.failure_matrix().items()):
        if kind:
            print(f"  {exp:<20} {system:<14} {config:<7} -> {kind}")


if __name__ == "__main__":
    main()
