#!/usr/bin/env python
"""The paper's first experiment: taxi pickups × NYC census blocks.

Reproduces the taxi-nycb column of Tables 2 and 3 in miniature: runs the
point-in-polygon join at a configurable execution scale, extrapolates to
the paper's dataset sizes (169.7M points × 38,839 blocks) and prints the
per-cell outcome for every cluster configuration — including HadoopGIS's
broken pipes and SpatialSpark's out-of-memory failures.

Run:  python examples/taxi_nycb_join.py [exec_records]
"""

import sys

from repro.experiments import run_experiment

CONFIGS = ["WS", "EC2-10", "EC2-8", "EC2-6"]
SYSTEMS = ["HadoopGIS", "SpatialHadoop", "SpatialSpark"]


def main(exec_records: int = 2000) -> None:
    print("experiment: taxi-nycb  (169,720,892 points × 38,839 polygons, "
          f"executed at {exec_records:,} records/dataset)\n")
    print(f"{'system':<15}{'config':<8}{'outcome':<14}"
          f"{'IA':>8}{'IB':>8}{'DJ':>8}{'TOT':>8}")
    for system in SYSTEMS:
        for config in CONFIGS:
            report = run_experiment(
                "taxi-nycb", system, config, exec_records=exec_records, seed=1
            )
            if report.ok:
                b = report.breakdown_seconds()
                print(f"{system:<15}{config:<8}{'ok':<14}"
                      f"{b['IA']:>8,.0f}{b['IB']:>8,.0f}"
                      f"{b['DJ']:>8,.0f}{b['TOT']:>8,.0f}")
            else:
                print(f"{system:<15}{config:<8}{report.failure_kind:<14}"
                      f"{'-':>8}{'-':>8}{'-':>8}{'-':>8}")
        print()

    print("paper (Table 2): SpatialHadoop 3327/2361/2472/3349s; "
          "SpatialSpark 3098/813/-/-; HadoopGIS failed everywhere.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
