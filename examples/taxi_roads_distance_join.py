#!/usr/bin/env python
"""Distance join: match taxi pickups to nearby road segments.

The paper's introduction motivates exactly this workload — "matching taxi
pickup/drop-off locations with road segments through point-to-nearest-
polyline distance computation" — but its experiments only evaluate the
intersects predicate.  The reproduction supports ε-distance joins through
the same three systems; this example runs the workload and sweeps the
matching radius.

Run:  python examples/taxi_roads_distance_join.py
"""

from repro.core import within_distance
from repro.data import taxi_points, tiger_edges
from repro.geometry import MBR
from repro.systems import ALL_SYSTEMS, RunEnvironment, make_system

#: Manhattan-ish window, where the taxi hotspots live.
MANHATTAN = MBR(-74.05, 40.66, -73.90, 40.83)


def main() -> None:
    pickups = taxi_points(2_000, seed=41)
    roads = tiger_edges(1_500, seed=42, domain=MANHATTAN)
    print(f"workload: {len(pickups):,} pickups × {len(roads):,} road segments "
          "(synthetic NYC)\n")

    # 1. All three systems answer the same ε-join identically.
    radius = 0.002  # ≈ 200 m in degrees at NYC's latitude
    results = {}
    for name in sorted(ALL_SYSTEMS):
        env = RunEnvironment.create(block_size=1 << 14)
        report = make_system(name).run(env, pickups, roads, within_distance(radius))
        report.costed()
        results[name] = report
        print(f"{name:<14} matches={len(report.pairs):>6,}  "
              f"simulated={report.clock.total_seconds:8.1f}s  "
              f"distance tests={report.counters['geom.dist_tests']:,.0f}")
    assert len({r.pairs for r in results.values()}) == 1
    print("\nall three systems agree.\n")

    # 2. Radius sweep: how match counts and filter work grow with ε.
    print(f"{'radius (deg)':>14}{'matched pairs':>15}{'candidates':>13}{'sim s':>8}")
    for radius in (0.0005, 0.001, 0.002, 0.004, 0.008):
        env = RunEnvironment.create(block_size=1 << 14)
        report = make_system("SpatialSpark").run(
            env, pickups, roads, within_distance(radius)
        ).costed()
        print(f"{radius:>14}{len(report.pairs):>15,}"
              f"{report.counters['join.candidates']:>13,.0f}"
              f"{report.clock.total_seconds:>8.1f}")

    # 3. Nearest-road assignment: pick each pickup's closest matched road.
    from collections import defaultdict

    from repro.geometry import geometry_distance

    pairs = results["SpatialSpark"].pairs
    nearest = {}
    by_point = defaultdict(list)
    for i, j in pairs:
        by_point[i].append(j)
    for i, road_ids in by_point.items():
        nearest[i] = min(
            road_ids, key=lambda j: geometry_distance(pickups[i], roads[j])
        )
    coverage = len(nearest) / len(pickups)
    print(f"\npickups with a road within {0.002} deg: {coverage:.1%}; "
          f"example assignment: pickup 0 -> road {nearest.get(0, 'none')}")


if __name__ == "__main__":
    main()
