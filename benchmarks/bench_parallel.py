#!/usr/bin/env python
"""Real wall-clock speedup of the task execution backends.

Unlike the ``bench_table*`` modules (which report *simulated* seconds
from the cost model), this script measures how long the reproduction
itself takes to run one join as the executor backend and worker count
change.  The simulated outputs are bit-identical across backends by
construction — wall-clock time is the only thing at stake, and the
per-stage task timings from ``RunReport.engine_profile["exec"]`` show
where it goes.

Run:  PYTHONPATH=src python benchmarks/bench_parallel.py [--out FILE]

Prints (and optionally writes) a JSON document::

    {
      "workload": {...}, "cpu_count": 8, "affinity_cores": 8,
      "undersubscribed": false,
      "runs": [{"backend": "serial", "workers": 1, "wall_seconds": ...,
                "task_seconds": ..., "speedup": 1.0, ...}, ...]
    }

Speedups are relative to the serial backend.  The process backend rides
the warm shared-memory pool (:mod:`repro.exec.shm_pool`) and is the fast
path on multi-core hosts; thread workers overlap only in GIL-releasing
NumPy kernels.

**Environment honesty**: speedup numbers are meaningless when the
process has fewer usable cores than workers.  The document records both
``os.cpu_count()`` and ``len(os.sched_getaffinity(0))`` and flags every
row (and the whole document) ``undersubscribed`` when affinity cores <
workers; undersubscribed rows are exempt from the ``slower_than_serial``
regression flag and from the ``BENCH_PARALLEL_STRICT`` gate — a 1-core
container cannot fail a parallelism gate it cannot exercise.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro import spatial_join
from repro.data import census_blocks, taxi_points

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (backend, workers) grid; serial first so speedups have a baseline.
GRID = [
    ("serial", 1),
    ("thread", 4),
    ("process", 2),
    ("process", 4),
]


def _affinity_cores() -> int:
    """Cores this process may actually run on (≤ ``os.cpu_count()``)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure(points, blocks, *, system: str, backend: str, workers: int,
            repeats: int = 1) -> dict:
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        report = spatial_join(
            points, blocks, system=system, backend=backend, workers=workers,
            block_size=1 << 15,
        )
        wall = time.perf_counter() - start
        if best is None or wall < best[0]:
            best = (wall, report)
    wall, report = best
    exec_profile = report.engine_profile["exec"]
    return {
        "backend": backend,
        "workers": workers,
        "wall_seconds": round(wall, 3),
        "status": report.status,
        "pairs": len(report.pairs or ()),
        "stages": exec_profile["stages"],
        "tasks": exec_profile["tasks"],
        # summed per-task body time; > wall_seconds means tasks overlapped
        "task_seconds": round(exec_profile["task_seconds"], 3),
        "simulated_seconds": round(report.clock.total_seconds, 3),
        "warnings": list(report.warnings),
    }


def classify_rows(runs: list[dict], affinity: int) -> list[dict]:
    """Annotate measured rows with speedup and gate eligibility.

    The first row is the serial baseline.  A parallel config counts as
    ``slower_than_serial`` only when the host actually granted it the
    cores it asked for; undersubscribed rows are recorded but exempt —
    a 1-core container cannot fail a parallelism gate it cannot
    exercise.
    """
    baseline = None
    for row in runs:
        if baseline is None:
            baseline = row["wall_seconds"]
        row["speedup"] = round(baseline / max(row["wall_seconds"], 1e-9), 2)
        row["undersubscribed"] = row["workers"] > 1 and affinity < row["workers"]
        row["slower_than_serial"] = (
            not row["undersubscribed"] and row["speedup"] < 1.0
        )
    return runs


def strict_gate(runs: list[dict], env=None) -> int:
    """Exit code for BENCH_PARALLEL_STRICT: 1 iff an *eligible* row lost.

    Rows flagged ``undersubscribed`` never trip the gate, with or
    without the environment variable.
    """
    env = os.environ if env is None else env
    if not env.get("BENCH_PARALLEL_STRICT"):
        return 0
    return 1 if any(r["slower_than_serial"] for r in runs) else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--exec-records", type=int, default=20_000,
                        help="records per dataset (default 20000)")
    parser.add_argument("--system", default="SpatialHadoop",
                        choices=("HadoopGIS", "SpatialHadoop", "SpatialSpark"))
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed repetitions per config (best is kept)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_parallel.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args()

    points = taxi_points(args.exec_records, seed=3)
    blocks = census_blocks(args.exec_records, seed=4)
    affinity = _affinity_cores()

    runs = []
    for backend, workers in GRID:
        runs.append(measure(points, blocks, system=args.system,
                            backend=backend, workers=workers,
                            repeats=args.repeats))
    classify_rows(runs, affinity)
    for row in runs:
        note = " [undersubscribed]" if row["undersubscribed"] else ""
        print(f"{row['backend']:>8} x{row['workers']}: "
              f"{row['wall_seconds']:7.2f}s "
              f"(speedup {row['speedup']:.2f}x, pairs {row['pairs']:,})"
              f"{note}")

    pair_sets = {r["pairs"] for r in runs}
    assert len(pair_sets) == 1, f"backends disagreed on results: {pair_sets}"

    undersubscribed = any(r["undersubscribed"] for r in runs)
    if undersubscribed:
        print(f"::warning title=bench_parallel undersubscribed::"
              f"affinity grants {affinity} core(s) but the grid asks for "
              f"up to {max(w for _, w in GRID)} workers — speedup numbers "
              f"on this host are not meaningful and the strict gate is "
              f"skipped for affected rows")

    # Parallel configurations that lose to serial *with enough cores* are
    # a regression signal, not a formatting detail: surface them loudly
    # in CI logs (GitHub annotation syntax) and, when
    # BENCH_PARALLEL_STRICT is set, fail the job instead of letting the
    # slowdown ride along in the artifact.
    slow = [r for r in runs if r["slower_than_serial"]]
    for row in slow:
        print(f"::warning title=bench_parallel slowdown::"
              f"{row['backend']} x{row['workers']} ran "
              f"{row['speedup']:.2f}x vs serial "
              f"({row['wall_seconds']:.2f}s, cpu_count={os.cpu_count()}, "
              f"affinity_cores={affinity})")

    document = {
        "workload": {
            "system": args.system,
            "exec_records": args.exec_records,
            "datasets": "taxi_points x census_blocks",
        },
        "cpu_count": os.cpu_count(),
        "affinity_cores": affinity,
        "undersubscribed": undersubscribed,
        "runs": runs,
    }
    text = json.dumps(document, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    code = strict_gate(runs)
    if code:
        print(f"BENCH_PARALLEL_STRICT: {len(slow)} configuration(s) "
              f"slower than serial — failing")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
