#!/usr/bin/env python
"""Real wall-clock speedup of the task execution backends.

Unlike the ``bench_table*`` modules (which report *simulated* seconds
from the cost model), this script measures how long the reproduction
itself takes to run one join as the executor backend and worker count
change.  The simulated outputs are bit-identical across backends by
construction — wall-clock time is the only thing at stake, and the
per-stage task timings from ``RunReport.engine_profile["exec"]`` show
where it goes.

Run:  PYTHONPATH=src python benchmarks/bench_parallel.py [--out FILE]

Prints (and optionally writes) a JSON document::

    {
      "workload": {...}, "cpu_count": 8,
      "runs": [{"backend": "serial", "workers": 1, "wall_seconds": ...,
                "task_seconds": ..., "speedup": 1.0, ...}, ...]
    }

Speedups are relative to the serial backend.  Thread workers are bounded
by the GIL (expect ~1×); the fork-based process backend is where real
multi-core speedup appears — on a single-core host every backend
necessarily measures ~1×, so the JSON records ``cpu_count`` alongside.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro import spatial_join
from repro.data import census_blocks, taxi_points

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (backend, workers) grid; serial first so speedups have a baseline.
GRID = [
    ("serial", 1),
    ("thread", 4),
    ("process", 2),
    ("process", 4),
]


def measure(points, blocks, *, system: str, backend: str, workers: int) -> dict:
    start = time.perf_counter()
    report = spatial_join(
        points, blocks, system=system, backend=backend, workers=workers,
        block_size=1 << 15,
    )
    wall = time.perf_counter() - start
    exec_profile = report.engine_profile["exec"]
    return {
        "backend": backend,
        "workers": workers,
        "wall_seconds": round(wall, 3),
        "status": report.status,
        "pairs": len(report.pairs or ()),
        "stages": exec_profile["stages"],
        "tasks": exec_profile["tasks"],
        # summed per-task body time; > wall_seconds means tasks overlapped
        "task_seconds": round(exec_profile["task_seconds"], 3),
        "simulated_seconds": round(report.clock.total_seconds, 3),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--exec-records", type=int, default=20_000,
                        help="records per dataset (default 20000)")
    parser.add_argument("--system", default="SpatialHadoop",
                        choices=("HadoopGIS", "SpatialHadoop", "SpatialSpark"))
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_parallel.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args()

    points = taxi_points(args.exec_records, seed=3)
    blocks = census_blocks(args.exec_records, seed=4)

    runs = []
    baseline = None
    for backend, workers in GRID:
        row = measure(points, blocks, system=args.system,
                      backend=backend, workers=workers)
        if baseline is None:
            baseline = row["wall_seconds"]
        row["speedup"] = round(baseline / max(row["wall_seconds"], 1e-9), 2)
        # Flag GIL-bound (or oversubscribed) configurations explicitly so
        # downstream tables don't silently present a slowdown as a win.
        row["slower_than_serial"] = row["speedup"] < 1.0
        runs.append(row)
        print(f"{backend:>8} x{workers}: {row['wall_seconds']:7.2f}s "
              f"(speedup {row['speedup']:.2f}x, pairs {row['pairs']:,})")

    pair_sets = {r["pairs"] for r in runs}
    assert len(pair_sets) == 1, f"backends disagreed on results: {pair_sets}"

    # Parallel configurations that lose to serial are a regression signal,
    # not a formatting detail: surface them loudly in CI logs (GitHub
    # annotation syntax) and, when BENCH_PARALLEL_STRICT is set, fail the
    # job instead of letting the slowdown ride along in the artifact.
    slow = [r for r in runs if r["slower_than_serial"]]
    for row in slow:
        print(f"::warning title=bench_parallel slowdown::"
              f"{row['backend']} x{row['workers']} ran "
              f"{row['speedup']:.2f}x vs serial "
              f"({row['wall_seconds']:.2f}s, cpu_count={os.cpu_count()})")

    document = {
        "workload": {
            "system": args.system,
            "exec_records": args.exec_records,
            "datasets": "taxi_points x census_blocks",
        },
        "cpu_count": os.cpu_count(),
        "runs": runs,
    }
    text = json.dumps(document, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    if slow and os.environ.get("BENCH_PARALLEL_STRICT"):
        print(f"BENCH_PARALLEL_STRICT: {len(slow)} configuration(s) "
              f"slower than serial — failing")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
