"""Ablation — geometry library choice (JTS-like vs GEOS-like).

Section II.C attributes much of HadoopGIS's slowness to GEOS being
"several times" slower than JTS.  Our two engines reproduce the effect
with real execution-path differences (vectorized vs scalar); this bench
measures the actual wall-clock ratio and the end-to-end impact of
swapping the engine inside an identical local join.
"""

import numpy as np
import pytest

from repro.core import indexed_nested_loop_join
from repro.data import census_blocks, linear_water, tiger_edges
from repro.geometry import GeosLikeEngine, JtsLikeEngine

from conftest import emit, verify


@pytest.fixture(scope="module")
def pip_batch():
    rng = np.random.default_rng(31)
    poly = census_blocks(60, seed=32)[17]
    box = poly.mbr.expanded(0.002)
    xy = rng.uniform(
        [box.xmin, box.ymin], [box.xmax, box.ymax], size=(20_000, 2)
    )
    return poly, xy


@pytest.mark.parametrize("engine_cls", [JtsLikeEngine, GeosLikeEngine])
def test_point_in_polygon_batch(benchmark, engine_cls, pip_batch):
    poly, xy = pip_batch
    engine = engine_cls()
    mask = benchmark(engine.points_in_polygon, poly, xy)
    assert 0 < mask.sum() < len(xy)


@pytest.mark.parametrize("engine_cls", [JtsLikeEngine, GeosLikeEngine])
def test_polyline_refinement(benchmark, engine_cls):
    edges = tiger_edges(700, seed=33)
    water = linear_water(250, seed=34)
    engine = engine_cls()
    result = benchmark.pedantic(
        indexed_nested_loop_join, args=(edges, water, engine), rounds=2, iterations=1
    )
    assert isinstance(result, list)


def test_engines_identical_results_and_speed_gap(benchmark, pip_batch):
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    poly, xy = pip_batch
    import time

    jts, geos = JtsLikeEngine(), GeosLikeEngine()
    t0 = time.perf_counter()
    a = jts.points_in_polygon(poly, xy)
    t_jts = time.perf_counter() - t0
    t0 = time.perf_counter()
    b = geos.points_in_polygon(poly, xy)
    t_geos = time.perf_counter() - t0
    np.testing.assert_array_equal(a, b)
    emit(
        f"Engine ablation (20k pip tests): jts={t_jts*1e3:.1f}ms "
        f"geos={t_geos*1e3:.1f}ms  real slowdown {t_geos/t_jts:.1f}x "
        f"(simulated cost ratio fixed at 4x per the paper)"
    )
    # The scalar path must actually be slower, not just costed slower.
    assert t_geos > 2 * t_jts
