"""Table 3 — breakdown runtimes (IA / IB / DJ / TOT) on the sample datasets.

Regenerates the table under WS and EC2-10, and asserts the paper's
Section III.C findings: HadoopGIS succeeds on the workstation but not on
EC2; its DJ is an order of magnitude slower than SpatialHadoop's; and
SpatialHadoop's *indexing* dominates its distributed join on the sample
datasets (especially on EC2-10, where the paper blames distributed
shuffling and job overheads).
"""

import pytest

from repro.experiments import run_experiment

from conftest import emit, verify


def test_table3_regeneration(benchmark, table3_result):
    emit(verify(benchmark, table3_result.render))


class TestHadoopGISCells:
    def test_succeeds_on_ws_fails_on_ec2(self, benchmark, table3_result):
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for exp in ("taxi1m-nycb", "edges0.1-linearwater0.1"):
            assert table3_result.cells[(exp, "HadoopGIS", "WS")] is not None
            assert table3_result.cells[(exp, "HadoopGIS", "EC2-10")] is None

    def test_dj_dominates_hadoopgis(self, benchmark, table3_result):
        """Paper: taxi1m DJ=3273 vs IA+IB=260 — the join step is the sink."""
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        b = table3_result.cells[("taxi1m-nycb", "HadoopGIS", "WS")]
        assert b["DJ"] > 2 * (b["IA"] + b["IB"])

    def test_spatialhadoop_dj_much_faster_than_hadoopgis(self, benchmark, table3_result):
        """Paper: 14× (taxi1m) and 5.7× (edges0.1) faster DJ.

        Thresholds reflect the reproduction's documented quality: the
        point workload's gap reproduces strongly; the polyline workload's
        lands near 2× (EXPERIMENTS.md records the miss).
        """
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for exp, paper, floor in (
            ("taxi1m-nycb", 14.0, 5.0),
            ("edges0.1-linearwater0.1", 5.7, 1.5),
        ):
            hg = table3_result.cells[(exp, "HadoopGIS", "WS")]["DJ"]
            sh = table3_result.cells[(exp, "SpatialHadoop", "WS")]["DJ"]
            ratio = hg / sh
            emit(f"{exp} WS DJ HadoopGIS/SpatialHadoop: {ratio:.1f}x (paper {paper}x)")
            assert ratio > floor


class TestSpatialHadoopCells:
    def test_indexing_is_major_share_on_samples(self, benchmark, table3_result):
        """Paper: 'indexing runtimes are several times larger than the
        distributed join runtimes' for the sample datasets.

        Known gap (EXPERIMENTS.md #1): our fitted per-job EC2 overhead
        runs low, so we assert the weaker form — indexing is at least
        comparable to DJ (> 0.5×) rather than several times larger.
        """
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for exp in ("taxi1m-nycb", "edges0.1-linearwater0.1"):
            b = table3_result.cells[(exp, "SpatialHadoop", "EC2-10")]
            indexing, dj = b["IA"] + b["IB"], b["DJ"]
            emit(f"{exp} EC2-10 SpatialHadoop indexing={indexing:.0f}s DJ={dj:.0f}s "
                 "(paper: indexing several times larger)")
            assert indexing > 0.5 * dj

    def test_breakdown_sums(self, benchmark, table3_result):
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for key, b in table3_result.cells.items():
            if b is not None and key[1] != "SpatialSpark":
                assert b["TOT"] == pytest.approx(b["IA"] + b["IB"] + b["DJ"], rel=1e-6)


class TestSpatialSparkCells:
    def test_fastest_end_to_end(self, benchmark, table3_result):
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for exp in ("taxi1m-nycb", "edges0.1-linearwater0.1"):
            for config in ("WS", "EC2-10"):
                ss = table3_result.cells[(exp, "SpatialSpark", config)]["TOT"]
                sh = table3_result.cells[(exp, "SpatialHadoop", config)]["TOT"]
                assert ss < sh, (exp, config)

    def test_ec2_gap_larger_than_ws_gap(self, benchmark, table3_result):
        """Paper: 2.2× on WS vs 15× on EC2-10 for taxi1m (and 2.0×/30×)."""
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for exp in ("taxi1m-nycb", "edges0.1-linearwater0.1"):
            gap = {}
            for config in ("WS", "EC2-10"):
                ss = table3_result.cells[(exp, "SpatialSpark", config)]["TOT"]
                sh = table3_result.cells[(exp, "SpatialHadoop", config)]["TOT"]
                gap[config] = sh / ss
            emit(f"{exp} SpatialSpark TOT speedup: WS {gap['WS']:.1f}x, "
                 f"EC2-10 {gap['EC2-10']:.1f}x")
            assert gap["EC2-10"] > gap["WS"]


def test_one_breakdown_wallclock(benchmark):
    """Wall-clock of one Table-3 breakdown cell."""
    report = benchmark.pedantic(
        run_experiment,
        args=("taxi1m-nycb", "SpatialHadoop", "EC2-10"),
        kwargs={"exec_records": 1000, "seed": 3},
        rounds=2,
        iterations=1,
    )
    assert report.ok
    assert report.breakdown_seconds()["TOT"] > 0
