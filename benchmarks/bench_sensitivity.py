"""Sensitivity of the headline conclusion to the calibrated constants.

The reproduction's main claim — SpatialSpark beats SpatialHadoop on
EC2-10 — must survive perturbation of every fitted constant, or it would
be a calibration artifact.  This bench sweeps each constant ×0.5 / ×2 and
asserts the winner never flips.
"""

import pytest

from repro.experiments import render_sensitivity, speedup_sensitivity

from conftest import emit, verify


@pytest.fixture(scope="module")
def rows():
    return speedup_sensitivity("taxi-nycb", "EC2-10", exec_records=1500, seed=1)


def test_sensitivity_table(benchmark, rows):
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    emit("SpatialSpark-over-SpatialHadoop speedup (taxi-nycb, EC2-10) under "
         "perturbed cost constants:\n" + render_sensitivity(rows))


def test_winner_never_flips(benchmark, rows):
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    assert all(r.speedup > 1.0 for r in rows)


def test_baseline_in_paper_range(benchmark, rows):
    """At factor 1.0 the speedup sits in the paper's 2.9x neighbourhood."""
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    baseline = {r.speedup for r in rows if r.factor == 1.0}
    assert len(baseline) == 1
    assert 1.4 < baseline.pop() < 5.8


def test_spark_specific_knob_is_the_most_sensitive(benchmark, rows):
    """The per-record Spark shuffle cost moves the ratio the most — as it
    should, being the only constant SpatialHadoop does not pay."""
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    spread = {}
    for r in rows:
        lo, hi = spread.get(r.knob, (float("inf"), 0.0))
        spread[r.knob] = (min(lo, r.speedup), max(hi, r.speedup))
    widths = {k: hi - lo for k, (lo, hi) in spread.items()}
    assert max(widths, key=widths.get) == "spark.shuffle_records"
