#!/usr/bin/env python
"""Wall-clock impact of the CSR-native refine + sweep kernels.

Runs the same local plane-sweep join three ways and times each:

* **object** — geometry-object lists end to end: the Python event-loop
  sweep plus per-pair scalar refinement;
* **legacy** — :class:`GeometryBatch` inputs through the *pre-kernel*
  batch plane, vendored below exactly as it stood before the CSR layer
  landed: the same Python event-loop sweep (one ``counters.add`` per
  event), a per-right-geometry refine loop, and per-pair ``zip`` /
  ``extend`` survivor assembly;
* **csr** — the current batch plane: vectorized sort + ``searchsorted``
  stripe sweep and one CSR kernel call refining every candidate in a
  single chunked pass over the packed coords buffer.

All three produce identical pairs (asserted here; the golden-equivalence
tests additionally pin counters); wall-clock is the only difference.
Two workloads are measured — point-in-polygon refinement and
point-to-polyline distance refinement.

Run:  PYTHONPATH=src python benchmarks/bench_kernels.py [--check]

Writes ``BENCH_kernels.json`` at the repo root (override with --out)::

    {
      "workloads": [{"name": "pts_poly", "scales": [
          {"name": "table1", ..., "csr_vs_legacy": 3.1,
           "csr_vs_object": 4.2}, ...]}, ...]
    }

``--check`` exits non-zero if the CSR path is slower than the legacy
per-group batch path at any scale (the CI smoke gate).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.localjoin import local_join
from repro.core.predicate import INTERSECTS, within_distance
from repro.data.synthetic import (
    census_blocks,
    census_blocks_batch,
    taxi_points,
    taxi_points_batch,
    tiger_edges,
    tiger_edges_batch,
)
from repro.geometry.engine import JtsLikeEngine
from repro.metrics import Counters

REPO_ROOT = Path(__file__).resolve().parent.parent


# --------------------------------------------------------------------------
# The pre-kernel batch plane, vendored verbatim from the revision before
# the CSR layer (commit "Columnar GeometryBatch data plane") so the
# baseline stays runnable as the live code evolves.
# --------------------------------------------------------------------------

def _legacy_refine_batch(left, right, candidates, engine, predicate):
    from repro.geometry.batch import KIND_POINT, KIND_POLYGON, KIND_POLYLINE

    survivors = []
    target = KIND_POLYGON if predicate.kind == "intersects" else KIND_POLYLINE
    grouped = (left.kinds[candidates[:, 0]] == KIND_POINT) & (
        right.kinds[candidates[:, 1]] == target
    )
    bp = candidates[grouped]
    bp = bp[np.argsort(bp[:, 1], kind="stable")]
    group_js, group_starts = np.unique(bp[:, 1], return_index=True)
    group_ends = np.append(group_starts[1:], bp.shape[0])
    for j, s, e in zip(group_js, group_starts, group_ends):
        point_rows = bp[s:e, 0]
        xy = left.points_xy(point_rows)
        if predicate.kind == "intersects":
            mask = engine.points_in_polygon(right[j], xy)
        else:
            mask = engine.points_within_distance(right[j], xy, predicate.distance)
        j = int(j)
        survivors.extend((int(i), j) for i, keep in zip(point_rows, mask) if keep)
    for i, j in candidates[~grouped]:
        if predicate.evaluate(engine, left[int(i)], right[int(j)]):
            survivors.append((int(i), int(j)))
    survivors.sort()
    return survivors


def legacy_plane_sweep_join(left, right, engine, *, counters, predicate):
    lb = left.mbrs.data
    if predicate.filter_margin:
        lb = lb + np.array([-1.0, -1.0, 1.0, 1.0]) * predicate.filter_margin
    rb = right.mbrs.data
    lorder = np.argsort(lb[:, 0], kind="stable")
    rorder = np.argsort(rb[:, 0], kind="stable")
    n, m = len(lorder), len(rorder)
    counters.add(
        "sort.ops",
        n * max(np.log2(max(n, 2)), 1) + m * max(np.log2(max(m, 2)), 1),
    )
    candidates = []
    li = ri = 0
    active_left = []
    active_right = []
    while li < n or ri < m:
        take_left = ri >= m or (li < n and lb[lorder[li], 0] <= rb[rorder[ri], 0])
        if take_left:
            i = int(lorder[li])
            li += 1
            x = lb[i, 0]
            active_right = [j for j in active_right if rb[j, 2] >= x]
            counters.add("join.sweep_ops", len(active_right) + 1)
            for j in active_right:
                if lb[i, 1] <= rb[j, 3] and rb[j, 1] <= lb[i, 3]:
                    candidates.append((i, j))
            active_left.append(i)
        else:
            j = int(rorder[ri])
            ri += 1
            x = rb[j, 0]
            active_left = [i for i in active_left if lb[i, 2] >= x]
            counters.add("join.sweep_ops", len(active_left) + 1)
            for i in active_left:
                if lb[i, 1] <= rb[j, 3] and rb[j, 1] <= lb[i, 3]:
                    candidates.append((i, j))
            active_right.append(j)
    counters.add("join.candidates", len(candidates))
    cand = np.asarray(candidates, dtype=np.int64).reshape(-1, 2)
    return _legacy_refine_batch(left, right, cand, engine, predicate)


# --------------------------------------------------------------------------

#: (scale name, points, right-side geometries)
SCALES = [
    ("small", 20_000, 500),
    ("table1", 120_000, 2_000),
]

#: (workload name, left factories, right factories, predicate)
WORKLOADS = [
    ("pts_poly", (taxi_points, taxi_points_batch),
     (census_blocks, census_blocks_batch), INTERSECTS),
    ("pts_edges", (taxi_points, taxi_points_batch),
     (tiger_edges, tiger_edges_batch), within_distance(0.01)),
]


def _measure(fn, *, repeats: int) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_scale(name, n_points, n_right, left_f, right_f, predicate, *,
              repeats: int) -> dict:
    left_obj, left_batch = left_f
    right_obj, right_batch = right_f
    objs = (left_obj(n_points, seed=11), right_obj(n_right, seed=12))
    batches = (left_batch(n_points, seed=11), right_batch(n_right, seed=12))

    def join_current(left, right):
        # Fresh engine + counters per run so each timing covers one
        # complete join, caches and all.
        return local_join(
            "plane_sweep", left, right, JtsLikeEngine(Counters()),
            counters=Counters(), predicate=predicate,
        )

    def join_legacy():
        return legacy_plane_sweep_join(
            *batches, JtsLikeEngine(Counters()),
            counters=Counters(), predicate=predicate,
        )

    secs, pairs = {}, {}
    secs["object"], pairs["object"] = _measure(
        lambda: join_current(*objs), repeats=repeats)
    secs["legacy"], pairs["legacy"] = _measure(join_legacy, repeats=repeats)
    secs["csr"], pairs["csr"] = _measure(
        lambda: join_current(*batches), repeats=repeats)

    # object/legacy are sorted tuple lists; csr is a lexsorted ndarray.
    csr_tuples = list(map(tuple, pairs["csr"].tolist()))
    assert pairs["object"] == pairs["legacy"] == csr_tuples, \
        f"{name}: planes disagreed on pairs"

    return {
        "name": name,
        "points": n_points,
        "right": n_right,
        "pairs": len(csr_tuples),
        "object_seconds": round(secs["object"], 4),
        "legacy_seconds": round(secs["legacy"], 4),
        "csr_seconds": round(secs["csr"], 4),
        "csr_vs_legacy": round(secs["legacy"] / max(secs["csr"], 1e-9), 2),
        "csr_vs_object": round(secs["object"] / max(secs["csr"], 1e-9), 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply every record count (CI uses a tiny one)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing (default 3)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_kernels.json"),
                        help="output JSON path (default: repo root)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if CSR is slower than legacy")
    args = parser.parse_args()

    workloads = []
    for wname, left_f, right_f, predicate in WORKLOADS:
        scales = []
        for sname, n_points, n_right in SCALES:
            row = run_scale(
                sname,
                max(int(n_points * args.scale), 100),
                max(int(n_right * args.scale), 16),
                left_f, right_f, predicate,
                repeats=args.repeats,
            )
            scales.append(row)
            print(f"{wname:>9}/{sname:<7}: object {row['object_seconds']:8.3f}s  "
                  f"legacy {row['legacy_seconds']:8.3f}s  "
                  f"csr {row['csr_seconds']:8.3f}s  "
                  f"(csr vs legacy {row['csr_vs_legacy']:5.2f}x, "
                  f"vs object {row['csr_vs_object']:5.2f}x, "
                  f"pairs {row['pairs']:,})")
        workloads.append({"name": wname, "scales": scales})

    document = {"algorithm": "plane_sweep", "scale": args.scale,
                "repeats": args.repeats, "workloads": workloads}
    text = json.dumps(document, indent=2)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"wrote {args.out}")

    slow = [
        (w["name"], row["name"])
        for w in workloads for row in w["scales"]
        if row["csr_vs_legacy"] < 1.0
    ]
    if args.check and slow:
        print(f"FAIL: CSR path slower than the legacy batch plane at {slow}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
