"""Ablation — ε-distance join (the paper's motivating workload).

The introduction motivates matching taxi pickups to road segments via
point-to-nearest-polyline distance; the experiments never run it.  This
bench measures the distance join end to end across systems and sweeps the
radius to expose the filter/refinement trade-off.
"""

import pytest

from repro.core import within_distance
from repro.data import taxi_points, tiger_edges
from repro.data.synthetic import DOMAIN_NYC
from repro.systems import ALL_SYSTEMS, RunEnvironment, make_system

from conftest import emit, verify


@pytest.fixture(scope="module")
def workload():
    return taxi_points(1500, seed=71), tiger_edges(1200, seed=72, domain=DOMAIN_NYC)


@pytest.mark.parametrize("system_name", sorted(ALL_SYSTEMS))
def test_distance_join_wallclock(benchmark, system_name, workload):
    pts, roads = workload

    def run():
        env = RunEnvironment.create(block_size=1 << 14)
        return make_system(system_name).run(env, pts, roads, within_distance(0.002))

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.ok


def test_radius_sweep(benchmark, workload):
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    pts, roads = workload
    lines = ["Distance-join radius sweep (SpatialSpark, simulated WS seconds):",
             f"  {'radius':>8}{'pairs':>8}{'candidates':>12}{'sim s':>8}"]
    prev_pairs = -1
    for radius in (0.0005, 0.002, 0.008):
        env = RunEnvironment.create(block_size=1 << 14)
        report = make_system("SpatialSpark").run(
            env, pts, roads, within_distance(radius)
        ).costed()
        assert report.ok
        assert len(report.pairs) >= prev_pairs  # monotone in radius
        prev_pairs = len(report.pairs)
        lines.append(
            f"  {radius:>8}{len(report.pairs):>8,}"
            f"{report.counters['join.candidates']:>12,.0f}"
            f"{report.clock.total_seconds:>8.1f}"
        )
    emit("\n".join(lines))


def test_systems_agree_on_distance_join(benchmark, workload):
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    pts, roads = workload
    results = {}
    for name in sorted(ALL_SYSTEMS):
        env = RunEnvironment.create(block_size=1 << 14)
        results[name] = make_system(name).run(env, pts, roads, within_distance(0.002))
    assert len({r.pairs for r in results.values()}) == 1
    emit(
        "Distance join parity: "
        + ", ".join(f"{k}={len(v.pairs):,} pairs" for k, v in results.items())
    )
