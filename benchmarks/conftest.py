"""Shared fixtures for the benchmark harness.

Each ``bench_table*.py`` module regenerates one table/figure of the paper
(printed to stdout with ``-s`` or captured in the pytest-benchmark run)
and asserts the *shape* findings the paper reports; the ``bench_ablation_*``
modules measure the design choices the paper discusses but does not
isolate.  Wall-clock numbers from pytest-benchmark cover the real
execution kernels; simulated (paper-scale) seconds come from the cost
model and are printed, not timed.
"""

import sys

import pytest


def emit(text: str) -> None:
    """Print a regenerated artifact so it lands in the bench output."""
    print(f"\n{text}\n", file=sys.stderr)


def verify(benchmark, fn):
    """Run an assertion body once under the benchmark harness.

    Shape checks and table regenerations must execute in
    ``--benchmark-only`` runs too (they ARE the deliverable); wrapping
    them as single-round benchmarks keeps them from being skipped.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def table2_result():
    from repro.experiments import table2

    # Moderate execution scale keeps the whole bench suite fast while the
    # polyline joins still see a stable candidate population.
    return table2(exec_records={"taxi-nycb": 2000, "edges-linearwater": 6000}, seed=1)


@pytest.fixture(scope="session")
def table3_result():
    from repro.experiments import table3

    return table3(
        exec_records={"taxi1m-nycb": 2000, "edges0.1-linearwater0.1": 6000}, seed=1
    )
