"""Micro-benchmarks of the substrate kernels.

Not a paper table — these are the performance-critical building blocks
every experiment rides on, tracked so regressions in the hot paths are
visible: STR-tree build/query, dynamic R-tree inserts, grid assignment,
Hilbert sorting, vectorized geometry kernels, RDD shuffles, and the
MapReduce engine.
"""

import numpy as np

from repro.geometry import MBR, MBRArray, Polygon
from repro.geometry.vectorized import points_in_polygon, segments_intersect_matrix
from repro.index import GridIndex, RTree, STRtree, hilbert_sort_order, sync_tree_join
from repro.spark import SparkContext


def random_boxes(n, seed=0, extent=100.0, size=1.0):
    rng = np.random.default_rng(seed)
    mins = rng.uniform(0, extent, size=(n, 2))
    return MBRArray(np.hstack([mins, mins + rng.uniform(0, size, size=(n, 2))]))


class TestIndexKernels:
    def test_strtree_bulk_load_50k(self, benchmark):
        boxes = random_boxes(50_000, seed=1)
        tree = benchmark(STRtree, boxes)
        assert len(tree) == 50_000

    def test_strtree_query_throughput(self, benchmark):
        boxes = random_boxes(50_000, seed=2)
        tree = STRtree(boxes)
        queries = [MBR(x, x, x + 5, x + 5) for x in np.linspace(0, 95, 200)]

        def run():
            return sum(tree.query(q).size for q in queries)

        hits = benchmark(run)
        assert hits > 0

    def test_rtree_insert_5k(self, benchmark):
        boxes = random_boxes(5_000, seed=3)

        def run():
            tree = RTree(max_entries=16)
            tree.insert_many(boxes)
            return tree

        tree = benchmark.pedantic(run, rounds=3, iterations=1)
        assert len(tree) == 5_000

    def test_sync_join_20k(self, benchmark):
        a, b = random_boxes(20_000, seed=4), random_boxes(20_000, seed=5)
        ta, tb = STRtree(a), STRtree(b)
        pairs = benchmark.pedantic(sync_tree_join, args=(ta, tb), rounds=3, iterations=1)
        assert len(pairs) > 0

    def test_grid_point_assignment_1m(self, benchmark):
        rng = np.random.default_rng(6)
        grid = GridIndex(MBR(0, 0, 100, 100), 32, 32)
        xy = rng.uniform(0, 100, size=(1_000_000, 2))
        cells = benchmark(grid.assign_points, xy)
        assert cells.shape == (1_000_000,)

    def test_hilbert_sort_500k(self, benchmark):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 100, size=(500_000, 2))
        order = benchmark(hilbert_sort_order, pts, MBR(0, 0, 100, 100))
        assert order.shape == (500_000,)


class TestGeometryKernels:
    def test_pip_kernel_200k(self, benchmark):
        rng = np.random.default_rng(8)
        poly = Polygon([(0, 0), (10, 1), (9, 9), (2, 10), (-1, 5)])
        xy = rng.uniform(-2, 12, size=(200_000, 2))
        mask = benchmark(points_in_polygon, poly, xy)
        assert 0 < mask.sum() < len(xy)

    def test_segment_matrix_300x300(self, benchmark):
        rng = np.random.default_rng(9)
        a = rng.uniform(0, 10, size=(300, 4))
        b = rng.uniform(0, 10, size=(300, 4))
        mat = benchmark(
            segments_intersect_matrix, a[:, :2], a[:, 2:], b[:, :2], b[:, 2:]
        )
        assert mat.shape == (300, 300)


class TestRuntimeSubstrates:
    def test_spark_groupbykey_100k(self, benchmark):
        def run():
            sc = SparkContext(default_parallelism=8)
            rdd = sc.parallelize([(i % 1000, i) for i in range(100_000)], 8)
            return rdd.groupByKey(16).count()

        count = benchmark.pedantic(run, rounds=3, iterations=1)
        assert count == 1000

    def test_mapreduce_wordcount_50k_lines(self, benchmark):
        from repro.cluster import SimClock
        from repro.hdfs import SimulatedHDFS
        from repro.mapreduce import MapReduceJob
        from repro.metrics import Counters

        def run():
            counters = Counters()
            hdfs = SimulatedHDFS(block_size=1 << 18, counters=counters)
            hdfs.write_file("/in", [f"w{i % 97} w{i % 13}" for i in range(50_000)])
            job = MapReduceJob(
                "wc",
                hdfs=hdfs, counters=counters, clock=SimClock(),
                inputs=["/in"],
                map_task=lambda d: ((w, 1) for l in d.records for w in l.split()),
                reduce_task=lambda k, vs: [(k, len(vs))],
                output_path="/out",
            )
            return job.run()

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.output_records == 97  # w0..w96 (the mod-13 set overlaps)
