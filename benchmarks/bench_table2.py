"""Table 2 — end-to-end runtimes of the full-dataset experiments.

Regenerates every cell (3 systems × 4 configurations × 2 experiments),
prints the table, and asserts the findings the paper draws from it:

* the exact success/failure matrix (HadoopGIS fails everywhere,
  SpatialSpark OOMs on EC2-8/EC2-6),
* SpatialSpark's 2.9×/5.1×-class speedups over SpatialHadoop on EC2-10,
* the much smaller gap on the disk-bound workstation,
* SpatialHadoop's EC2-10 < EC2-8 < EC2-6 scaling.
"""

from repro.experiments import run_experiment

from conftest import emit, verify


def test_table2_regeneration(benchmark, table2_result):
    emit(verify(benchmark, table2_result.render))


class TestFailureMatrix:
    def test_hadoopgis_fails_every_cell(self, benchmark, table2_result):
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for exp in ("taxi-nycb", "edges-linearwater"):
            for config in ("WS", "EC2-10", "EC2-8", "EC2-6"):
                assert table2_result.seconds(exp, "HadoopGIS", config) is None
                report = table2_result.reports[(exp, "HadoopGIS", config)]
                assert report.failure_kind == "broken_pipe"

    def test_spatialhadoop_succeeds_everywhere(self, benchmark, table2_result):
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for exp in ("taxi-nycb", "edges-linearwater"):
            for config in ("WS", "EC2-10", "EC2-8", "EC2-6"):
                assert table2_result.seconds(exp, "SpatialHadoop", config) is not None

    def test_spatialspark_oom_cells(self, benchmark, table2_result):
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for exp in ("taxi-nycb", "edges-linearwater"):
            assert table2_result.seconds(exp, "SpatialSpark", "WS") is not None
            assert table2_result.seconds(exp, "SpatialSpark", "EC2-10") is not None
            for config in ("EC2-8", "EC2-6"):
                assert table2_result.seconds(exp, "SpatialSpark", config) is None
                report = table2_result.reports[(exp, "SpatialSpark", config)]
                assert report.failure_kind == "oom"


class TestSpeedupShapes:
    def test_ec2_speedups(self, benchmark, table2_result):
        """Paper: 2.9× (taxi-nycb) and 5.1× (edges-linearwater) on EC2-10."""
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for exp, paper in (("taxi-nycb", 2.9), ("edges-linearwater", 5.1)):
            sh = table2_result.seconds(exp, "SpatialHadoop", "EC2-10")
            ss = table2_result.seconds(exp, "SpatialSpark", "EC2-10")
            ratio = sh / ss
            emit(f"{exp} EC2-10 SpatialSpark speedup: {ratio:.2f}x (paper {paper}x)")
            assert paper / 2.0 < ratio < paper * 2.0

    def test_ws_gap_smaller_than_ec2_gap(self, benchmark, table2_result):
        """Paper: taxi-nycb on WS is disk-bound, shrinking the gap to ~1.07×."""
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for exp in ("taxi-nycb", "edges-linearwater"):
            sh_ws = table2_result.seconds(exp, "SpatialHadoop", "WS")
            ss_ws = table2_result.seconds(exp, "SpatialSpark", "WS")
            sh_ec = table2_result.seconds(exp, "SpatialHadoop", "EC2-10")
            ss_ec = table2_result.seconds(exp, "SpatialSpark", "EC2-10")
            assert sh_ws / ss_ws < sh_ec / ss_ec

    def test_taxi_ws_gap_near_parity(self, benchmark, table2_result):
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        sh = table2_result.seconds("taxi-nycb", "SpatialHadoop", "WS")
        ss = table2_result.seconds("taxi-nycb", "SpatialSpark", "WS")
        assert 0.5 < sh / ss < 2.0  # paper: 1.07x

    def test_spatialhadoop_scaling(self, benchmark, table2_result):
        """Paper: SH gets slower as the EC2 cluster shrinks."""
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        for exp in ("taxi-nycb", "edges-linearwater"):
            t10 = table2_result.seconds(exp, "SpatialHadoop", "EC2-10")
            t8 = table2_result.seconds(exp, "SpatialHadoop", "EC2-8")
            t6 = table2_result.seconds(exp, "SpatialHadoop", "EC2-6")
            assert t10 < t8 < t6

    def test_magnitudes_within_2x_of_paper(self, benchmark, table2_result):
        verify(benchmark, lambda: None)  # keep running under --benchmark-only
        paper = {
            ("taxi-nycb", "SpatialHadoop", "WS"): 3327,
            ("taxi-nycb", "SpatialHadoop", "EC2-10"): 2361,
            ("taxi-nycb", "SpatialSpark", "WS"): 3098,
            ("taxi-nycb", "SpatialSpark", "EC2-10"): 813,
            ("edges-linearwater", "SpatialHadoop", "WS"): 14135,
            ("edges-linearwater", "SpatialHadoop", "EC2-10"): 5695,
            ("edges-linearwater", "SpatialSpark", "WS"): 4481,
            ("edges-linearwater", "SpatialSpark", "EC2-10"): 1119,
        }
        rows = []
        for key, target in paper.items():
            ours = table2_result.seconds(*key)
            rows.append(f"{'/'.join(key):48s} paper={target:>7,}  ours={ours:>9,.0f}")
            assert target / 2 < ours < target * 2, (key, target, ours)
        emit("Table 2 paper-vs-ours:\n" + "\n".join(rows))


def test_one_cell_wallclock(benchmark):
    """Wall-clock of regenerating a single Table-2 cell."""
    report = benchmark.pedantic(
        run_experiment,
        args=("taxi-nycb", "SpatialSpark", "EC2-10"),
        kwargs={"exec_records": 1000, "seed": 3},
        rounds=2,
        iterations=1,
    )
    assert report.ok
