#!/usr/bin/env python
"""Tracing overhead guard: traced vs untraced wall-clock on one join.

The :mod:`repro.trace` spans only snapshot-and-diff counter ledgers, so a
traced run must cost almost nothing over an untraced one — and nothing at
all in *results* (pairs and counter totals are asserted bit-identical
here on every invocation).  This script measures the wall-clock ratio on
a Table-1-style ``taxi_points × census_blocks`` workload and, under
``--check``, fails if tracing costs more than the budgeted overhead.

Run:  PYTHONPATH=src python benchmarks/bench_trace.py [--check] [--out FILE]
      PYTHONPATH=src python benchmarks/bench_trace.py --trace-out trace.json

Prints (and optionally writes) a JSON document::

    {
      "workload": {...},
      "untraced_seconds": ..., "traced_seconds": ...,
      "overhead": 0.03, "budget": 0.10,
      "spans": 57, "pairs": 12345, "identical_results": true
    }

``--trace-out`` additionally writes the traced run's span tree as Chrome
trace-event JSON (open in https://ui.perfetto.dev); CI uploads it as the
bench-smoke artifact.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro import spatial_join, write_chrome_trace

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Allowed wall-clock overhead of tracing (fraction of untraced time).
OVERHEAD_BUDGET = 0.10


def measure(points, blocks, *, system: str, trace: bool, repeats: int):
    """Best-of-*repeats* wall seconds plus the last report."""
    best = float("inf")
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = spatial_join(
            points, blocks, system=system, block_size=1 << 15, trace=trace
        )
        best = min(best, time.perf_counter() - start)
    return best, report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--exec-records", type=int, default=10_000,
                        help="records per dataset (default 10000)")
    parser.add_argument("--system", default="SpatialHadoop",
                        choices=("HadoopGIS", "SpatialHadoop", "SpatialSpark"))
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per mode; best is kept")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if overhead exceeds "
                             f"{OVERHEAD_BUDGET:.0%}")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_trace.json"),
                        help="output JSON path (default: repo root)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="also write the traced run's Chrome trace JSON")
    args = parser.parse_args()

    from repro.data import census_blocks, taxi_points

    points = taxi_points(args.exec_records, seed=3)
    blocks = census_blocks(args.exec_records, seed=4)

    # Warm-up run so neither mode pays first-touch import/JIT costs.
    spatial_join(points[:200], blocks[:50], system=args.system)

    untraced_seconds, untraced = measure(
        points, blocks, system=args.system, trace=False, repeats=args.repeats
    )
    traced_seconds, traced = measure(
        points, blocks, system=args.system, trace=True, repeats=args.repeats
    )

    identical = (
        traced.pairs == untraced.pairs
        and dict(traced.counters) == dict(untraced.counters)
    )
    overhead = traced_seconds / max(untraced_seconds, 1e-9) - 1.0
    spans = sum(1 for _ in traced.trace.walk())

    document = {
        "workload": {
            "system": args.system,
            "exec_records": args.exec_records,
            "datasets": "taxi_points x census_blocks",
            "repeats": args.repeats,
        },
        "untraced_seconds": round(untraced_seconds, 3),
        "traced_seconds": round(traced_seconds, 3),
        "overhead": round(overhead, 4),
        "budget": OVERHEAD_BUDGET,
        "spans": spans,
        "pairs": len(traced.pairs or ()),
        "identical_results": identical,
    }
    text = json.dumps(document, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    if args.trace_out:
        write_chrome_trace(traced.trace, args.trace_out)
        print(f"wrote {args.trace_out} (open in https://ui.perfetto.dev)")

    # Results must match unconditionally: tracing is zero-cost-to-results.
    assert identical, "traced and untraced runs disagreed on results"
    if args.check and overhead > OVERHEAD_BUDGET:
        print(f"FAIL: tracing overhead {overhead:.1%} exceeds "
              f"{OVERHEAD_BUDGET:.0%} budget")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
