"""Ablation — partitioning strategy (the SATO-style family).

The paper's systems use sampling-based partitioning but never compare
strategies.  This bench measures build cost, load balance on the skewed
taxi distribution, and partition-MBR quality for all four partitioners.
"""

import numpy as np
import pytest

from repro.core import make_partitioner
from repro.data import taxi_points
from repro.data.synthetic import DOMAIN_NYC
from repro.geometry import MBRArray

from conftest import emit, verify

PARTITIONERS = ["grid", "bsp", "quadtree", "str", "hilbert"]


@pytest.fixture(scope="module")
def taxi_sample():
    pts = taxi_points(8000, seed=41)
    return MBRArray.from_geometries(pts), np.array([p.xy for p in pts])


@pytest.mark.parametrize("name", PARTITIONERS)
def test_partition_build(benchmark, name, taxi_sample):
    boxes, _ = taxi_sample
    partitioner = make_partitioner(name)
    part = benchmark(partitioner.partition, boxes, 64, DOMAIN_NYC)
    assert len(part) >= 16


def test_balance_on_skewed_data(benchmark, taxi_sample):
    """Median-split partitioners must beat the uniform grid on hotspot
    data; tight (non-tiling) partitioners must have smaller total area."""
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    boxes, xy = taxi_sample
    stats = {}
    for name in PARTITIONERS:
        part = make_partitioner(name).partition(boxes, 64, DOMAIN_NYC)
        if part.tiles:
            loads = np.bincount(part.assign_points(xy), minlength=len(part))
        else:
            loads = np.zeros(len(part))
            for row in boxes.data:
                from repro.geometry import MBR

                loads[part.assign_best(MBR(*row))] += 1
        imbalance = loads.max() / max(loads.mean(), 1e-9)
        area = float(np.minimum(part.boxes.areas(), DOMAIN_NYC.area).sum())
        stats[name] = (imbalance, area)
    lines = ["Partitioner ablation on hotspot-skewed taxi sample (64 partitions):",
             f"  {'strategy':<10}{'max/mean load':>14}{'total area':>14}"]
    for name, (imb, area) in stats.items():
        lines.append(f"  {name:<10}{imb:>14.2f}{area:>14.4f}")
    emit("\n".join(lines))
    assert stats["bsp"][0] < stats["grid"][0]  # balance
    assert stats["str"][1] < stats["grid"][1]  # tightness


def test_partitioning_choice_changes_simulated_join(benchmark, taxi_sample):
    """End-to-end: SpatialSpark with grid vs BSP partitioning on skew."""
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    from repro.core import BSPPartitioner, GridPartitioner
    from repro.data import census_blocks
    from repro.systems import RunEnvironment, SpatialSpark

    pts = taxi_points(2000, seed=42)
    blocks = census_blocks(200, seed=43)
    results = {}
    for label, partitioner in (("grid", GridPartitioner()), ("bsp", BSPPartitioner())):
        env = RunEnvironment.create(block_size=1 << 13)
        report = SpatialSpark(partitioner=partitioner).run(env, pts, blocks).costed()
        results[label] = report
    assert results["grid"].pairs == results["bsp"].pairs
    emit(
        "SpatialSpark partitioner ablation (simulated WS seconds): "
        + ", ".join(
            f"{k}={v.clock.total_seconds:.1f}s" for k, v in results.items()
        )
    )
