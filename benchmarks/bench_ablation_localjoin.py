"""Ablation — local-join algorithm choice.

Section II.C: SpatialHadoop ships both a plane-sweep and a synchronized
R-tree traversal join, while SpatialSpark/HadoopGIS use indexed nested
loops; the paper calls implementing plane-sweep in Scala "an interesting
improvement" but never measures the choice.  This bench does: identical
workloads through all three algorithms, wall-clock and filter-cost
counters.
"""

import pytest

from repro.core import LOCAL_JOIN_ALGORITHMS, local_join
from repro.data import census_blocks, linear_water, taxi_points, tiger_edges
from repro.geometry import JtsLikeEngine
from repro.metrics import Counters

from conftest import emit, verify

ALGOS = sorted(LOCAL_JOIN_ALGORITHMS)


@pytest.fixture(scope="module")
def pip_workload():
    return taxi_points(4000, seed=21), census_blocks(400, seed=22)


@pytest.fixture(scope="module")
def polyline_workload():
    return tiger_edges(2500, seed=23), linear_water(800, seed=24)


@pytest.mark.parametrize("algo", ALGOS)
def test_point_in_polygon_workload(benchmark, algo, pip_workload):
    left, right = pip_workload
    engine = JtsLikeEngine()
    result = benchmark.pedantic(
        local_join, args=(algo, left, right, engine), rounds=3, iterations=1
    )
    assert len(result) == len(left)  # tessellation: every point matches once


@pytest.mark.parametrize("algo", ALGOS)
def test_polyline_workload(benchmark, algo, polyline_workload):
    left, right = polyline_workload
    engine = JtsLikeEngine()
    result = benchmark.pedantic(
        local_join, args=(algo, left, right, engine), rounds=3, iterations=1
    )
    assert isinstance(result, list)


def test_algorithms_agree_and_filter_costs_differ(benchmark, polyline_workload):
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    left, right = polyline_workload
    results, costs = {}, {}
    for algo in ALGOS:
        counters = Counters()
        results[algo] = tuple(
            local_join(algo, left, right, JtsLikeEngine(), counters=counters)
        )
        costs[algo] = counters
    assert len(set(results.values())) == 1, "algorithms disagree"
    lines = ["Local-join filter cost profile (same refined output):"]
    for algo in ALGOS:
        c = costs[algo]
        lines.append(
            f"  {algo:22s} build_ops={c['index.build_ops']:>8,.0f}"
            f"  node_visits={c['index.node_visits']:>10,.0f}"
            f"  sweep_ops={c['join.sweep_ops']:>10,.0f}"
            f"  leaf_pairs={c['index.leaf_pair_tests']:>10,.0f}"
        )
    emit("\n".join(lines))
    # Structural expectations: sweep does no index builds; sync builds two.
    assert costs["plane_sweep"]["index.build_ops"] == 0
    assert costs["sync_rtree"]["index.build_ops"] == len(left) + len(right)
    assert costs["indexed_nested_loop"]["index.build_ops"] == len(right)
