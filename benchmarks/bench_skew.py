#!/usr/bin/env python
"""Skew mitigation on the golden hot-cell dataset, per system.

Runs each system twice on the deliberately skewed workload (90% of the
left side in one 3%x3% corner cell, right side confined to the
lower-left half-domain): once with the skew-aware shuffle off, once
with adaptive repartitioning + sFilter pruning on.  Reports, per
system:

* the deterministic straggler ratio (max-over-mean of
  ``join.candidates`` per task — wall-clock durations are
  nondeterministic, counter ledgers are not);
* the system's data-movement analogue (HadoopGIS shuffle bytes to
  disk, SpatialSpark in-memory exchange bytes, SpatialHadoop records
  deserialized from blocks — its map-only join has no shuffle);
* prune/split counters, and a check that pairs are bit-identical.

Run:  PYTHONPATH=src python benchmarks/bench_skew.py [--out FILE]

Emits a ``::warning`` annotation (mirroring bench_parallel's
``slower_than_serial``) if pruning removed zero records on a dataset
engineered so that it must, and exits non-zero if any system's answer
changed with the feature on.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro import spatial_join
from repro.data import DOMAIN_NYC, census_blocks, hotspot_points
from repro.geometry.mbr import MBR
from repro.trace.skew import skew_report

REPO_ROOT = Path(__file__).resolve().parent.parent

SYSTEMS = ("HadoopGIS", "SpatialHadoop", "SpatialSpark")

#: Data-movement counter that must drop when pruning is on.
VOLUME_KEY = {
    "HadoopGIS": "shuffle.bytes_disk",
    "SpatialSpark": "shuffle.bytes_mem",
    "SpatialHadoop": "deser.records",
}


def golden_inputs(n_points: int, n_blocks: int):
    half = MBR(
        DOMAIN_NYC.xmin,
        DOMAIN_NYC.ymin,
        DOMAIN_NYC.xmin + DOMAIN_NYC.width / 2,
        DOMAIN_NYC.ymin + DOMAIN_NYC.height / 2,
    )
    return (
        hotspot_points(n_points, seed=33),
        census_blocks(n_blocks, seed=34, domain=half),
    )


def straggler_ratio(trace) -> float:
    """Worst max-over-mean of join.candidates across traced phases."""
    rows = skew_report(trace, counter_keys=["join.candidates"])
    ratios = [
        stats["max"] * row.tasks / stats["total"]
        for row in rows
        for stats in [row.counter_stats.get("join.candidates")]
        if stats is not None and stats["total"]
    ]
    return max(ratios) if ratios else 1.0


def bench_system(system: str, points, blocks, *, n_partitions: int) -> dict:
    reports = {}
    for mode in ("off", "on"):
        # plan=None pins each system's fixed partitioned pipeline; the
        # "auto" planner may pick a broadcast join at this scale, which
        # has no shuffle to prune.
        reports[mode] = spatial_join(
            points, blocks, system=system, plan=None, trace=True,
            system_kwargs={
                "partitioner": "grid",
                "n_partitions": n_partitions,
                "shuffle": mode == "on",
            },
        )
    off, on = reports["off"], reports["on"]
    c_off, c_on = off.counters.snapshot(), on.counters.snapshot()
    key = VOLUME_KEY[system]
    row = {
        "system": system,
        "volume_key": key,
        "volume_off": c_off.get(key, 0),
        "volume_on": c_on.get(key, 0),
        "straggler_off": round(straggler_ratio(off.trace), 3),
        "straggler_on": round(straggler_ratio(on.trace), 3),
        "records_pruned": c_on.get("shuffle.records_pruned", 0),
        "bytes_pruned": c_on.get("shuffle.bytes_pruned", 0),
        "cells_split": c_on.get("skew.cells_split", 0),
        "cells_added": c_on.get("skew.cells_added", 0),
        "pairs": len(off.pairs),
        "pairs_identical": off.pairs == on.pairs,
    }
    return row


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=600,
                        help="hotspot points on the left side (default 600)")
    parser.add_argument("--blocks", type=int, default=60,
                        help="census blocks on the right side (default 60)")
    parser.add_argument("--n-partitions", type=int, default=9,
                        help="grid cells before splitting (default 9)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_skew.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args()

    points, blocks = golden_inputs(args.points, args.blocks)

    rows = []
    failed = False
    for system in SYSTEMS:
        row = bench_system(system, points, blocks,
                           n_partitions=args.n_partitions)
        rows.append(row)
        print(f"{system:>13}: straggler {row['straggler_off']:.2f} -> "
              f"{row['straggler_on']:.2f}, {row['volume_key']} "
              f"{row['volume_off']:,.0f} -> {row['volume_on']:,.0f}, "
              f"pruned {row['records_pruned']:,.0f} records, "
              f"split {row['cells_split']:.0f} cell(s)")
        if not row["pairs_identical"]:
            print(f"::error title=bench_skew answer changed::"
                  f"{system} pairs differ with the skew shuffle on")
            failed = True
        if row["records_pruned"] <= 0:
            print(f"::warning title=bench_skew no pruning::"
                  f"{system} pruned zero records on a dataset engineered "
                  f"to be prunable — the sFilter is not engaging")

    document = {
        "workload": {
            "datasets": "hotspot_points x census_blocks(half-domain)",
            "points": args.points,
            "blocks": args.blocks,
            "n_partitions": args.n_partitions,
        },
        "systems": rows,
    }
    text = json.dumps(document, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
