"""Scalability sweep — cluster sizes beyond the paper's three points.

Section III only reports EC2-6/8/10 ("we have excluded EC2-4 and EC2-2
configurations due to insufficient memory issue for most of the testing")
and observes both poor scaling for small datasets and SpatialHadoop's
EC2-10 < EC2-8 < EC2-6 ordering for the full ones.  This bench sweeps the
node count from 2 to 16, verifies the exclusion claim (SpatialSpark OOMs
at ≤8 nodes; HadoopGIS pipes break at every EC2 size), and produces the
scaling curve the paper implies but never plots.
"""

import pytest

from repro.experiments import run_experiment

from conftest import emit, verify

NODE_COUNTS = [2, 4, 6, 8, 10, 12, 16]


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for n in NODE_COUNTS:
        for system in ("SpatialHadoop", "SpatialSpark"):
            out[(system, n)] = run_experiment(
                "taxi-nycb", system, f"EC2-{n}", exec_records=1500, seed=1
            )
    return out


def test_scaling_curve(benchmark, sweep):
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    lines = ["Full taxi-nycb scaling with EC2 cluster size:",
             f"  {'nodes':>6}{'SpatialHadoop':>15}{'SpatialSpark':>14}"]
    for n in NODE_COUNTS:
        sh = sweep[("SpatialHadoop", n)]
        ss = sweep[("SpatialSpark", n)]
        sh_text = f"{sh.clock.total_seconds:,.0f}s" if sh.ok else f"({sh.failure_kind})"
        ss_text = f"{ss.clock.total_seconds:,.0f}s" if ss.ok else f"({ss.failure_kind})"
        lines.append(f"  {n:>6}{sh_text:>15}{ss_text:>14}")
    emit("\n".join(lines))


def test_paper_exclusion_claim(benchmark, sweep):
    """'EC2-4 and EC2-2 excluded due to insufficient memory' — verify that
    most of the testing would indeed fail there."""
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    for n in (2, 4):
        assert not sweep[("SpatialSpark", n)].ok
        assert sweep[("SpatialSpark", n)].failure_kind == "oom"
        hg = run_experiment("taxi-nycb", "HadoopGIS", f"EC2-{n}",
                            exec_records=1500, seed=1)
        assert not hg.ok and hg.failure_kind == "broken_pipe"


def test_spatialhadoop_monotone_scaling(benchmark, sweep):
    """More nodes never hurt SpatialHadoop on the full dataset."""
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    times = [sweep[("SpatialHadoop", n)].clock.total_seconds for n in NODE_COUNTS]
    assert all(a >= b for a, b in zip(times, times[1:]))


def test_diminishing_returns(benchmark, sweep):
    """Scaling flattens: 10→16 nodes buys far less than 2→6."""
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    t = {n: sweep[("SpatialHadoop", n)].clock.total_seconds for n in NODE_COUNTS}
    early_gain = t[2] / t[6]
    late_gain = t[10] / t[16]
    assert early_gain > late_gain


def test_oom_threshold_between_8_and_10(benchmark, sweep):
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    assert not sweep[("SpatialSpark", 8)].ok
    assert sweep[("SpatialSpark", 10)].ok
