"""Ablation — broadcast-based vs partition-based SpatialSpark join.

Section II.B: "We leave a thorough comparison between broadcast-based and
partition-based spatial join techniques in Cloud for future work."  This
bench runs that comparison: the early broadcast design ships the whole
right side (data + index) to every executor — fast while it fits, with a
memory wall the partition-based join does not have.
"""

import pytest

from repro.cluster import GB, PAPER_CONFIGS
from repro.data import census_blocks, taxi_points
from repro.systems import RunEnvironment, SpatialSpark

from conftest import emit, verify


@pytest.fixture(scope="module")
def workload():
    return taxi_points(3000, seed=61), census_blocks(300, seed=62)


@pytest.mark.parametrize("broadcast", [False, True], ids=["partition", "broadcast"])
def test_join_variants(benchmark, broadcast, workload):
    pts, blocks = workload

    def run():
        env = RunEnvironment.create(block_size=1 << 13)
        return SpatialSpark(broadcast_join=broadcast).run(env, pts, blocks)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.ok


def test_variants_agree_and_broadcast_costs_memory(benchmark, workload):
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    pts, blocks = workload
    reports = {}
    for label, flag in (("partition", False), ("broadcast", True)):
        env = RunEnvironment.create(block_size=1 << 13)
        reports[label] = SpatialSpark(broadcast_join=flag).run(env, pts, blocks).costed()
    assert reports["partition"].pairs == reports["broadcast"].pairs
    bp = reports["partition"].counters["net.bytes_broadcast"]
    bb = reports["broadcast"].counters["net.bytes_broadcast"]
    emit(
        "Broadcast-vs-partition join: broadcast volume "
        f"{bp:,.0f} B (partition-based) vs {bb:,.0f} B (broadcast-based); "
        f"simulated WS time {reports['partition'].clock.total_seconds:.1f}s vs "
        f"{reports['broadcast'].clock.total_seconds:.1f}s"
    )
    # The broadcast design ships orders of magnitude more data.
    assert bb > 20 * bp


def test_broadcast_memory_wall(benchmark, workload):
    """The broadcast join OOMs when (right side × nodes) exceeds memory;
    the partition-based join on the same cluster survives."""
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    pts, blocks = workload
    cluster = PAPER_CONFIGS()["EC2-6"]
    # Pretend the right side is paper-sized: 12 GB of polygons; the
    # broadcast design replicates it onto all six 15 GB nodes.
    byte_scale = 12 * GB / sum(b.serialized_size() for b in blocks)
    kw = dict(block_size=1 << 13, scale_b=(1.0, byte_scale))
    bcast = SpatialSpark(broadcast_join=True).run(
        RunEnvironment.create(cluster, **kw), pts, blocks
    )
    part = SpatialSpark(broadcast_join=False).run(
        RunEnvironment.create(cluster, **kw), pts, blocks
    )
    assert not bcast.ok and bcast.failure_kind == "oom"
    assert part.ok
    emit(
        "Broadcast memory wall on EC2-6 with a 12 GB right side: "
        f"broadcast join fails ({bcast.failure_kind}), partition join succeeds"
    )
