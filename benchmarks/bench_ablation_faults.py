"""Ablation — fault-tolerance cost: Hadoop task retries vs Spark lineage.

The paper credits SpatialHadoop's robustness to "the mature Hadoop
platform"; this bench quantifies what recovering from one lost task costs
each substrate, and shows the recovery mechanisms keeping join results
exact.
"""

import pytest

from repro.cluster import SimClock
from repro.hdfs import SimulatedHDFS
from repro.mapreduce import MapReduceJob
from repro.metrics import Counters
from repro.spark import SparkContext

from conftest import emit, verify


def mr_wordcount(fault=False):
    counters = Counters()
    hdfs = SimulatedHDFS(block_size=64, counters=counters)
    hdfs.write_file("/in", [f"w{i % 50} w{i % 7}" for i in range(5000)])

    def injector(kind, index, attempt):
        return fault and kind == "map" and index == 0 and attempt == 0

    MapReduceJob(
        "wc",
        hdfs=hdfs, counters=counters, clock=SimClock(),
        inputs=["/in"],
        map_task=lambda d: ((w, 1) for line in d.records for w in line.split()),
        reduce_task=lambda k, vs: [(k, sum(vs))],
        output_path="/out",
        fault_injector=injector,
    ).run()
    return counters, dict(hdfs.read_all("/out"))


def spark_group(fault=False):
    sc = SparkContext(default_parallelism=8)
    if fault:
        fired = []

        def injector(label):
            if label.startswith("partitionBy") and not fired:
                fired.append(label)
                return True
            return False

        sc.fault_injector = injector
    result = dict(
        sc.parallelize([(i % 50, i) for i in range(5000)], 8)
        .groupByKey(8)
        .mapValues(len)
        .collect()
    )
    return sc.counters, result


@pytest.mark.parametrize("fault", [False, True], ids=["clean", "one-task-lost"])
def test_mapreduce_recovery_wallclock(benchmark, fault):
    counters, result = benchmark.pedantic(mr_wordcount, args=(fault,), rounds=3,
                                          iterations=1)
    assert result["w0"] > 0


@pytest.mark.parametrize("fault", [False, True], ids=["clean", "one-executor-lost"])
def test_spark_recovery_wallclock(benchmark, fault):
    counters, result = benchmark.pedantic(spark_group, args=(fault,), rounds=3,
                                          iterations=1)
    assert result[0] == 100


def test_recovery_costs_report(benchmark):
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    mr_clean, r1 = mr_wordcount(False)
    mr_fault, r2 = mr_wordcount(True)
    assert r1 == r2  # recovery is transparent
    sp_clean, s1 = spark_group(False)
    sp_fault, s2 = spark_group(True)
    assert s1 == s2
    emit(
        "Fault-recovery overhead (one lost task/executor):\n"
        f"  MapReduce: +{mr_fault['hdfs.bytes_read'] - mr_clean['hdfs.bytes_read']:,.0f} B "
        f"re-read, +{mr_fault['mr.tasks'] - mr_clean['mr.tasks']:.0f} task launches\n"
        f"  Spark:     +{sp_fault['shuffle.bytes_mem'] - sp_clean['shuffle.bytes_mem']:,.0f} B "
        f"re-shuffled, +{sp_fault['spark.stages'] - sp_clean['spark.stages']:.0f} stage "
        f"(lineage recomputation)"
    )
    assert mr_fault["mr.task_retries"] == 1
    assert sp_fault["spark.recomputes"] == 1
