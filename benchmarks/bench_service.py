#!/usr/bin/env python
"""Prepared-path serving gains: one-shot vs warm vs cached queries.

The service's whole point is that ``prepare`` runs ingest + partition +
index **once**, so a warm query (``join_prepared`` over installed
artifacts) skips both preprocessing halves, and a cache hit skips the
join as well.  This script measures, at Table-1-style scale:

* the one-shot ``spatial_join`` latency (full pipeline per call);
* the warm prepared-path latency with the cache disabled (every query
  executes the join stage, nothing else);
* the cache-hit latency (nothing executes);
* serving throughput at concurrency 1 / 8 / 64 — asserting along the way
  that every serving path returns pairs bit-identical to the one-shot
  run and that a cache hit moves no stage counter at all.

Under ``--check`` it fails unless the warm path is at least
``SPEEDUP_FLOOR``× faster than one-shot and the bit-identity and
hit-executes-nothing assertions hold.

Run:  PYTHONPATH=src python benchmarks/bench_service.py [--check] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro import spatial_join
from repro.service import Query, SpatialQueryService

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Required one-shot / warm-query latency ratio under --check.
SPEEDUP_FLOOR = 5.0

#: Counter keys a cache hit may move: the service's own bookkeeping.
SERVICE_KEYS = {
    "service.queries", "service.cache.hits", "service.cache.misses",
    "service.cache.evictions",
}


def best_of(repeats, fn):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--exec-records", type=int, default=10_000,
                        help="records per dataset (default 10000)")
    parser.add_argument("--system", default="SpatialHadoop",
                        choices=("HadoopGIS", "SpatialHadoop", "SpatialSpark"))
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per mode; best is kept")
    parser.add_argument("--queries", type=int, default=64,
                        help="queries per throughput batch (default 64)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless warm speedup >= "
                             f"{SPEEDUP_FLOOR:.0f}x and identity holds")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_service.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args()

    from repro.data import census_blocks, taxi_points

    points = taxi_points(args.exec_records, seed=3)
    blocks = census_blocks(args.exec_records, seed=4)

    # Warm-up so no mode pays first-touch import costs.
    spatial_join(points[:200], blocks[:50], system=args.system)

    one_shot_seconds, one_shot = best_of(
        args.repeats,
        lambda: spatial_join(points, blocks, system=args.system,
                             block_size=1 << 15),
    )

    # Warm path, cache off: every query executes the join stage.
    with SpatialQueryService(block_size=1 << 15, cache_entries=0) as svc:
        prep_start = time.perf_counter()
        a = svc.prepare(points, system=args.system, roles=("a",))
        b = svc.prepare(blocks, system=args.system, roles=("b",))
        prepare_seconds = time.perf_counter() - prep_start
        warm_seconds, warm = best_of(args.repeats, lambda: a.join(b))
        throughput = {}
        for concurrency in (1, 8, 64):
            batch = [Query("join", a, b)] * args.queries
            seconds, reports = best_of(
                1, lambda: svc.execute(batch, concurrency=concurrency)
            )
            throughput[str(concurrency)] = {
                "seconds": round(seconds, 3),
                "qps": round(args.queries / seconds, 1),
                "identical": all(r.pairs == one_shot.pairs for r in reports),
            }

    # Cached path: the second identical query executes nothing.
    with SpatialQueryService(block_size=1 << 15) as cached_svc:
        a = cached_svc.prepare(points, system=args.system, roles=("a",))
        b = cached_svc.prepare(blocks, system=args.system, roles=("b",))
        miss = a.join(b)
        ledger_after_miss = cached_svc.counters.snapshot()
        hit_seconds, hit = best_of(args.repeats, lambda: a.join(b))
        hit_delta = cached_svc.counters.diff(ledger_after_miss)
        stage_keys_moved = sorted(
            k for k, v in hit_delta.items() if v and k not in SERVICE_KEYS
        )

    identical = (
        warm.pairs == one_shot.pairs
        and miss.pairs == one_shot.pairs
        and hit.cache_hit
        and hit.pairs == miss.pairs
        and all(t["identical"] for t in throughput.values())
    )
    hit_executes_nothing = stage_keys_moved == []
    warm_speedup = one_shot_seconds / max(warm_seconds, 1e-9)

    document = {
        "workload": {
            "system": args.system,
            "exec_records": args.exec_records,
            "datasets": "taxi_points x census_blocks",
            "repeats": args.repeats,
            "queries_per_batch": args.queries,
        },
        "one_shot_seconds": round(one_shot_seconds, 3),
        "prepare_seconds": round(prepare_seconds, 3),
        "warm_query_seconds": round(warm_seconds, 4),
        "cache_hit_seconds": round(hit_seconds, 5),
        "warm_speedup": round(warm_speedup, 1),
        "speedup_floor": SPEEDUP_FLOOR,
        "throughput": throughput,
        "pairs": len(one_shot.pairs or ()),
        "identical_results": identical,
        "cache_hit_executes_nothing": hit_executes_nothing,
        "cache_hit_stage_counters_moved": stage_keys_moved,
    }
    text = json.dumps(document, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")

    # Identity and hit-executes-nothing must hold unconditionally.
    assert identical, "a serving path disagreed with the one-shot results"
    assert hit_executes_nothing, (
        f"cache hit moved stage counters: {stage_keys_moved}"
    )
    if args.check and warm_speedup < SPEEDUP_FLOOR:
        print(f"FAIL: warm speedup {warm_speedup:.1f}x is below the "
              f"{SPEEDUP_FLOOR:.0f}x floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
