"""Ablation — sampling rate for partition building.

Section II.B: "The data volume of the sample index to be broadcast can
be controlled by adjusting sample rate which makes the partition-based
spatial join more scalable."  This bench sweeps the rate and reports
broadcast volume, partition quality and end-to-end simulated time.
"""

import pytest

from repro.data import census_blocks, taxi_points
from repro.systems import RunEnvironment, SpatialSpark

from conftest import emit, verify

RATES = [0.01, 0.05, 0.2, 0.5]


@pytest.fixture(scope="module")
def workload():
    return taxi_points(3000, seed=51), census_blocks(300, seed=52)


@pytest.mark.parametrize("rate", RATES)
def test_sample_rate_run(benchmark, rate, workload):
    pts, blocks = workload

    def run():
        env = RunEnvironment.create(block_size=1 << 13)
        return SpatialSpark(sample_fraction=rate).run(env, pts, blocks)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.ok


def test_sweep_report(benchmark, workload):
    verify(benchmark, lambda: None)  # keep running under --benchmark-only
    pts, blocks = workload
    baseline = None
    lines = ["SpatialSpark sample-rate sweep (simulated WS seconds):",
             f"  {'rate':>6}{'broadcast B':>14}{'total s':>10}{'pairs':>8}"]
    for rate in RATES:
        env = RunEnvironment.create(block_size=1 << 13)
        report = SpatialSpark(sample_fraction=rate).run(env, pts, blocks).costed()
        assert report.ok
        if baseline is None:
            baseline = report.pairs
        # Correctness must not depend on the sample rate.
        assert report.pairs == baseline
        lines.append(
            f"  {rate:>6.2f}{report.counters['net.bytes_broadcast']:>14,.0f}"
            f"{report.clock.total_seconds:>10.1f}{len(report.pairs):>8}"
        )
    emit("\n".join(lines))
