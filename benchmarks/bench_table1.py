"""Table 1 — dataset record counts and sizes.

Regenerates the catalog rows (exact paper values) and benchmarks the
synthetic generators' throughput, verifying their per-record byte volumes
match the paper's datasets.
"""

import pytest

from repro.data import (
    CATALOG,
    census_blocks,
    linear_water,
    table1_rows,
    taxi_points,
    tiger_edges,
)
from repro.hdfs import estimate_size

from conftest import emit, verify


def test_table1_regeneration(benchmark):
    def body():
        return table1_rows()

    rows = verify(benchmark, body)
    lines = ["Table 1: Experiment Dataset Sizes and Volumes",
             f"{'Dataset':<16}{'# of Records':>14}  {'Size':>8}"]
    lines += [f"{n:<16}{r:>14,}  {s:>8}" for n, r, s in rows]
    emit("\n".join(lines))
    # Exact values from the paper.
    assert rows[0] == ("taxi", 169_720_892, "6.9 GB")
    assert rows[1] == ("nycb", 38_839, "19 MB")
    assert rows[2] == ("linearwater", 5_857_442, "8.4 GB")
    assert rows[3] == ("edges", 72_729_686, "23.8 GB")
    assert rows[4] == ("linearwater0.1", 585_809, "852 MB")
    assert rows[5] == ("edges0.1", 7_271_983, "2.3 GB")


@pytest.mark.parametrize(
    "name,generator,n",
    [
        ("taxi", taxi_points, 20_000),
        ("nycb", census_blocks, 1_500),
        ("edges", tiger_edges, 4_000),
        ("linearwater", linear_water, 1_200),
    ],
)
def test_generator_throughput(benchmark, name, generator, n):
    geoms = benchmark(generator, n, 42)
    assert len(geoms) == n
    # Per-record bytes should track the paper's dataset (Table 1 ratio).
    spec = CATALOG[name]
    paper_bpr = spec.logical_bytes / spec.logical_records
    ours_bpr = sum(estimate_size(g) for g in geoms) / n
    assert 0.6 * paper_bpr <= ours_bpr <= 1.5 * paper_bpr
