#!/usr/bin/env python
"""Real wall-clock comparison of the object vs columnar data planes.

Runs the same local join twice — once over lists of geometry objects,
once over :class:`~repro.geometry.batch.GeometryBatch` inputs — and
measures how long the reproduction itself takes in each representation.
The joined pairs and every counter are bit-identical by construction
(the golden equivalence tests assert it); wall-clock time is the only
difference, and it comes from three places:

* MBR arrays are cached on the batch at parse/build time, so the filter
  stage never rebuilds them from objects (``MBRArray.from_geometries``
  is a full Python scan per join on the object plane);
* a batch left side probes the STR tree with one level-synchronous
  ``query_many`` traversal instead of one Python tree walk per geometry;
* refinement gathers point coordinates straight from the packed buffer.

Run:  PYTHONPATH=src python benchmarks/bench_columnar.py [--check]

Writes ``BENCH_columnar.json`` at the repo root (override with --out)::

    {
      "algorithm": "indexed_nested_loop",
      "scales": [{"name": "small", ..., "speedup": 3.1},
                 {"name": "table1", ..., "speedup": 4.0}]
    }

``--check`` exits non-zero if the batch plane is slower than the object
plane at any scale (the CI smoke gate).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.localjoin import local_join
from repro.core.predicate import INTERSECTS
from repro.data.synthetic import (
    census_blocks,
    census_blocks_batch,
    taxi_points,
    taxi_points_batch,
)
from repro.geometry.engine import make_engine
from repro.metrics import Counters

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (name, points, polygons).  "table1" mirrors the paper's Table-1
#: workload character: a large clustered point set joined against the
#: census-block tessellation (scaled to benchmark-friendly counts).
SCALES = [
    ("small", 20_000, 500),
    ("table1", 120_000, 2_000),
]


def _measure(fn, *, repeats: int) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_scale(
    name: str, n_points: int, n_polys: int, *, algorithm: str, repeats: int
) -> dict:
    objs = (taxi_points(n_points, seed=11), census_blocks(n_polys, seed=12))
    batches = (
        taxi_points_batch(n_points, seed=11),
        census_blocks_batch(n_polys, seed=12),
    )

    def join(left, right):
        # A fresh engine + counters per run: timing covers exactly one
        # join, including the MBR-array (re)build the object plane pays.
        engine = make_engine("jts", Counters())
        return local_join(
            algorithm, left, right, engine,
            counters=Counters(), predicate=INTERSECTS,
        )

    obj_secs, obj_pairs = _measure(lambda: join(*objs), repeats=repeats)
    batch_secs, batch_pairs = _measure(lambda: join(*batches), repeats=repeats)
    # The batch plane returns a lexsorted (n, 2) ndarray; the object plane
    # keeps the documented sorted list of tuples.  Same pairs either way.
    assert obj_pairs == list(map(tuple, batch_pairs.tolist())), \
        f"{name}: planes disagreed on pairs"
    return {
        "name": name,
        "points": n_points,
        "polygons": n_polys,
        "pairs": len(obj_pairs),
        "object_seconds": round(obj_secs, 4),
        "batch_seconds": round(batch_secs, 4),
        "speedup": round(obj_secs / max(batch_secs, 1e-9), 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="indexed_nested_loop",
                        choices=("indexed_nested_loop", "plane_sweep", "sync_rtree"))
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply every record count (CI uses a tiny one)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing (default 3)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_columnar.json"),
                        help="output JSON path (default: repo root)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if the batch plane is slower")
    args = parser.parse_args()

    scales = []
    for name, n_points, n_polys in SCALES:
        row = run_scale(
            name,
            max(int(n_points * args.scale), 100),
            max(int(n_polys * args.scale), 16),
            algorithm=args.algorithm,
            repeats=args.repeats,
        )
        scales.append(row)
        print(f"{name:>8}: object {row['object_seconds']:8.3f}s  "
              f"batch {row['batch_seconds']:8.3f}s  "
              f"speedup {row['speedup']:5.2f}x  (pairs {row['pairs']:,})")

    document = {"algorithm": args.algorithm, "scale": args.scale,
                "repeats": args.repeats, "scales": scales}
    text = json.dumps(document, indent=2)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"wrote {args.out}")

    if args.check and any(row["speedup"] < 1.0 for row in scales):
        print("FAIL: columnar plane slower than the object plane")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
