"""Fig. 1 — the generalized framework for analyzing design choices.

The figure is structural, not numeric: it maps each system's components
onto the three stages and shows where each runs and what touches HDFS.
This bench regenerates the trace, checks the properties the paper reads
off the figure, and benchmarks an executed end-to-end pipeline per system
at a small scale (the real code behind each box of the figure).
"""

import pytest

from repro.core import RunsOn, Stage
from repro.data import census_blocks, taxi_points
from repro.experiments import fig1
from repro.systems import ALL_SYSTEMS, RunEnvironment, make_system

from conftest import emit, verify


def test_fig1_regeneration(benchmark):
    text = verify(benchmark, fig1)
    emit(text)
    assert "HadoopGIS" in text and "SpatialSpark" in text
    assert "streaming" in text and "functional" in text


class TestFrameworkProperties:
    """What the paper's Section II derives from the figure."""

    def test_hdfs_interaction_ordering(self, benchmark):
        touch = verify(benchmark, lambda: {
            name: ALL_SYSTEMS[name]().stage_trace().hdfs_touch_points
            for name in ALL_SYSTEMS
        })
        assert touch["HadoopGIS"] > touch["SpatialHadoop"] > touch["SpatialSpark"]

    def test_spatialspark_single_hdfs_read(self, benchmark):
        trace = verify(benchmark, ALL_SYSTEMS["SpatialSpark"]().stage_trace)
        assert sum(s.reads_hdfs for s in trace.steps) == 1
        assert not any(s.writes_hdfs for s in trace.steps)

    def test_hadoopgis_preprocessing_is_six_plus_steps(self, benchmark):
        trace = verify(benchmark, ALL_SYSTEMS["HadoopGIS"]().stage_trace)
        assert len(trace.steps_in(Stage.PREPROCESSING)) >= 6

    def test_serial_bottlenecks(self, benchmark):
        # HadoopGIS: serial local programs; SpatialHadoop: serial master
        # join; SpatialSpark: nothing serial beyond the driver-side build.
        hg, sh = verify(
            benchmark,
            lambda: (
                ALL_SYSTEMS["HadoopGIS"]().stage_trace(),
                ALL_SYSTEMS["SpatialHadoop"]().stage_trace(),
            ),
        )
        assert any(s.runs_on == RunsOn.LOCAL_PROGRAM for s in hg.serial_steps)
        assert any(s.runs_on == RunsOn.MASTER for s in sh.serial_steps)


@pytest.mark.parametrize("system_name", sorted(ALL_SYSTEMS))
def test_end_to_end_pipeline(benchmark, system_name):
    """Wall-clock of one full (small) distributed join per system."""
    pts = taxi_points(400, seed=7)
    blocks = census_blocks(80, seed=8)

    def run():
        env = RunEnvironment.create(block_size=1 << 13)
        return make_system(system_name).run(env, pts, blocks)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.ok
    assert len(report.pairs) == len(pts)  # tessellation: every point matches
