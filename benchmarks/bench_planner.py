#!/usr/bin/env python
"""Planner quality: auto-chosen plans vs fixed configurations.

The cost-based planner (:mod:`repro.plan`) claims its argmin over
(local algorithm × partitioner × granularity × broadcast-vs-shuffle)
lands on a plan whose *measured* simulated seconds are no worse than any
fixed configuration a user could have pinned by hand.  This script puts
that claim on the record: for each system it runs the planner-chosen
plan and the principal fixed configurations over the same workload, then
reports measured seconds side by side with the planner's own estimate.

Under ``--check`` it fails unless, for every system, the auto plan's
measured seconds are within ``TOLERANCE`` of the best fixed
configuration's — i.e. the planner never loses by more than the noise
floor — and every configuration returns bit-identical result pairs.

Run:  PYTHONPATH=src python benchmarks/bench_planner.py [--check] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro import spatial_join
from repro.data import census_blocks, taxi_points
from repro.data.stats import describe
from repro.experiments.runner import resolve_cluster
from repro.plan import rank_plans

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Allowed measured-seconds ratio of auto plan vs best fixed config.
TOLERANCE = 1.05

SYSTEMS = ("HadoopGIS", "SpatialHadoop", "SpatialSpark")


def fixed_configs(system: str) -> dict:
    """The fixed configurations a user could reasonably pin by hand."""
    if system == "SpatialSpark":
        return {
            "shuffle(default)": {"broadcast_join": False},
            "broadcast": {"broadcast_join": True},
            "shuffle+plane_sweep": {"broadcast_join": False,
                                    "local_algorithm": "plane_sweep"},
        }
    if system == "SpatialHadoop":
        return {
            "plane_sweep(default)": {"local_algorithm": "plane_sweep"},
            "sync_rtree": {"local_algorithm": "sync_rtree"},
            "grid": {"partitioner": "grid"},
        }
    return {
        "inl(default)": {"local_algorithm": "indexed_nested_loop"},
        "plane_sweep": {"local_algorithm": "plane_sweep"},
        "bsp": {"partitioner": "bsp"},
    }


def measure(points, blocks, *, system, cluster, plan, system_kwargs=None):
    report = spatial_join(
        points, blocks, system=system, cluster=cluster,
        plan=plan, system_kwargs=system_kwargs, seed=11,
    )
    return {
        "status": report.status,
        "pairs": len(report.pairs or ()),
        "simulated_seconds": round(report.clock.total_seconds, 3),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--exec-records", type=int, default=4_000,
                        help="records in the point dataset (default 4000)")
    parser.add_argument("--cluster", default="WS")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if the auto plan loses to a "
                             f"fixed config by more than {TOLERANCE:.2f}x "
                             "or any config's pairs differ")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_planner.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args()

    points = taxi_points(args.exec_records, seed=3)
    blocks = census_blocks(max(args.exec_records // 5, 50), seed=4)
    stats_l, stats_r = describe(points), describe(blocks)
    cluster = resolve_cluster(args.cluster)

    results, failures = [], []
    for system in SYSTEMS:
        ranked = rank_plans(stats_l, stats_r, "intersects", cluster,
                            system=system)
        est, chosen = ranked[0]
        auto = measure(points, blocks, system=system, cluster=args.cluster,
                       plan="auto")
        entry = {
            "system": system,
            "chosen_plan": chosen.describe(),
            "estimated_seconds": round(est.seconds, 3),
            "auto": auto,
            "fixed": {},
        }
        print(f"{system}: auto -> {chosen.describe()} "
              f"(est {est.seconds:,.1f}s, measured "
              f"{auto['simulated_seconds']:,.1f}s sim)")
        for label, kwargs in fixed_configs(system).items():
            row = measure(points, blocks, system=system,
                          cluster=args.cluster, plan=None,
                          system_kwargs=kwargs)
            entry["fixed"][label] = row
            print(f"  {label:>22}: {row['simulated_seconds']:10,.1f}s sim "
                  f"({row['pairs']:,} pairs)")
            if row["pairs"] != auto["pairs"]:
                failures.append(f"{system}/{label}: pairs differ from auto")
        best = min(r["simulated_seconds"] for r in entry["fixed"].values())
        entry["best_fixed_seconds"] = best
        entry["auto_vs_best_fixed"] = round(
            auto["simulated_seconds"] / max(best, 1e-9), 3
        )
        if auto["simulated_seconds"] > best * TOLERANCE:
            failures.append(
                f"{system}: auto plan {auto['simulated_seconds']:,.1f}s "
                f"loses to best fixed {best:,.1f}s"
            )
        results.append(entry)

    document = {
        "workload": {
            "exec_records": args.exec_records,
            "cluster": args.cluster,
            "datasets": "taxi_points x census_blocks",
        },
        "tolerance": TOLERANCE,
        "results": results,
        "failures": failures,
    }
    text = json.dumps(document, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
