"""Per-partition skew analysis over a span tree.

The paper explains most of the HadoopGIS / SpatialHadoop divergence with
partition skew: a handful of hot partitions (dense Manhattan cells, long
rivers crossing many tiles) make some tasks far slower than the median,
and the job waits on its stragglers.  LocationSpark (Tang et al.) builds
the same per-partition execution statistics at runtime to drive its skew
analyzer, and SATO (Aji et al.) shows skew measurement is *the*
diagnostic for distributed spatial joins.

:func:`skew_report` computes those numbers from a recorded trace: for
every phase that ran tasks — task-duration and counter histograms,
p50/p95/max, max-over-median straggler ratios, and the top-k hottest
partitions with their attributes (partition ids, candidate counts).
Durations are wall-clock (nondeterministic); the counter-based columns
are bit-identical across backends, so tests and regression gates key on
those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .core import Span

__all__ = ["PhaseSkew", "skew_report", "render_skew"]

#: Counters most indicative of partition-local join work, preferred (in
#: this order) when selecting which counter columns to report.  Every
#: entry is a key registered in :data:`repro.metrics.COUNTER_SCHEMA`
#: (earlier revisions listed names no substrate ever charged, so the
#: preference never matched anything).
_PREFERRED_COUNTERS = (
    "join.candidates",
    "join.sweep_ops",
    "geom.pip_tests",
    "geom.seg_pair_tests",
    "geom.dist_tests",
    "streaming.refine_calls",
    "cpu.ops",
)


def _percentile(values: np.ndarray, q: float) -> float:
    return float(np.percentile(values, q)) if values.size else 0.0


def _ratio(maximum: float, median: float, mean: float) -> float:
    """Max-over-median straggler ratio, falling back to the mean when the
    median is zero (more than half the tasks idle)."""
    if median > 0:
        return maximum / median
    if mean > 0:
        return maximum / mean
    return 1.0


@dataclass
class PhaseSkew:
    """Skew statistics of one phase's task population."""

    phase: str
    kind: str
    tasks: int
    #: wall-clock stats of the task durations (seconds)
    seconds: dict = field(default_factory=dict)
    #: max task duration / median task duration (the paper's straggler lens)
    straggler_ratio: float = 1.0
    p95_ratio: float = 1.0
    #: task-duration histogram counts and bin edges (seconds)
    histogram: list = field(default_factory=list)
    bin_edges: list = field(default_factory=list)
    #: per-counter skew: key -> {total, p50, p95, max, max_over_median,
    #: histogram} — deterministic across backends, unlike durations.
    counter_stats: dict = field(default_factory=dict)
    #: top-k hottest tasks by duration: {attrs, seconds, counters}
    hottest: list = field(default_factory=list)


def _phase_task_groups(root: Span) -> list[tuple[Span, list[Span]]]:
    """Task spans grouped under their nearest phase/stage ancestor.

    Groups are keyed by the phase span's *tree path* (the tuple of child
    indices from the root), not ``id(phase)``: a span's position in the
    tree is a stable identity that survives copying/pickling and cannot
    be recycled the way CPython object addresses are (the same stale-
    address hazard the ``Counters`` redirect tokens exist to avoid).
    Two phases with identical names at different tree positions stay
    distinct groups, and the report of a deep-copied tree is identical
    to the original's.
    """
    groups: dict[tuple, tuple[Span, list[Span]]] = {}

    def visit(sp: Span, phase: Optional[Span], phase_path: tuple, path: tuple) -> None:
        if sp.kind in ("phase", "stage"):
            phase, phase_path = sp, path
        if sp.kind == "task" and phase is not None:
            groups.setdefault(phase_path, (phase, []))[1].append(sp)
        for i, child in enumerate(sp.children):
            visit(child, phase, phase_path, path + (i,))

    visit(root, None, (), ())
    return list(groups.values())


def _counter_columns(
    tasks: Sequence[Span], counter_keys: Optional[Sequence[str]], limit: int = 4
) -> list[str]:
    totals: dict[str, float] = {}
    for task in tasks:
        for key, value in task.counters.items():
            totals[key] = totals.get(key, 0.0) + abs(value)
    if counter_keys is not None:
        return [k for k in counter_keys if k in totals]
    preferred = [k for k in _PREFERRED_COUNTERS if k in totals]
    if preferred:
        return preferred[:limit]
    return [k for k, _ in sorted(totals.items(), key=lambda kv: -kv[1])[:limit]]


def skew_report(
    root: Span,
    *,
    top_k: int = 5,
    counter_keys: Optional[Sequence[str]] = None,
    bins: int = 8,
    min_tasks: int = 2,
) -> list[PhaseSkew]:
    """Per-phase skew statistics for every phase that ran ≥ *min_tasks* tasks.

    *counter_keys* pins the counter columns (default: the join-work
    counters present, else the phase's largest counters).
    """
    out: list[PhaseSkew] = []
    for phase, tasks in _phase_task_groups(root):
        if len(tasks) < min_tasks:
            continue
        durations = np.array([t.seconds for t in tasks], dtype=float)
        median = float(np.median(durations))
        mean = float(durations.mean())
        maximum = float(durations.max())
        counts, edges = np.histogram(durations, bins=bins)
        row = PhaseSkew(
            phase=phase.name,
            kind=phase.kind,
            tasks=len(tasks),
            seconds={
                "total": float(durations.sum()),
                "mean": mean,
                "p50": median,
                "p95": _percentile(durations, 95),
                "max": maximum,
            },
            straggler_ratio=_ratio(maximum, median, mean),
            p95_ratio=_ratio(_percentile(durations, 95), median, mean),
            histogram=counts.tolist(),
            bin_edges=edges.tolist(),
        )
        for key in _counter_columns(tasks, counter_keys):
            values = np.array([t.counters.get(key, 0.0) for t in tasks])
            c_median = float(np.median(values))
            c_counts, _ = np.histogram(values, bins=bins)
            row.counter_stats[key] = {
                "total": float(values.sum()),
                "p50": c_median,
                "p95": _percentile(values, 95),
                "max": float(values.max()),
                "max_over_median": _ratio(
                    float(values.max()), c_median, float(values.mean())
                ),
                "histogram": c_counts.tolist(),
            }
        order = np.argsort(-durations, kind="stable")[:top_k]
        for i in order.tolist():
            task = tasks[i]
            top = sorted(task.counters.items(), key=lambda kv: -abs(kv[1]))[:3]
            row.hottest.append(
                {
                    "attrs": dict(task.attrs),
                    "seconds": task.seconds,
                    "counters": dict(top),
                }
            )
        out.append(row)
    return out


def render_skew(report: list[PhaseSkew], *, min_ratio: float = 0.0) -> str:
    """Human-readable skew table with the hottest partitions per phase."""
    lines = [
        f"{'phase':<44}{'tasks':>6}{'p50':>9}{'p95':>9}{'max':>9}{'straggler':>10}",
    ]
    for row in report:
        if row.straggler_ratio < min_ratio:
            continue
        s = row.seconds
        name = row.phase if len(row.phase) <= 44 else row.phase[:41] + "..."
        lines.append(
            f"{name:<44}{row.tasks:>6}{s['p50']*1e3:>7,.1f}ms"
            f"{s['p95']*1e3:>7,.1f}ms{s['max']*1e3:>7,.1f}ms"
            f"{row.straggler_ratio:>9.2f}x"
        )
        for key, stats in row.counter_stats.items():
            lines.append(
                f"    · {key}: total={stats['total']:,.0f} p50={stats['p50']:,.0f} "
                f"max={stats['max']:,.0f} (x{stats['max_over_median']:.2f} median)"
            )
        for hot in row.hottest[:3]:
            attrs = ", ".join(f"{k}={v}" for k, v in sorted(hot["attrs"].items()))
            lines.append(
                f"    ★ {hot['seconds']*1e3:,.1f}ms  {attrs or '(no attrs)'}"
            )
    return "\n".join(lines)
