"""Hierarchical run tracing: a deterministic span tree over real execution.

The paper's analysis method is "where did the time go?" — it attributes
each system's behaviour to stages of the preprocessing → global join →
local join framework and to partition skew within them (Section III).
This module records that attribution *during* a run instead of
reconstructing it afterwards: a tree of :class:`Span` objects —
experiment → system run → phase → task → partition — where every span
carries

* real wall-clock duration (``start`` / ``seconds``),
* the **counter deltas** charged while it was open (measured against the
  same redirect target the :mod:`repro.exec` machinery uses, so parallel
  task bodies attribute their deltas to the right span), and
* structured attributes (partition ids, candidate/refine counts, …).

**Tracing is zero-cost-to-results by construction.**  Spans never charge
or redirect counters themselves — they only *snapshot and diff* the
ledger that would have been written anyway — so result pairs and counter
totals are bit-identical with tracing on or off, on every backend.  The
wall-clock fields (``start``, ``seconds``, ``pid``, ``tid``) are the
only nondeterministic state; :meth:`Span.fingerprint` excludes them, and
the remainder of the tree is bit-identical across serial / thread /
process execution.

Activation is explicit and process-global: spans are recorded only
inside a :meth:`Tracer.session` (forked workers inherit the activation
flag; thread workers observe it directly).  Outside a session every
:func:`span` entry is a cheap no-op.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..metrics import _REDIRECT, Counters

__all__ = [
    "Span",
    "Tracer",
    "span",
    "annotate",
    "attach",
    "active",
    "current_span",
]

#: Wall-clock / worker-identity fields excluded from determinism
#: comparisons (everything else in the tree is bit-identical across
#: backends and repeated runs).
TIMING_FIELDS = ("start", "seconds", "pid", "tid")


@dataclass
class Span:
    """One node of the trace tree.

    ``counters`` holds the *inclusive* counter deltas observed while the
    span was open (children's charges are sub-intervals of the same
    ledger, so a parent's deltas equal its own work plus its children's —
    the conservation invariant the property tests pin down).
    """

    name: str
    kind: str = "span"  # experiment | run | stage | phase | task | partition
    attrs: dict = field(default_factory=dict)
    counters: Counters = field(default_factory=Counters)
    children: list["Span"] = field(default_factory=list)
    start: float = 0.0  # time.perf_counter() at open
    seconds: float = 0.0
    pid: int = 0
    tid: int = 0

    @property
    def end(self) -> float:
        return self.start + self.seconds

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, *, kind: Optional[str] = None, name: Optional[str] = None) -> list["Span"]:
        """All descendants (including self) matching *kind* and/or *name*."""
        return [
            s
            for s in self.walk()
            if (kind is None or s.kind == kind) and (name is None or s.name == name)
        ]

    def self_counters(self) -> Counters:
        """This span's exclusive deltas: inclusive minus children's sums."""
        out = Counters(self.counters)
        for child in self.children:
            for key, value in child.counters.items():
                out[key] = out.get(key, 0.0) - value
        return Counters({k: v for k, v in out.items() if v})

    def fingerprint(self):
        """Deterministic tree digest: everything except the timing fields.

        Bit-identical across backends and repeated same-seed runs; the
        golden determinism tests compare these directly.
        """
        return (
            self.name,
            self.kind,
            tuple(sorted(self.attrs.items())),
            tuple(sorted(self.counters.items())),
            tuple(child.fingerprint() for child in self.children),
        )


# --------------------------------------------------------------------- state
_TLS = threading.local()  # .stack: list[Span] of open spans in this thread
#: Count of open Tracer sessions in this process.  Forked workers inherit
#: it; thread workers read it directly.  While zero, span() is a no-op.
_ACTIVE_SESSIONS = 0
#: Guards _ACTIVE_SESSIONS: concurrent query threads may open/close
#: sessions while a long-lived service session is active, and an unlocked
#: read-modify-write could drop a decrement and leave tracing stuck on.
_SESSION_LOCK = threading.Lock()


def active() -> bool:
    """Whether a tracing session is open (spans are being recorded)."""
    return _ACTIVE_SESSIONS > 0


def set_worker_session(on: bool) -> None:
    """Force this process's session state (warm pool workers only).

    Warm workers fork once and outlive any single run, so the fork-time
    snapshot of ``_ACTIVE_SESSIONS`` goes stale: the driver ships the
    current :func:`active` flag with every stage and the worker pins its
    own state to match before running tasks.  Never call this in the
    driver process — it would clobber live Tracer sessions.
    """
    global _ACTIVE_SESSIONS
    with _SESSION_LOCK:
        _ACTIVE_SESSIONS = 1 if on else 0


def _stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def current_span() -> Optional[Span]:
    """The innermost open span of the current thread, or None."""
    stack = getattr(_TLS, "stack", None)
    return stack[-1] if stack else None


def _effective_target(counters: Counters):
    """The mapping ``counters.add`` is writing to right now, in this thread.

    Mirrors the redirect resolution of :meth:`repro.metrics.Counters.add`
    exactly: inside an executor task the target is the task's scratch
    ledger, so spans opened in task bodies diff the scratch and their
    deltas stay attributed to the right task on every backend.
    """
    sinks = getattr(_REDIRECT, "sinks", None)
    if sinks:
        token = counters.__dict__.get("_token")
        if token is not None:
            sink = sinks.get(token)
            if sink is not None:
                return sink
    return counters


class _SpanHandle:
    """Context manager returned by :func:`span` (no-op outside a session)."""

    __slots__ = ("_name", "_kind", "_counters", "_detach", "_attrs",
                 "span", "_target", "_before")

    def __init__(self, name, kind, counters, detach, attrs):
        self._name = name
        self._kind = kind
        self._counters = counters
        self._detach = detach
        self._attrs = attrs
        self.span = None
        self._target = None
        self._before = None

    def __enter__(self) -> Optional[Span]:
        if not _ACTIVE_SESSIONS:
            return None
        sp = Span(
            name=self._name,
            kind=self._kind,
            attrs=dict(self._attrs),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        if self._counters is not None:
            # Snapshot, never redirect: the accumulation order of the real
            # ledger is untouched, which is what keeps traced totals
            # bit-identical to untraced runs.
            self._target = _effective_target(self._counters)
            self._before = dict(self._target)
        _stack().append(sp)
        self.span = sp
        sp.start = time.perf_counter()
        return sp

    def __exit__(self, exc_type, exc_value, tb) -> bool:
        sp = self.span
        if sp is None:
            return False
        sp.seconds = time.perf_counter() - sp.start
        stack = _stack()
        if stack and stack[-1] is sp:
            stack.pop()
        else:  # pragma: no cover - unbalanced exit (a leaked handle)
            try:
                stack.remove(sp)
            except ValueError:
                pass
        if self._target is not None:
            before = self._before
            for key, value in self._target.items():
                delta = value - before.get(key, 0.0)
                if delta:
                    sp.counters[key] = delta
        if not self._detach:
            parent = stack[-1] if stack else None
            if parent is not None:
                parent.children.append(sp)
        return False


def span(
    name: str,
    *,
    kind: str = "span",
    counters: Optional[Counters] = None,
    detach: bool = False,
    **attrs,
) -> _SpanHandle:
    """Open a span under the current thread's innermost open span.

    *counters* selects the ledger whose deltas the span records (snapshot
    on open, diff on close — the ledger itself is never touched).
    *detach* leaves the finished span unattached; the executor uses it
    for task spans, which are grafted by :func:`attach` in task-index
    order so the tree structure is identical on every backend.

    Outside a :class:`Tracer` session this is a no-op that yields None.
    """
    return _SpanHandle(name, kind, counters, detach, attrs)


def annotate(**attrs) -> None:
    """Set attributes on the innermost open span (no-op when untraced).

    Task and partition bodies use this to label their span with partition
    ids and candidate/refine counts without threading a span handle
    through every call signature.
    """
    sp = current_span()
    if sp is not None:
        sp.attrs.update(attrs)


def attach(finished: Optional[Span]) -> None:
    """Graft an already-finished span under the current open span.

    The executor's merge loop calls this with each task's span, in
    task-index order — the same order task scratches merge — so the
    children lists are deterministic regardless of how tasks interleaved.
    """
    if finished is None:
        return
    parent = current_span()
    if parent is not None:
        parent.children.append(finished)


class Tracer:
    """Owns one traced session; ``root`` holds the finished span tree."""

    def __init__(self):
        self.root: Optional[Span] = None

    def session(
        self,
        name: str,
        *,
        kind: str = "experiment",
        counters: Optional[Counters] = None,
        **attrs,
    ) -> "_SessionHandle":
        """Open the root span and activate tracing until it closes."""
        return _SessionHandle(self, span(
            name, kind=kind, counters=counters, detach=True, **attrs
        ))


class _SessionHandle:
    __slots__ = ("_tracer", "_handle")

    def __init__(self, tracer: Tracer, handle: _SpanHandle):
        self._tracer = tracer
        self._handle = handle

    def __enter__(self) -> Span:
        global _ACTIVE_SESSIONS
        with _SESSION_LOCK:
            _ACTIVE_SESSIONS += 1
        return self._handle.__enter__()

    def __exit__(self, exc_type, exc_value, tb) -> bool:
        global _ACTIVE_SESSIONS
        try:
            return self._handle.__exit__(exc_type, exc_value, tb)
        finally:
            with _SESSION_LOCK:
                _ACTIVE_SESSIONS -= 1
            self._tracer.root = self._handle.span
