"""Hierarchical run tracing with per-partition skew analysis.

See :mod:`repro.trace.core` for the span model, :mod:`repro.trace.export`
for the rendered-tree / Chrome-trace exporters, and
:mod:`repro.trace.skew` for the straggler/skew report.
"""

from .core import (
    TIMING_FIELDS,
    Span,
    Tracer,
    active,
    annotate,
    attach,
    current_span,
    span,
)
from .export import chrome_trace, render_tree, write_chrome_trace
from .skew import PhaseSkew, render_skew, skew_report

__all__ = [
    "TIMING_FIELDS",
    "Span",
    "Tracer",
    "active",
    "annotate",
    "attach",
    "current_span",
    "span",
    "chrome_trace",
    "render_tree",
    "write_chrome_trace",
    "PhaseSkew",
    "render_skew",
    "skew_report",
]
