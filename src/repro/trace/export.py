"""Trace exporters: rendered tree and Chrome trace-event JSON (Perfetto).

Two consumers of the span tree:

* :func:`render_tree` — an indented text tree with per-span wall-clock
  and the dominant counter deltas, for terminals and reports.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}``), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Spans become
  complete ("X") events; attributes and counter deltas ride in ``args``.

Timestamps come from ``time.perf_counter()``.  On Linux that clock is
``CLOCK_MONOTONIC``, shared across forked workers, so task spans from
the process backend line up with driver-side phases on one timeline.
"""

from __future__ import annotations

import json
from typing import Optional

from .core import Span

__all__ = ["render_tree", "chrome_trace", "write_chrome_trace"]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:,.2f}s"
    return f"{seconds * 1e3:,.1f}ms"


def render_tree(
    root: Span,
    *,
    max_depth: Optional[int] = None,
    min_seconds: float = 0.0,
    top_counters: int = 3,
) -> str:
    """Indented text rendering of a span tree.

    *min_seconds* prunes fast subtrees (children below it are summarized
    as one ``… n spans`` line); *top_counters* limits the counter deltas
    shown per span to the largest ones.
    """
    lines: list[str] = []

    def visit(sp: Span, depth: int) -> None:
        indent = "  " * depth
        attrs = ""
        if sp.attrs:
            attrs = " {" + ", ".join(
                f"{k}={v}" for k, v in sorted(sp.attrs.items())
            ) + "}"
        counters = ""
        if sp.counters and top_counters:
            top = sorted(sp.counters.items(), key=lambda kv: -abs(kv[1]))
            counters = "  · " + " ".join(
                f"{k}={v:,.0f}" for k, v in top[:top_counters]
            )
        lines.append(
            f"{indent}{sp.name} [{sp.kind}] {_fmt_seconds(sp.seconds)}"
            f"{attrs}{counters}"
        )
        if max_depth is not None and depth + 1 > max_depth:
            if sp.children:
                lines.append(f"{indent}  … {len(sp.children)} spans")
            return
        hidden = 0
        for child in sp.children:
            if child.seconds < min_seconds and not child.children:
                hidden += 1
                continue
            visit(child, depth + 1)
        if hidden:
            lines.append(f"{indent}  … {hidden} spans < {_fmt_seconds(min_seconds)}")

    visit(root, 0)
    return "\n".join(lines)


def _jsonable(value):
    """Coerce attr/counter values into plain JSON types."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


def chrome_trace(root: Span) -> dict:
    """The span tree as a Chrome trace-event document (Perfetto-loadable).

    Each span becomes one complete ("X") event on its worker's
    ``pid``/``tid`` track, with timestamps relative to the root span so
    the trace starts at t=0.
    """
    base = root.start
    events: list[dict] = []
    for sp in root.walk():
        args: dict = {k: _jsonable(v) for k, v in sorted(sp.attrs.items())}
        if sp.counters:
            args["counters"] = {
                k: _jsonable(v) for k, v in sorted(sp.counters.items())
            }
        events.append(
            {
                "name": sp.name,
                "cat": sp.kind,
                "ph": "X",
                "ts": round((sp.start - base) * 1e6, 3),
                "dur": round(sp.seconds * 1e6, 3),
                "pid": sp.pid,
                "tid": sp.tid,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"root": root.name, "spans": len(events)},
    }


def write_chrome_trace(root: Span, path: str) -> str:
    """Serialize :func:`chrome_trace` to *path*; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(root), fh, indent=1)
        fh.write("\n")
    return path
