"""The feedback layer: refit cost constants from measured phase spans.

``explain_report`` puts a *measured* wall-clock column next to the
modelled one; this module closes the loop.  A :class:`Calibrator`
ingests the phase spans recorded in ``RunReport.trace``, pairs each with
its :class:`~repro.cluster.simclock.PhaseRecord` counters (the same
pairing rule as :mod:`repro.experiments.explain`), and refits the three
constants that dominate the model — the global CPU scale and the two
per-task-wave overheads — by deterministic non-negative least squares
over the recorded observations.

No hidden global state: the result is an explicit
:class:`CalibrationProfile` (JSON round-trippable) that the caller
passes back in as :class:`~repro.cluster.costmodel.CostParams` wherever
costing happens.  Fitting is *keep-if-better*: ``fit(base=profile)``
returns the base profile unchanged whenever the fresh fit does not
strictly reduce the mean relative error on the recorded observations,
so calibration error is monotonically non-increasing — the property
the drift tests pin down.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, replace
from typing import Optional

import numpy as np

from ..cluster.costmodel import DEFAULT_CPU_COSTS, CostModel, CostParams
from ..metrics import Counters

__all__ = ["CalibrationObservation", "CalibrationProfile", "Calibrator"]

#: Floor for relative-error denominators (seconds); phases faster than
#: this are effectively free and would otherwise dominate the metric.
_EPS_SECONDS = 1e-6


@dataclass(frozen=True)
class CalibrationObservation:
    """One measured phase, decomposed into the model's fit features.

    The features are computed once at ingestion under the calibrator's
    *base* params: ``cpu_seconds`` is the CPU component priced at scale
    1.0, the wave counts are the ceil-divided task waves the overhead
    term charges per constant, and ``fixed_seconds`` collects everything
    the fit does not touch (I/O, shuffle, per-job and per-process
    overheads), entering the regression as a constant offset.
    """

    name: str
    cluster: str
    measured_seconds: float
    cpu_seconds: float
    mr_waves: float
    spark_waves: float
    fixed_seconds: float


@dataclass(frozen=True)
class CalibrationProfile:
    """Fitted constants, explicit and serializable — no global state.

    ``cpu_scale`` multiplies every per-op CPU cost; the two overheads
    replace their :class:`CostParams` fields outright.  Defaults
    reproduce the uncalibrated model exactly.
    """

    cpu_scale: float = 1.0
    mr_task_overhead_s: float = CostParams().mr_task_overhead_s
    spark_task_overhead_s: float = CostParams().spark_task_overhead_s
    observations: int = 0
    training_error: Optional[float] = None

    # ----------------------------------------------------------- evaluation
    def predict(self, obs: CalibrationObservation) -> float:
        """Modelled seconds for one observation under this profile."""
        return (
            self.cpu_scale * obs.cpu_seconds
            + self.mr_task_overhead_s * obs.mr_waves
            + self.spark_task_overhead_s * obs.spark_waves
            + obs.fixed_seconds
        )

    # -------------------------------------------------------- serialization
    def to_json(self) -> str:
        """Serialize to a stable (sort_keys) JSON string."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CalibrationProfile":
        data = json.loads(text)
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})

    def cost_params(self, base: Optional[CostParams] = None) -> CostParams:
        """Materialize the profile as :class:`CostParams`.

        Every per-op CPU cost (defaults merged with *base* overrides) is
        scaled by ``cpu_scale`` and written as explicit overrides, so the
        returned params are self-contained.
        """
        base = base or CostParams()
        merged = dict(DEFAULT_CPU_COSTS)
        merged.update(base.cpu_costs)
        return replace(
            base,
            cpu_costs={k: v * self.cpu_scale for k, v in merged.items()},
            mr_task_overhead_s=self.mr_task_overhead_s,
            spark_task_overhead_s=self.spark_task_overhead_s,
        )


class Calibrator:
    """Accumulates measured phase observations and refits the constants.

    ``observe_report`` walks a traced report; ``fit`` solves a bounded
    (non-negative) least-squares problem over everything observed so far.
    The calibrator keeps its own :class:`~repro.metrics.Counters` ledger
    (``plan.observations``) — it never charges a run's ledger, so
    calibrating cannot perturb result determinism.
    """

    def __init__(self, *, params: Optional[CostParams] = None):
        self.base = params or CostParams()
        self.observations: list[CalibrationObservation] = []
        self.counters = Counters()

    # ------------------------------------------------------------ ingestion
    def observe_report(self, report) -> int:
        """Ingest every measured phase span of a traced report.

        Returns the number of observations added (0 for untraced
        reports).  Pairing follows :func:`repro.experiments.explain.
        explain_report`: phase spans match clock phases by name, in
        record order.
        """
        if report.trace is None:
            return 0
        from ..experiments.runner import resolve_cluster

        cluster = resolve_cluster(report.cluster)
        model = CostModel(
            cluster,
            params=self.base,
            engine_profile=report.engine_profile,
            memory_pressure=report.memory_pressure,
        )
        measured: dict[str, list] = {}
        for sp in report.trace.walk():
            if sp.kind == "phase":
                measured.setdefault(sp.name, []).append(sp.seconds)
        p = self.base
        added = 0
        for phase in report.clock.phases:
            spans = measured.get(phase.name)
            if not spans:
                continue
            seconds = spans.pop(0)
            comp = model.component_seconds(phase.counters, phase.tasks)
            c = Counters(phase.counters)

            def waves(n: float) -> float:
                return math.ceil(n / cluster.total_cores) if n else 0.0

            fixed = (
                comp["io"]
                + comp["shuffle"]
                + c["mr.jobs"]
                * (p.mr_job_overhead_s + p.mr_job_pernode_s * cluster.num_nodes)
                + c["spark.stages"] * p.spark_stage_overhead_s
                + waves(c["streaming.processes"]) * p.streaming_process_overhead_s
            )
            self.observations.append(
                CalibrationObservation(
                    name=phase.name,
                    cluster=report.cluster,
                    measured_seconds=float(seconds),
                    cpu_seconds=comp["cpu"],
                    mr_waves=waves(c["mr.tasks"]),
                    spark_waves=waves(c["spark.tasks"]),
                    fixed_seconds=fixed,
                )
            )
            self.counters.add("plan.observations", 1)
            added += 1
        return added

    # -------------------------------------------------------------- fitting
    def error(self, profile: CalibrationProfile) -> float:
        """Mean relative error of *profile* on the recorded observations."""
        if not self.observations:
            return 0.0
        total = 0.0
        for obs in self.observations:
            denom = max(abs(obs.measured_seconds), _EPS_SECONDS)
            total += abs(profile.predict(obs) - obs.measured_seconds) / denom
        return total / len(self.observations)

    def fit(
        self, base: Optional[CalibrationProfile] = None
    ) -> CalibrationProfile:
        """Refit the constants; keep *base* unless the fit improves it.

        Deterministic: bounded least squares on a fixed design matrix
        (SciPy's ``lsq_linear`` when available, clipped ``numpy.lstsq``
        otherwise), then keep-if-better against *base* on the mean
        relative error — so repeated calibration never regresses.
        """
        if base is None:
            base = CalibrationProfile(
                mr_task_overhead_s=self.base.mr_task_overhead_s,
                spark_task_overhead_s=self.base.spark_task_overhead_s,
            )
        if not self.observations:
            return replace(base, observations=0, training_error=None)

        features = np.array(
            [
                (o.cpu_seconds, o.mr_waves, o.spark_waves)
                for o in self.observations
            ],
            dtype=np.float64,
        )
        target = np.array(
            [o.measured_seconds - o.fixed_seconds for o in self.observations],
            dtype=np.float64,
        )
        # Weight rows by 1/measured so the solve optimizes relative error
        # (the metric keep-if-better judges on), not absolute seconds.
        weights = 1.0 / np.maximum(
            np.abs([o.measured_seconds for o in self.observations]),
            _EPS_SECONDS,
        )
        a_mat = features * weights[:, None]
        b_vec = target * weights
        # Columns with no signal are unidentifiable: keep base values.
        active = [i for i in range(3) if np.any(features[:, i] != 0.0)]
        fitted = [base.cpu_scale, base.mr_task_overhead_s,
                  base.spark_task_overhead_s]
        if active:
            sub = a_mat[:, active]
            try:
                from scipy.optimize import lsq_linear

                solution = lsq_linear(sub, b_vec, bounds=(0.0, np.inf)).x
            except ImportError:  # pragma: no cover - scipy is baked in
                solution, *_ = np.linalg.lstsq(sub, b_vec, rcond=None)
                solution = np.clip(solution, 0.0, None)
            for col, value in zip(active, solution):
                fitted[col] = float(value)
        candidate = CalibrationProfile(
            cpu_scale=fitted[0],
            mr_task_overhead_s=fitted[1],
            spark_task_overhead_s=fitted[2],
        )
        candidate_err = self.error(candidate)
        base_err = self.error(base)
        best, best_err = (
            (candidate, candidate_err)
            if candidate_err < base_err
            else (base, base_err)
        )
        return replace(
            best,
            observations=len(self.observations),
            training_error=best_err,
        )
