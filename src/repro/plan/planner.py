"""The decision layer: enumerate candidate plans, pick the argmin.

``plan_query(stats_l, stats_r, predicate, cluster)`` is the QLever-style
entry point: every *candidate* — a frozen :class:`Plan` naming the
local-join algorithm, the partitioner, the grid granularity and the
broadcast-vs-shuffle strategy — is priced by the estimate layer
(:mod:`repro.plan.estimate`) through the same :class:`~repro.cluster.
costmodel.CostModel` components that price measured phases, and the
cheapest one wins.  Ties break deterministically on the plan's sort key,
so identical statistics always produce the identical plan (a property
the workload-matrix tests pin down).

Plans are *fingerprintable*: :meth:`Plan.fingerprint` composes into the
service result-cache key, so a cached result is never served across two
different plans for the same dataset pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..cluster.costmodel import CostEstimate, CostParams
from ..core.predicate import INTERSECTS, JoinPredicate, resolve_predicate
from ..service.cache import compose_key

__all__ = [
    "Plan",
    "PLAN_SYSTEMS",
    "GRANULARITIES",
    "enumerate_plans",
    "rank_plans",
    "plan_query",
    "fixed_from_system",
    "render_ranking",
]

#: Systems the planner can choose between (the paper's three designs).
PLAN_SYSTEMS = ("HadoopGIS", "SpatialHadoop", "SpatialSpark")

#: Grid granularities enumerated per candidate space; 0 means "the
#: system's own default rule" (partitions sized to HDFS blocks).
GRANULARITIES = (0, 16, 64)

#: Local-join algorithms each system's local stage supports.
_SYSTEM_LOCALS = {
    "HadoopGIS": ("indexed_nested_loop", "plane_sweep", "sync_rtree"),
    "SpatialHadoop": ("plane_sweep", "sync_rtree"),
    "SpatialSpark": ("indexed_nested_loop", "plane_sweep", "sync_rtree"),
}

#: Partitioners each system's global stage supports.  HadoopGIS and
#: SpatialSpark multi-assign both sides, which requires tiling schemes;
#: SpatialHadoop assigns each record to its best partition, so the
#: non-tiling (str, hilbert) schemes are legal too.
_SYSTEM_PARTITIONERS = {
    "HadoopGIS": ("grid", "bsp", "quadtree"),
    "SpatialHadoop": ("grid", "bsp", "quadtree", "str", "hilbert"),
    "SpatialSpark": ("grid", "bsp", "quadtree"),
}

#: The partitioner each system used before the planner existed (the
#: hardcoded choice the refactor lifted into plan fields).
_SYSTEM_DEFAULT_PARTITIONER = {
    "HadoopGIS": "grid",
    "SpatialHadoop": "str",
    "SpatialSpark": "bsp",
}

_SYSTEM_DEFAULT_LOCAL = {
    "HadoopGIS": "indexed_nested_loop",
    "SpatialHadoop": "plane_sweep",
    "SpatialSpark": "indexed_nested_loop",
}


@dataclass(frozen=True, order=True)
class Plan:
    """One frozen, fingerprintable execution choice for a join query.

    ``n_partitions=0`` means "the system's default granularity rule"
    (partitions sized to the input's HDFS blocks), which is how the
    pre-planner constructors behaved with ``n_partitions=None``.
    Broadcast plans canonicalize their partitioned-only fields so two
    spellings of the same physical execution share one fingerprint.
    """

    system: str
    local_algorithm: str = "indexed_nested_loop"
    partitioner: str = "bsp"
    n_partitions: int = 0
    strategy: str = "partitioned"
    #: skew handling: "off" (legacy pipelines) or "skew" (sFilter shuffle
    #: pruning + adaptive hot-cell repartitioning, :mod:`repro.shuffle`).
    shuffle: str = "off"

    def __post_init__(self):
        if self.system not in PLAN_SYSTEMS:
            raise ValueError(
                f"unknown system {self.system!r}; options: {PLAN_SYSTEMS}"
            )
        if self.strategy not in ("partitioned", "broadcast"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.shuffle not in ("off", "skew"):
            raise ValueError(
                f"shuffle must be 'off' or 'skew', not {self.shuffle!r}"
            )
        if self.strategy == "broadcast":
            if self.system != "SpatialSpark":
                raise ValueError(
                    "broadcast strategy is a SpatialSpark design "
                    "(the early design of its ref. [6])"
                )
            # Broadcast runs no partitioner and no per-partition local
            # join: canonicalize those fields so equal executions get
            # equal fingerprints.  It has no exchange to prune and no
            # cells to split, so shuffle canonicalizes to off too.
            object.__setattr__(self, "local_algorithm", "indexed_nested_loop")
            object.__setattr__(self, "partitioner", "bsp")
            object.__setattr__(self, "n_partitions", 0)
            object.__setattr__(self, "shuffle", "off")
            return
        if self.local_algorithm not in _SYSTEM_LOCALS[self.system]:
            raise ValueError(
                f"{self.system} local stage offers "
                f"{_SYSTEM_LOCALS[self.system]}, not {self.local_algorithm!r}"
            )
        if self.partitioner not in _SYSTEM_PARTITIONERS[self.system]:
            raise ValueError(
                f"{self.system} supports partitioners "
                f"{_SYSTEM_PARTITIONERS[self.system]}, not {self.partitioner!r}"
            )
        if self.n_partitions < 0:
            raise ValueError("n_partitions must be >= 0 (0 = system default)")

    # ------------------------------------------------------------- identity
    def fingerprint(self) -> str:
        """Canonical cache-key fragment (composes into service keys)."""
        return compose_key(
            "plan",
            system=self.system,
            local=self.local_algorithm,
            partitioner=self.partitioner,
            n_partitions=self.n_partitions,
            strategy=self.strategy,
            shuffle=self.shuffle,
        )

    def describe(self) -> str:
        """Short human/span-attribute spelling of the decision."""
        if self.strategy == "broadcast":
            return f"{self.system}/broadcast"
        parts = self.n_partitions or "auto"
        suffix = "/skew" if self.shuffle == "skew" else ""
        return (
            f"{self.system}/{self.strategy}/{self.partitioner}"
            f"/p={parts}/{self.local_algorithm}{suffix}"
        )

    # ------------------------------------------------------------ execution
    def system_kwargs(self) -> dict:
        """Constructor kwargs reproducing this plan on ``make_system``.

        The systems also accept ``plan=`` directly; this spelling exists
        for the bit-identity tests (planner-chosen vs explicit kwargs)
        and for serializing a plan into a plain config.
        """
        kwargs: dict = {}
        if self.n_partitions:
            kwargs["n_partitions"] = self.n_partitions
        if self.system == "SpatialSpark":
            kwargs["broadcast_join"] = self.strategy == "broadcast"
            if self.strategy == "partitioned":
                kwargs["partitioner"] = self.partitioner
                kwargs["local_algorithm"] = self.local_algorithm
        elif self.system == "SpatialHadoop":
            kwargs["partitioner"] = self.partitioner
            kwargs["local_algorithm"] = self.local_algorithm
        else:  # HadoopGIS
            kwargs["partitioner"] = self.partitioner
            kwargs["local_algorithm"] = self.local_algorithm
        if self.shuffle == "skew":
            kwargs["shuffle"] = True
        return kwargs


def enumerate_plans(system: Optional[str] = None) -> list[Plan]:
    """Every candidate plan for *system* (all systems when ``None``).

    The candidate space of the tentpole: local-join algorithm ×
    partitioner × grid granularity × broadcast-vs-shuffle, restricted to
    the combinations each system's design can execute.
    """
    systems = PLAN_SYSTEMS if system is None else (system,)
    plans: list[Plan] = []
    for sysname in systems:
        if sysname not in PLAN_SYSTEMS:
            raise ValueError(
                f"unknown system {sysname!r}; options: {PLAN_SYSTEMS}"
            )
        if sysname == "SpatialSpark":
            plans.append(Plan(system=sysname, strategy="broadcast"))
        for local in _SYSTEM_LOCALS[sysname]:
            for part in _SYSTEM_PARTITIONERS[sysname]:
                for n in GRANULARITIES:
                    plans.append(
                        Plan(
                            system=sysname,
                            local_algorithm=local,
                            partitioner=part,
                            n_partitions=n,
                        )
                    )
    return plans


def fixed_from_system(system_obj, *, strategy: Optional[str] = None) -> Plan:
    """Freeze an already-configured system object into the Plan it runs.

    The inverse of :meth:`Plan.system_kwargs`: lets the service compose
    a plan fingerprint into cache keys even for handles prepared with
    explicit legacy kwargs.
    """
    name = system_obj.name
    local = getattr(
        system_obj, "local_algorithm", _SYSTEM_DEFAULT_LOCAL[name]
    )
    partitioner = getattr(system_obj, "partitioner", None)
    part_name = (
        partitioner.name if partitioner is not None
        else _SYSTEM_DEFAULT_PARTITIONER[name]
    )
    if strategy is None:
        strategy = (
            "broadcast"
            if getattr(system_obj, "broadcast_join", False)
            else "partitioned"
        )
    return Plan(
        system=name,
        local_algorithm=local,
        partitioner=part_name,
        n_partitions=int(getattr(system_obj, "n_partitions", None) or 0),
        strategy=strategy,
        shuffle=(
            "skew" if getattr(system_obj, "shuffle", None) is not None
            else "off"
        ),
    )


def rank_plans(
    stats_l,
    stats_r,
    predicate: Union[JoinPredicate, str] = INTERSECTS,
    cluster="WS",
    *,
    system: Optional[str] = None,
    block_size: int = 1 << 16,
    params: Optional[CostParams] = None,
    blocks_l: Optional[int] = None,
    blocks_r: Optional[int] = None,
    skew_l: Optional[float] = None,
    skew_r: Optional[float] = None,
) -> "list[tuple[CostEstimate, Plan]]":
    """All candidates with their estimates, cheapest first.

    Deterministic: equal-cost candidates order by the plan's own sort
    key, so the ranking (and therefore :func:`plan_query`'s argmin) is a
    pure function of the statistics.

    *skew_l* / *skew_r* are optional measured skew ratios (max/mean cell
    density, e.g. :func:`repro.data.stats.skew_ratio` or a sampled
    :attr:`repro.shuffle.QualityStats.skew`).  When either side exceeds
    the trigger, ``shuffle="skew"`` variants of every partitioned
    candidate join the space and the straggler penalty inflates the
    plain-shuffle plans — skew is opt-in: with both at ``None`` the
    candidate space and ranking are exactly the legacy ones.
    """
    import dataclasses

    from ..experiments.runner import resolve_cluster
    from .estimate import SKEW_TRIGGER, EstimateContext, estimate_plan

    predicate = resolve_predicate(predicate)
    skew = max(skew_l or 1.0, skew_r or 1.0)
    ctx = EstimateContext(
        stats_a=stats_l,
        stats_b=stats_r,
        cluster=resolve_cluster(cluster),
        margin=predicate.filter_margin,
        block_size=block_size,
        blocks_a=blocks_l,
        blocks_b=blocks_r,
        skew=skew,
    )
    candidates = enumerate_plans(system)
    if skew > SKEW_TRIGGER:
        candidates = candidates + [
            dataclasses.replace(plan, shuffle="skew")
            for plan in candidates
            if plan.strategy == "partitioned"
        ]
    ranked = [
        (estimate_plan(plan, ctx, params=params), plan)
        for plan in candidates
    ]
    ranked.sort(key=lambda pair: (pair[0].seconds, pair[1]))
    return ranked


def plan_query(
    stats_l,
    stats_r,
    predicate: Union[JoinPredicate, str] = INTERSECTS,
    cluster="WS",
    *,
    system: Optional[str] = None,
    block_size: int = 1 << 16,
    params: Optional[CostParams] = None,
    blocks_l: Optional[int] = None,
    blocks_r: Optional[int] = None,
    skew_l: Optional[float] = None,
    skew_r: Optional[float] = None,
) -> Plan:
    """Choose the cheapest plan for joining two datasets on *cluster*.

    *system* restricts the candidate space to one system (the
    ``spatial_join(system=..., plan="auto")`` path); ``None`` lets the
    planner pick the system too.  *blocks_l* / *blocks_r* override the
    estimated HDFS block counts with measured ones when the data is
    already staged (the service path).  *skew_l* / *skew_r* are measured
    skew ratios that unlock ``shuffle="skew"`` candidates (see
    :func:`rank_plans`).
    """
    ranked = rank_plans(
        stats_l, stats_r, predicate, cluster,
        system=system, block_size=block_size, params=params,
        blocks_l=blocks_l, blocks_r=blocks_r,
        skew_l=skew_l, skew_r=skew_r,
    )
    return ranked[0][1]


def render_ranking(
    ranked: "list[tuple[CostEstimate, Plan]]", *, top: int = 10
) -> str:
    """Human-readable candidate table for ``repro plan --explain``."""
    lines = [
        f"{'rank':>4}  {'est. seconds':>12}  {'est. pairs':>10}  "
        f"{'mult':>6}  plan"
    ]
    for i, (est, plan) in enumerate(ranked[:top], start=1):
        lines.append(
            f"{i:>4}  {est.seconds:>12,.2f}  {est.rows:>10,.0f}  "
            f"{est.multiplicity:>6,.2f}  {plan.describe()}"
        )
    if len(ranked) > top:
        lines.append(f"      … {len(ranked) - top} more candidates")
    return "\n".join(lines)
