"""The estimate layer: per-operator cost estimates from dataset statistics.

Every operator of the three pipelines — ingest, partition, index build,
the global-join strategies, each local-join algorithm, refinement —
registers a QLever-style estimator in
:data:`repro.cluster.costmodel.OPERATOR_ESTIMATORS`.  An estimator
predicts the operator's *resource counts* (the same counter keys the
substrates charge) from two :class:`~repro.data.stats.DatasetStats` and
prices them through :meth:`CostModel.seconds_for` — the single pricing
path shared with measured phases, so calibrated constants move estimates
and explanations together.

The dominant terms at execution scale are the framework task waves
(``mr.tasks`` / ``spark.tasks`` ceil-divided over cluster cores), so the
estimators replicate each substrate's task-count arithmetic exactly:
map tasks per input block, reducer counts per system rule, SpatialHadoop
join tasks from the expected partition-pair count, Spark tasks per
materialized stage.  CPU, I/O and shuffle terms refine the ranking
within equal-wave candidates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..cluster.costmodel import (
    CostEstimate,
    CostModel,
    CostParams,
    estimate_operator,
    register_operator,
)
from ..cluster.specs import ClusterConfig
from ..data.stats import DatasetStats

__all__ = ["EstimateContext", "estimate_plan", "SKEW_TRIGGER"]

#: Measured skew ratio (max/mean cell density) beyond which the planner
#: considers ``shuffle="skew"`` candidates and penalizes plain-shuffle
#: partitioned plans for their expected straggler wave.  Matches the
#: default :attr:`repro.shuffle.ShuffleConfig.hot_factor`.
SKEW_TRIGGER = 4.0


@dataclass(frozen=True)
class EstimateContext:
    """Everything an operator estimator may read about the workload."""

    stats_a: DatasetStats
    stats_b: DatasetStats
    cluster: ClusterConfig
    #: filter margin of the predicate (0 for intersects).
    margin: float = 0.0
    block_size: int = 1 << 16
    #: measured HDFS block counts of the staged inputs, when known (the
    #: service path); ``None`` estimates them from the byte statistics.
    blocks_a: Optional[int] = None
    blocks_b: Optional[int] = None
    sample_fraction: float = 0.05
    #: measured skew ratio of the denser input (max/mean cell density);
    #: 1.0 = uniform.  Only set when the caller measured it — the
    #: planner never guesses skew from the summary statistics.
    skew: float = 1.0


# --------------------------------------------------------------- derived
def _blocks(stats: DatasetStats, override: Optional[int], block_size: int) -> int:
    if override is not None:
        return max(1, int(override))
    return max(1, -(-int(stats.total_bytes) // block_size))


def _cells(partitioner: str, n_parts: int) -> int:
    """Partition count a partitioner actually produces for a target."""
    n = max(1, int(n_parts))
    if partitioner == "grid":
        nx = max(1, int(round(math.sqrt(n))))
        ny = max(1, -(-n // nx))
        return nx * ny
    if partitioner == "quadtree":
        # Quadtree leaf counts are 1 mod 3 (each split adds 3 leaves) and
        # the tree splits wherever the sample is dense, not where the
        # target says: skewed data routinely yields ~3x the requested
        # leaves (e.g. clustered points at target 2 produce 10).  Price
        # that expected overshoot so the planner only picks quadtree when
        # it wins by more than its own uncertainty.
        return max(4, 1 + 3 * (-(-max(3 * n - 1, 1) // 3)))
    return n  # bsp / str / hilbert hit the target exactly


def _duplication(stats: DatasetStats, cells: int, universe_w: float,
                 universe_h: float, tiles: bool) -> float:
    """Mean multi-assignment copies per record over a tiling of *cells*.

    Best-partition assignment (non-tiling schemes) never duplicates;
    tiling schemes replicate a record into every cell its MBR touches —
    on average ``(1 + w̄/cell_w)(1 + h̄/cell_h)`` under uniform placement.
    """
    if not tiles or cells <= 1:
        return 1.0
    side = math.sqrt(cells)
    cell_w = max(universe_w / side, 1e-12)
    cell_h = max(universe_h / side, 1e-12)
    return (1.0 + stats.mean_width / cell_w) * (1.0 + stats.mean_height / cell_h)


@dataclass(frozen=True)
class _Derived:
    """Per-(ctx, plan) quantities shared by the operator estimators."""

    blocks_a: int
    blocks_b: int
    #: target partition count after the system's default rule.
    n_parts: int
    #: partitions the chosen partitioner actually produces.
    cells: int
    dup_a: float
    dup_b: float
    #: analytic MBR-join candidate estimate (uniform-placement model).
    candidates: float
    #: candidate count including multi-assignment duplication.
    candidates_dup: float
    #: expected intersecting partition pairs (SpatialHadoop splits).
    split_pairs: int
    universe_w: float
    universe_h: float


def _derive(ctx: EstimateContext, plan) -> _Derived:
    a, b = ctx.stats_a, ctx.stats_b
    blocks_a = _blocks(a, ctx.blocks_a, ctx.block_size)
    blocks_b = _blocks(b, ctx.blocks_b, ctx.block_size)
    universe = a.extent.union(b.extent)
    w = max(universe.width, 1e-12)
    h = max(universe.height, 1e-12)
    area = w * h

    # The system's default granularity rule (n_partitions=0).
    if plan.n_partitions:
        n_parts = plan.n_partitions
    elif plan.system == "SpatialHadoop":
        # Per-dataset rule: one partition per block of the indexed file.
        n_parts = max(2, blocks_a, blocks_b)
    else:
        n_parts = max(4, blocks_a + blocks_b)

    tiles = plan.partitioner in ("grid", "bsp", "quadtree")
    cells = _cells(plan.partitioner, n_parts)
    dup_a = _duplication(a, cells, w, h, tiles)
    dup_b = _duplication(b, cells, w, h, tiles)

    m = ctx.margin
    p_pair = (
        (a.mean_width + b.mean_width + 2 * m)
        * (a.mean_height + b.mean_height + 2 * m)
        / area
    )
    candidates = float(a.count * b.count) * min(p_pair, 1.0)
    # A pair duplicates only into cells where BOTH copies land.
    candidates_dup = candidates * min(dup_a, dup_b)

    # Expected intersecting partition pairs when each dataset carries its
    # own ~n_parts partitioning (SpatialHadoop's binary splits): two
    # random cells of side 1/√P intersect with probability ≈ (1/√Pa+1/√Pb)².
    pa = pb = max(1, _cells(plan.partitioner, n_parts))
    overlap = min(1.0, (1.0 / math.sqrt(pa) + 1.0 / math.sqrt(pb)) ** 2)
    split_pairs = max(1, int(round(pa * pb * overlap)))
    return _Derived(
        blocks_a=blocks_a, blocks_b=blocks_b, n_parts=n_parts, cells=cells,
        dup_a=dup_a, dup_b=dup_b, candidates=candidates,
        candidates_dup=candidates_dup, split_pairs=split_pairs,
        universe_w=w, universe_h=h,
    )


def _price_phases(
    model: CostModel, phases, *, rows: float = 0.0, multiplicity: float = 1.0
) -> CostEstimate:
    """Price a list of ``(counters, tasks)`` phases into one estimate.

    Each phase is priced separately — task-wave overheads ceil-divide
    *per phase*, exactly as :meth:`CostModel.phase_seconds` prices the
    measured clock — then seconds add and counters merge for the audit.
    """
    seconds = 0.0
    merged: dict[str, float] = {}
    max_tasks = 1
    for counters, tasks in phases:
        seconds += model.seconds_for(counters, tasks)
        max_tasks = max(max_tasks, tasks)
        for key, value in counters.items():
            merged[key] = merged.get(key, 0.0) + value
    return CostEstimate(
        seconds=seconds, rows=rows, multiplicity=multiplicity,
        counters=merged, tasks=max_tasks,
    )


def _nlogn(n: float) -> float:
    return n * max(math.log2(max(n, 2.0)), 1.0)


# ============================================================== operators
@register_operator("ingest")
def _est_ingest(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """Staging + first parse of both inputs.

    SpatialSpark's functional access parses both RDDs in one Spark phase
    (``sspark.load``); the Hadoop systems stage text into HDFS and parse
    inside their first MR jobs (costed by ``partition``), so ingest is
    the staging write alone.
    """
    d = _derive(ctx, plan)
    n = ctx.stats_a.count + ctx.stats_b.count
    nbytes = float(ctx.stats_a.total_bytes + ctx.stats_b.total_bytes)
    if plan.system == "SpatialSpark":
        phase = {
            "spark.stages": 2.0,
            "spark.tasks": float(d.blocks_a + d.blocks_b),
            "hdfs.bytes_read": nbytes,
            "parse.records": float(n),
            "parse.bytes": nbytes,
        }
        return _price_phases(
            model, [(phase, ctx.cluster.total_cores)], rows=float(n)
        )
    return _price_phases(
        model, [({"hdfs.bytes_written": nbytes}, 1)], rows=float(n)
    )


@register_operator("partition")
def _est_partition(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """Sample + build the partitioning (strategy-specific pipeline)."""
    d = _derive(ctx, plan)
    a, b = ctx.stats_a, ctx.stats_b
    cores = ctx.cluster.total_cores
    if plan.system == "SpatialSpark":
        # One in-memory phase: sample the right RDD, build partitions and
        # an STR tree over the partition MBRs, broadcast it.
        sample_n = max(1.0, b.count * ctx.sample_fraction)
        phase = {
            "spark.stages": 1.0,
            "spark.tasks": float(d.blocks_b),
            "cpu.ops": sample_n,
            "sort.ops": _nlogn(sample_n),
            "index.build_ops": float(d.cells),
            "net.bytes_broadcast": 40.0 * d.cells + 64.0,
        }
        return _price_phases(model, [(phase, cores)], rows=float(d.cells))
    if plan.system == "SpatialHadoop":
        # MR job 1 per dataset: sample map wave + single-reducer wave.
        phases = []
        for stats, blocks in ((a, d.blocks_a), (b, d.blocks_b)):
            sample_n = max(1.0, stats.count * ctx.sample_fraction)
            phases.append((
                {
                    "mr.jobs": 1.0,
                    "mr.tasks": float(blocks),
                    "hdfs.bytes_read": float(stats.total_bytes),
                    "parse.records": sample_n,
                },
                blocks,
            ))
            phases.append((
                {"mr.tasks": 1.0, "cpu.ops": sample_n,
                 "sort.ops": _nlogn(sample_n)},
                1,
            ))
        return _price_phases(model, phases, rows=float(d.cells))
    # HadoopGIS: the six preprocessing steps per dataset.  Five of the
    # waves are fixed-shape MR jobs; the serial steps are CPU-ms.
    phases = []
    for stats, blocks in ((a, d.blocks_a), (b, d.blocks_b)):
        nbytes = float(stats.total_bytes)
        n = float(stats.count)
        sample_n = max(1.0, n * ctx.sample_fraction)
        # convert (map-only), sample (map-only), extent (map + 1 reducer),
        # normalize (map-only over the tiny sample file).
        phases.append((
            {"mr.jobs": 1.0, "mr.tasks": float(blocks),
             "hdfs.bytes_read": nbytes, "hdfs.bytes_written": nbytes,
             "parse.records": n, "parse.bytes": nbytes,
             "serialize.records": n, "serialize.bytes": nbytes},
            blocks,
        ))
        phases.append((
            {"mr.jobs": 1.0, "mr.tasks": float(blocks),
             "hdfs.bytes_read": nbytes, "parse.records": sample_n},
            blocks,
        ))
        phases.append((
            {"mr.jobs": 1.0, "mr.tasks": 1.0, "parse.records": sample_n},
            1,
        ))
        phases.append(({"mr.tasks": 1.0, "cpu.ops": sample_n}, 1))
        phases.append((
            {"mr.jobs": 1.0, "mr.tasks": 1.0, "parse.records": sample_n,
             "serialize.records": sample_n},
            1,
        ))
        # gen_partitions: serial local program (HDFS↔local copies).
        phases.append(({"cpu.ops": sample_n}, 1))
        # assign: map wave + reducer wave + per-map R-tree rebuild, then
        # the serial cat|sort|uniq dedup.
        phases.append((
            {"mr.jobs": 1.0, "mr.tasks": float(blocks),
             "hdfs.bytes_read": nbytes,
             "parse.records": n, "parse.bytes": nbytes,
             "index.build_ops": float(d.cells * blocks),
             "index.node_visits": n * max(math.log2(max(d.cells, 2)), 1.0),
             "serialize.bytes": nbytes,
             "shuffle.bytes_disk": nbytes},
            blocks,
        ))
        phases.append((
            {"mr.tasks": float(blocks), "serialize.bytes": nbytes,
             "hdfs.bytes_written": nbytes},
            blocks,
        ))
        phases.append(({"sort.ops": _nlogn(n), "pipe.bytes": 2 * nbytes,
                        "streaming.processes": 1.0,
                        "hdfs.bytes_written": nbytes}, 1))
    return _price_phases(model, phases, rows=float(d.cells))


@register_operator("index_build")
def _est_index_build(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """Persistent index construction (SpatialHadoop's MR job 2 pair).

    SpatialSpark indexes in memory inside its partition/join phases and
    HadoopGIS never builds a persistent index, so both estimate to zero
    here — the registry still answers for them so the decision layer can
    compose one uniform pipeline.
    """
    if plan.system != "SpatialHadoop":
        return CostEstimate(0.0)
    d = _derive(ctx, plan)
    phases = []
    for stats, blocks in (
        (ctx.stats_a, d.blocks_a), (ctx.stats_b, d.blocks_b)
    ):
        n = float(stats.count)
        nbytes = float(stats.total_bytes)
        reducers = max(min(d.cells, 32), 1)
        # Job 2: assign map wave (parses everything, queries the seed
        # partitioning), reducer wave on min(P, 32) slots, then the
        # indexed-block write phase (serialize + per-block STR build).
        phases.append((
            {"mr.jobs": 1.0, "mr.tasks": float(blocks),
             "hdfs.bytes_read": nbytes, "parse.records": n,
             "parse.bytes": nbytes,
             "cpu.ops": n * max(math.log2(max(d.cells, 2)), 1.0)},
            blocks,
        ))
        phases.append((
            {"mr.tasks": float(reducers), "shuffle.bytes_disk": nbytes},
            reducers,
        ))
        phases.append((
            {"serialize.records": n, "serialize.bytes": nbytes,
             "hdfs.bytes_written": nbytes,
             "index.build_ops": n, "index.nodes_built": n / 16.0},
            reducers,
        ))
    return _price_phases(model, phases, rows=float(2 * d.cells))


@register_operator("global_join.shuffle")
def _est_global_shuffle(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """SpatialSpark's partitioned global join: flatMap both sides against
    the broadcast partition tree, groupByKey, narrow hash join."""
    d = _derive(ctx, plan)
    a, b = ctx.stats_a, ctx.stats_b
    rec_a = a.count * d.dup_a
    rec_b = b.count * d.dup_b
    shuffled = rec_a + rec_b
    mem_bytes = a.total_bytes * d.dup_a + b.total_bytes * d.dup_b
    logc = max(math.log2(max(d.cells, 2)), 1.0)
    phase = {
        "spark.stages": 3.0,
        # partitionBy map-side tasks per input side + the final collect
        # over the joined buckets.
        "spark.tasks": float(d.blocks_a + d.blocks_b + d.cells),
        "spark.shuffle_records": shuffled,
        "shuffle.bytes_mem": 2.0 * mem_bytes,
        "sort.ops": _nlogn(rec_a) + _nlogn(rec_b) + _nlogn(d.candidates_dup),
        "index.node_visits": (a.count + b.count) * logc,
    }
    return _price_phases(
        model, [(phase, ctx.cluster.total_cores)],
        rows=shuffled, multiplicity=(d.dup_a + d.dup_b) / 2.0,
    )


@register_operator("global_join.broadcast")
def _est_global_broadcast(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """SpatialSpark's early broadcast design: collect the right side,
    broadcast data + STR index, probe every left record directly.

    One Spark phase end to end (including both HDFS reads) — its wave
    arithmetic is what makes broadcast win small workloads outright.
    Payloads beyond executor memory estimate to +inf: the planner must
    never choose a plan the memory model would fail.
    """
    d = _derive(ctx, plan)
    a, b = ctx.stats_a, ctx.stats_b
    payload = float(b.total_bytes + 40 * b.count)
    if payload > ctx.cluster.usable_memory_bytes:
        return CostEstimate(seconds=float("inf"), rows=d.candidates)
    nbytes = float(a.total_bytes + b.total_bytes)
    logn = max(math.log2(max(b.count, 2)), 1.0)
    phase = {
        "spark.stages": 4.0,
        "spark.tasks": float(2 * d.blocks_a + 2 * d.blocks_b),
        "hdfs.bytes_read": nbytes,
        "parse.records": float(a.count + b.count),
        "parse.bytes": nbytes,
        "net.bytes_broadcast": payload,
        "index.build_ops": float(b.count),
        "index.nodes_built": b.count / 16.0,
        "index.node_visits": a.count * logn,
        "join.candidates": d.candidates,
    }
    return _price_phases(
        model, [(phase, ctx.cluster.total_cores)], rows=d.candidates
    )


@register_operator("global_join.splits")
def _est_global_splits(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """SpatialHadoop's global join: the serial getSplits partition sweep
    plus the map-only join job's task wave (one map per block pair)."""
    d = _derive(ctx, plan)
    a, b = ctx.stats_a, ctx.stats_b
    pairs = d.split_pairs
    # Each paired split re-reads its two partition blocks.
    read_amp_records = pairs * (a.count + b.count) / max(d.cells, 1)
    read_amp_bytes = pairs * (a.total_bytes + b.total_bytes) / max(d.cells, 1)
    phases = [
        (
            {"sort.ops": _nlogn(2 * d.cells),
             "join.sweep_ops": 2.0 * d.cells + pairs},
            1,
        ),
        (
            {"mr.jobs": 1.0, "mr.tasks": float(pairs),
             "hdfs.bytes_read": float(read_amp_bytes),
             "deser.records": float(read_amp_records),
             "hdfs.bytes_written": 16.0 * d.candidates},
            pairs,
        ),
    ]
    return _price_phases(model, phases, rows=float(pairs))


@register_operator("global_join.mr_streaming")
def _est_global_mr_streaming(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """HadoopGIS's global join: serial sample combination, then the MR
    join job whose every map task rebuilds the partition R-tree and
    re-assigns both datasets (the paper's criticized design)."""
    d = _derive(ctx, plan)
    a, b = ctx.stats_a, ctx.stats_b
    maps = d.blocks_a + d.blocks_b
    n = float(a.count + b.count)
    nbytes = float(a.total_bytes + b.total_bytes)
    dup_bytes = a.total_bytes * d.dup_a + b.total_bytes * d.dup_b
    dup_records = a.count * d.dup_a + b.count * d.dup_b
    sample_n = max(1.0, n * ctx.sample_fraction)
    logc = max(math.log2(max(d.cells, 2)), 1.0)
    reducers = max(d.cells, 1)
    phases = [
        # combine_samples: serial local program.
        ({"cpu.ops": sample_n, "localfs.bytes_read": 32.0 * sample_n}, 1),
        # join map wave: parse, rebuild R-tree per task, assign, emit.
        (
            {"mr.jobs": 1.0, "mr.tasks": float(maps),
             "hdfs.bytes_read": nbytes,
             "parse.records": n, "parse.bytes": nbytes,
             "index.build_ops": float(d.cells * maps),
             "index.node_visits": n * logc,
             "serialize.records": dup_records,
             "serialize.bytes": dup_bytes,
             "shuffle.bytes_disk": dup_bytes},
            maps,
        ),
        # reducer wave: re-parse everything that crossed the shuffle.
        (
            {"mr.tasks": float(reducers),
             "parse.records": dup_records, "parse.bytes": dup_bytes},
            reducers,
        ),
        # serial result dedup (cat | sort | uniq over the pairs).
        ({"sort.ops": _nlogn(d.candidates_dup)}, 1),
    ]
    return _price_phases(
        model, phases, rows=dup_records,
        multiplicity=(d.dup_a + d.dup_b) / 2.0,
    )


def _local_counts(ctx: EstimateContext, plan):
    """Effective per-side record counts and parallelism of the local stage."""
    d = _derive(ctx, plan)
    if plan.system == "SpatialSpark":
        return (
            ctx.stats_a.count * d.dup_a, ctx.stats_b.count * d.dup_b,
            d.candidates_dup, d.cells, d,
        )
    if plan.system == "SpatialHadoop":
        return (
            float(ctx.stats_a.count), float(ctx.stats_b.count),
            d.candidates, d.split_pairs, d,
        )
    return (
        ctx.stats_a.count * d.dup_a, ctx.stats_b.count * d.dup_b,
        d.candidates_dup, d.cells, d,
    )


@register_operator("local_join.indexed_nested_loop")
def _est_local_inl(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """Index the right side per partition, probe with every left MBR."""
    n_a, n_b, cand, tasks, d = _local_counts(ctx, plan)
    per_part = max(n_b / max(d.cells, 1), 2.0)
    counters = {
        "index.build_ops": n_b,
        "index.nodes_built": n_b / 16.0,
        "index.node_visits": n_a * max(math.log2(per_part), 1.0) + cand,
        "join.candidates": cand,
    }
    if plan.system == "HadoopGIS":
        # Dynamic R-tree inserts (with splits) + per-candidate refine
        # calls across the streaming pipe — HadoopGIS's dominant CPU tax.
        counters["index.splits"] = n_b / 16.0
        counters["streaming.refine_calls"] = cand
    return _price_phases(model, [(counters, tasks)], rows=cand)


@register_operator("local_join.plane_sweep")
def _est_local_sweep(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """Sort both sides by xmin and sweep (SpatialHadoop's default)."""
    n_a, n_b, cand, tasks, d = _local_counts(ctx, plan)
    # x-overlap pairs seen by the sweep exceed the final (x and y)
    # candidates by the inverse of the y-selectivity.
    x_pairs = cand * max(
        d.universe_h
        / max(ctx.stats_a.mean_height + ctx.stats_b.mean_height
              + 2 * ctx.margin, 1e-12),
        1.0,
    ) / max(d.cells, 1)
    counters = {
        "sort.ops": _nlogn(n_a) + _nlogn(n_b),
        "join.sweep_ops": n_a + n_b + min(x_pairs, n_a * n_b),
        "join.candidates": cand,
    }
    if plan.system == "HadoopGIS":
        counters["streaming.refine_calls"] = cand
    return _price_phases(model, [(counters, tasks)], rows=cand)


@register_operator("local_join.sync_rtree")
def _est_local_sync(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """Build STR trees on both sides, synchronized traversal."""
    n_a, n_b, cand, tasks, _d = _local_counts(ctx, plan)
    counters = {
        "index.build_ops": n_a + n_b,
        "index.nodes_built": (n_a + n_b) / 16.0,
        "index.node_visits": 4.0 * cand + (n_a + n_b) / 8.0,
        "index.leaf_pair_tests": 2.0 * cand,
        "join.candidates": cand,
    }
    if plan.system == "HadoopGIS":
        counters["streaming.refine_calls"] = cand
    return _price_phases(model, [(counters, tasks)], rows=cand)


@register_operator("refine")
def _est_refine(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """Exact-geometry refinement of the candidate pairs.

    Priced per candidate through the *model's* engine profile, so the
    GEOS-like engine's 4× per-op tax surfaces in HadoopGIS estimates.
    """
    n_a, n_b, cand, tasks, _d = _local_counts(ctx, plan)
    verts = ctx.stats_b.mean_points
    if ctx.margin > 0:
        counters = {
            "geom.dist_tests": cand,
            "geom.vertex_ops": cand * verts,
        }
    else:
        counters = {
            "geom.pip_tests": cand,
            "geom.vertex_ops": cand * verts,
        }
    selectivity = 0.25  # refined pairs per candidate, coarse prior
    return _price_phases(
        model, [(counters, tasks)], rows=cand * selectivity
    )


@register_operator("shuffle.skew")
def _est_shuffle_skew(model: CostModel, *, ctx: EstimateContext, plan) -> CostEstimate:
    """The skew/prune pipeline's own cost (:mod:`repro.shuffle`).

    Two sFilter builds plus one vectorized keep-mask pass over every
    record, and a quality-stats pass over the sample — cheap next to the
    straggler wave it removes, which is exactly why the planner picks it
    once :data:`SKEW_TRIGGER` trips.  Zero for ``shuffle="off"`` plans.
    """
    if getattr(plan, "shuffle", "off") != "skew":
        return CostEstimate(0.0)
    n = float(ctx.stats_a.count + ctx.stats_b.count)
    sample_n = max(1.0, n * ctx.sample_fraction)
    counters = {
        "shuffle.sfilter_builds": 2.0,
        "cpu.ops": n + sample_n,
    }
    return _price_phases(model, [(counters, 1)])


# ============================================================== pipelines
def _pipeline(plan) -> list[str]:
    local = f"local_join.{plan.local_algorithm}"
    skew = ["shuffle.skew"] if getattr(plan, "shuffle", "off") == "skew" else []
    if plan.system == "SpatialSpark":
        if plan.strategy == "broadcast":
            return ["global_join.broadcast", "refine"]
        return ["ingest", "partition", *skew, "global_join.shuffle", local,
                "refine"]
    if plan.system == "SpatialHadoop":
        return [
            "ingest", "partition", *skew, "index_build",
            "global_join.splits", local, "refine",
        ]
    return ["ingest", "partition", *skew, "global_join.mr_streaming", local,
            "refine"]


def estimate_plan(
    plan,
    ctx: EstimateContext,
    *,
    params: Optional[CostParams] = None,
    model: Optional[CostModel] = None,
) -> CostEstimate:
    """Compose a plan's full pipeline estimate from the operator registry.

    Builds a per-system :class:`CostModel` (GEOS profile for HadoopGIS,
    JTS for the others) unless one is supplied — e.g. a model carrying
    calibrated :class:`CostParams` from :mod:`repro.plan.calibrate`.
    """
    if model is None:
        from ..geometry.engine import GEOS_COST_PROFILE, JTS_COST_PROFILE

        profile = (
            GEOS_COST_PROFILE if plan.system == "HadoopGIS"
            else JTS_COST_PROFILE
        )
        model = CostModel(ctx.cluster, params=params, engine_profile=profile)
    parts = [
        estimate_operator(name, model, ctx=ctx, plan=plan)
        for name in _pipeline(plan)
    ]
    seq = CostEstimate.sequence(parts)
    merged: dict[str, float] = {}
    for part in parts:
        for key, value in part.counters.items():
            merged[key] = merged.get(key, 0.0) + value
    seconds = seq.seconds
    if (
        ctx.skew > SKEW_TRIGGER
        and plan.strategy == "partitioned"
        and getattr(plan, "shuffle", "off") != "skew"
    ):
        # Straggler penalty: on measured-skewed inputs the per-partition
        # waves of a plain-shuffle plan finish when the hottest cell
        # does, so the parallel phases lose up to their whole speedup.
        # Capped at 5x; shuffle="skew" plans split the hot cells and
        # escape the penalty entirely.
        seconds *= 1.0 + min(ctx.skew / SKEW_TRIGGER - 1.0, 4.0)
    return CostEstimate(
        seconds=seconds, rows=seq.rows, multiplicity=seq.multiplicity,
        counters=merged, tasks=max(p.tasks for p in parts),
    )
