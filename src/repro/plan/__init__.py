"""Cost-based query planning: estimate → decide → execute → calibrate.

``repro.plan`` closes the loop the paper leaves open: no single design
choice (local-join algorithm, partitioner, broadcast-vs-shuffle) wins
across workloads, so the planner chooses per query from per-operator
cost estimates — and feeds measured phase spans back into the constants.

* :mod:`repro.plan.estimate` — per-operator :class:`CostEstimate`
  predictions from dataset statistics (the registry in
  :mod:`repro.cluster.costmodel`).
* :mod:`repro.plan.planner` — candidate enumeration and the argmin
  (:func:`plan_query`), producing frozen fingerprintable :class:`Plan`
  objects the execution layer accepts directly.
* :mod:`repro.plan.calibrate` — the :class:`Calibrator` feedback loop
  refitting cost constants from measured spans.
"""

from .calibrate import CalibrationObservation, CalibrationProfile, Calibrator
from .estimate import EstimateContext, estimate_plan
from .planner import (
    GRANULARITIES,
    PLAN_SYSTEMS,
    Plan,
    enumerate_plans,
    fixed_from_system,
    plan_query,
    rank_plans,
    render_ranking,
)

__all__ = [
    "Plan",
    "PLAN_SYSTEMS",
    "GRANULARITIES",
    "enumerate_plans",
    "rank_plans",
    "plan_query",
    "fixed_from_system",
    "render_ranking",
    "EstimateContext",
    "estimate_plan",
    "CalibrationObservation",
    "CalibrationProfile",
    "Calibrator",
]
