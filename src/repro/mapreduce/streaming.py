"""Hadoop Streaming layer.

HadoopGIS plugs python/C++ modules into Hadoop via Hadoop Streaming: every
record crosses OS pipes as a line of text, which (a) forces text
(de)serialization at every hop and (b) breaks — the paper's words: "the
top reason for HadoopGIS to fail is broken pipeline, which is typical in
Hadoop Streaming when the data that pipes through multiple processors is
too big".

This module reproduces both effects:

* :func:`parse_charge` / :func:`serialize_charge` — the per-record text
  tax, charged by streaming map/reduce wrappers on every pipe crossing.
* :class:`PipePolicy` + :func:`make_streaming_hook` — per-process pipe
  accounting and the capacity rule.  A streaming process whose cumulative
  piped volume (in *logical*, paper-scale bytes) exceeds the capacity
  raises :class:`StreamingPipeError`, which surfaces as the "-" cells of
  Tables 2–3.

Calibration: capacity is ``pipe_fraction × node memory``.  With the
default fraction (0.075) the emergent pass/fail matrix matches the paper:
all full-dataset HadoopGIS runs fail (even on the 128 GB workstation);
sample-dataset runs pass on the workstation but fail on the 15 GB-node
EC2 clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..cluster.specs import ClusterConfig
from ..metrics import Counters

__all__ = [
    "StreamingPipeError",
    "PipePolicy",
    "make_streaming_hook",
    "pipe_capacity_for",
    "parse_charge",
    "serialize_charge",
    "DEFAULT_PIPE_FRACTION",
]

DEFAULT_PIPE_FRACTION = 0.075


class StreamingPipeError(RuntimeError):
    """A streaming process's pipe volume exceeded capacity (broken pipe)."""

    def __init__(self, job: str, kind: str, logical_bytes: float, capacity: float):
        self.job = job
        self.kind = kind
        self.logical_bytes = logical_bytes
        self.capacity = capacity
        super().__init__(
            f"broken pipe in streaming {kind} task of job {job!r}: "
            f"{logical_bytes / 2**30:.2f} GiB piped > "
            f"{capacity / 2**30:.2f} GiB capacity"
        )

    def __reduce__(self):
        # Survive the pickle round trip out of a ProcessBackend worker.
        return (
            StreamingPipeError,
            (self.job, self.kind, self.logical_bytes, self.capacity),
        )


def pipe_capacity_for(
    cluster: ClusterConfig, fraction: float = DEFAULT_PIPE_FRACTION
) -> float:
    """Pipe capacity in bytes for one streaming process on this cluster.

    Tied to per-node memory: the sort/dedup stages of a streaming pipeline
    buffer their input on one node, so the node's memory bounds how much a
    single process can pipe before the pipeline stalls and breaks.
    """
    return cluster.machine.memory_bytes * fraction


@dataclass
class PipePolicy:
    """Failure policy threaded into streaming jobs.

    ``byte_scale`` converts executed (scaled-down) byte counts into the
    logical paper-scale volumes that decide failure, so running a 1/1000
    scale model still fails exactly where the full-size system would.
    """

    capacity_bytes: float = float("inf")
    byte_scale: float = 1.0

    def check(self, job: str, kind: str, actual_bytes: float) -> None:
        """Raise :class:`StreamingPipeError` if the logical volume exceeds capacity."""
        logical = actual_bytes * self.byte_scale
        if logical > self.capacity_bytes:
            raise StreamingPipeError(job, kind, logical, self.capacity_bytes)


def make_streaming_hook(
    counters: Counters, policy: PipePolicy, job_name: str
) -> Callable[[str, int, int], None]:
    """Build the per-task hook a :class:`MapReduceJob` calls after each task.

    Charges one external process spawn and the task's full pipe volume,
    then applies the capacity rule.
    """

    def hook(
        kind: str,
        bytes_in: int,
        bytes_out: int,
        records_in: int = 0,
        records_out: int = 0,
    ) -> None:
        counters.add("streaming.processes")
        volume = bytes_in + bytes_out
        counters.add("pipe.bytes", volume)
        # Every record crossing a pipe pays the external-process tax
        # (line read, split, Python-object churn) on both sides.
        counters.add("pipe.records", records_in + records_out)
        policy.check(job_name, kind, volume)

    return hook


def parse_charge(counters: Counters, n_records: int, n_bytes: int) -> None:
    """Charge text→object decoding for records read off a pipe."""
    counters.add("parse.records", n_records)
    counters.add("parse.bytes", n_bytes)


def serialize_charge(counters: Counters, n_records: int, n_bytes: int) -> None:
    """Charge object→text encoding for records written to a pipe."""
    counters.add("serialize.records", n_records)
    counters.add("serialize.bytes", n_bytes)
