"""Simulated Hadoop MapReduce engine.

Executes user map/reduce functions for real over the simulated HDFS while
charging every byte and framework overhead to the shared counters, and
recording per-phase :class:`~repro.cluster.simclock.PhaseRecord` entries
(map / shuffle / reduce) on the run's :class:`SimClock`.

Fidelity points that matter to the paper:

* **Splits** come from an input-format hook.  The default produces one
  split per HDFS block; SpatialHadoop overrides ``get_splits`` with its
  ``BinarySpatialInputFormat`` to emit *paired-block* splits — that is
  exactly where its global join happens (on the job master, serially).
* **Map tasks** receive whole splits (not single records) so systems can
  model per-task setup work such as HadoopGIS rebuilding its sample R-tree
  in every mapper.
* **Shuffle** charges ``shuffle.bytes_disk`` (Hadoop always spills) plus
  an ``n·log n`` sort charge, and groups map output by key.
* **Map-only jobs** (SpatialHadoop's distributed join) skip the shuffle
  entirely — a major design advantage the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

import numpy as np

from ..cluster.simclock import PhaseRecord, SimClock
from ..exec.backend import ExecutorBackend, SerialBackend, merge_outcomes
from ..geometry.batch import GeometryBatch
from ..hdfs.filesystem import SimulatedHDFS
from ..hdfs.sizeof import estimate_size
from ..metrics import Counters
from ..pairs import PairBlock
from ..trace.core import annotate, span as trace_span

__all__ = [
    "Split",
    "SplitData",
    "InputFormat",
    "BlockInputFormat",
    "MapReduceJob",
    "JobResult",
    "TaskAttemptError",
    "MAX_TASK_ATTEMPTS",
]

#: Hadoop's default mapreduce.map/reduce.maxattempts.
MAX_TASK_ATTEMPTS = 4

#: repro-lint whole-program declaration (WRK001): the map/reduce/combiner
#: callables (and hooks) passed to a ``MapReduceJob`` run inside executor
#: task bodies, which the process backend ships to pool workers.
_DISPATCH_POINTS = ("MapReduceJob",)


class TaskAttemptError(RuntimeError):
    """A task failed more times than Hadoop's attempt limit allows."""

    def __init__(self, job: str, kind: str, index: int, attempts: int):
        self.job = job
        self.kind = kind
        self.index = index
        self.attempts = attempts
        super().__init__(
            f"{kind} task {index} of job {job!r} failed {attempts} attempts"
        )

    def __reduce__(self):
        # Survive the pickle round trip out of a ProcessBackend worker.
        return (TaskAttemptError, (self.job, self.kind, self.index, self.attempts))


def _records_size(records) -> int:
    """Total estimated bytes of a record container (columnar-aware)."""
    if isinstance(records, GeometryBatch):
        return records.serialized_size()
    return sum(estimate_size(r) for r in records)


def _num_records(records) -> int:
    """Logical record count: PairBlocks stand for their pair count."""
    if isinstance(records, GeometryBatch):
        return len(records)
    return sum(len(r) if isinstance(r, PairBlock) else 1 for r in records)


@dataclass
class Split:
    """A unit of map-task input: one or more (path, block_idx) parts."""

    parts: list[tuple[str, int]]
    info: dict = field(default_factory=dict)


@dataclass
class SplitData:
    """Materialized split content handed to a map task."""

    split: Split
    #: concatenation of all parts' records (one GeometryBatch when every
    #: part holds a columnar block)
    records: "list | GeometryBatch"
    part_records: "list[list | GeometryBatch]"  # records per part
    part_aux: list[Any]  # aux payload per part (block index etc.)


class InputFormat:
    """Produces the splits of a job.  Subclass to customize (getSplits)."""

    def get_splits(self, hdfs: SimulatedHDFS, inputs: Sequence[str]) -> list[Split]:
        """Return the splits for a job over *inputs*."""
        raise NotImplementedError
    """Return the splits for a job over *inputs*."""


class BlockInputFormat(InputFormat):
    """Default FileInputFormat: one split per HDFS block of each input."""

    def get_splits(self, hdfs: SimulatedHDFS, inputs: Sequence[str]) -> list[Split]:
        """One split per HDFS block of every input path."""
        splits = []
        for path in inputs:
            for block_idx, _, _ in hdfs.blocks_meta(path):
                splits.append(Split(parts=[(path, block_idx)]))
        return splits


@dataclass
class JobResult:
    """Outcome of a completed job."""

    output_path: Optional[str]
    output_records: int
    map_output_records: int
    splits: int
    reducers: int
    #: side outputs collected from the tasks' :func:`repro.exec.emit`
    #: calls, keyed by emit key, values in task-index order.  The
    #: process-safe channel for reducers handing structured data back to
    #: the driver (closure mutation is lost when tasks run in workers).
    side: dict = field(default_factory=dict)


class MapReduceJob:
    """One MapReduce job.

    Parameters
    ----------
    name:
        Job label; phase records are named ``<name>.map`` etc.
    hdfs, counters, clock:
        The run's shared substrates.
    inputs:
        HDFS paths (interpretation is up to the input format).
    map_task:
        ``fn(SplitData) -> Iterable[(key, value)]`` for jobs with a reduce
        phase, or ``fn(SplitData) -> Iterable[record]`` for map-only jobs.
    reduce_task:
        ``fn(key, values: list) -> Iterable[record]`` or None (map-only).
    combiner:
        Optional ``fn(key, values: list) -> Iterable[(key, value)]`` run on
        each map task's output before the shuffle — Hadoop's classic
        map-side aggregation, directly visible as reduced shuffle bytes.
    output_path:
        Where reduce (or map-only) output is written; None discards output
        (some HadoopGIS intermediate steps feed local programs instead).
    num_reducers:
        Reduce-task count; defaults to the number of splits.
    group:
        Reporting group for the Table 3 breakdown.
    streaming_hook:
        Optional callable invoked per task with (task_kind, bytes_in,
        bytes_out) — the Hadoop Streaming layer uses it to charge pipe
        traffic and enforce pipe capacity.
    fault_injector:
        Optional ``fn(kind, task_index, attempt) -> bool`` returning True
        to kill that attempt.  Hadoop's fault tolerance re-runs the task
        (charging the duplicated work) up to ``MAX_TASK_ATTEMPTS`` times —
        the "mature platform" robustness the paper credits SpatialHadoop
        with.
    executor:
        The :class:`~repro.exec.ExecutorBackend` task attempts run on
        (default: a fresh serial backend).  Parallel backends change only
        wall-clock time: outcomes merge in task-index order, so counters,
        phase records and failures are identical to serial execution.
    """

    def __init__(
        self,
        name: str,
        *,
        hdfs: SimulatedHDFS,
        counters: Counters,
        clock: SimClock,
        inputs: Sequence[str],
        map_task: Callable[[SplitData], Iterable],
        reduce_task: Optional[Callable[[Any, list], Iterable]] = None,
        combiner: Optional[Callable[[Any, list], Iterable]] = None,
        output_path: Optional[str] = None,
        input_format: Optional[InputFormat] = None,
        num_reducers: Optional[int] = None,
        group: str = "join",
        streaming_hook: Optional[Callable[[str, int, int], None]] = None,
        fault_injector: Optional[Callable[[str, int, int], bool]] = None,
        executor: Optional[ExecutorBackend] = None,
    ):
        self.name = name
        self.hdfs = hdfs
        self.counters = counters
        self.clock = clock
        self.inputs = list(inputs)
        self.map_task = map_task
        self.reduce_task = reduce_task
        self.combiner = combiner
        self.output_path = output_path
        self.input_format = input_format or BlockInputFormat()
        self.num_reducers = num_reducers
        self.group = group
        self.streaming_hook = streaming_hook
        self.fault_injector = fault_injector
        self.executor = executor if executor is not None else SerialBackend()

    def _attempts(self, kind: str, index: int, body: Callable[[], list]) -> list:
        """Run a task body with Hadoop-style retries under fault injection."""
        for attempt in range(MAX_TASK_ATTEMPTS):
            result = body()
            if self.fault_injector is None or not self.fault_injector(
                kind, index, attempt
            ):
                return result
            # The attempt's work is lost; the scheduler reruns the task.
            self.counters.add("mr.task_retries")
            self.counters.add("mr.tasks")
        raise TaskAttemptError(self.name, kind, index, MAX_TASK_ATTEMPTS)

    # ------------------------------------------------------------------ run
    def run(self) -> JobResult:
        """Execute map → shuffle → reduce and write the output."""
        self.counters.add("mr.jobs")
        splits = self.input_format.get_splits(self.hdfs, self.inputs)

        # ----------------------------------------------------------- map
        # Phase spans bracket the same interval as the PhaseRecord
        # (snapshot → clock.record), so a span's counter deltas equal the
        # phase record's counters bit-exactly.
        map_span = trace_span(
            f"{self.name}.map", kind="phase", counters=self.counters,
            group=self.group, splits=len(splits),
        )
        map_span.__enter__()
        before = self.counters.snapshot()
        self.counters.add("mr.tasks", len(splits))

        def make_map_task(index: int, split: Split) -> Callable[[], list]:
            def attempt():
                data = self._materialize(split)
                bytes_in = _records_size(data.records)
                task_out = list(self.map_task(data))
                if self.combiner is not None and self.reduce_task is not None:
                    groups: dict = {}
                    for k, v in task_out:
                        groups.setdefault(k, []).append(v)
                    self.counters.add("mr.combine_in", len(task_out))
                    task_out = [
                        kv
                        for key in groups
                        for kv in self.combiner(key, groups[key])
                    ]
                    self.counters.add("mr.combine_out", len(task_out))
                bytes_out = sum(estimate_size(r) for r in task_out)
                if self.streaming_hook is not None:
                    self.streaming_hook(
                        "map", bytes_in, bytes_out,
                        _num_records(data.records), _num_records(task_out),
                    )
                return task_out

            return lambda: self._attempts("map", index, attempt)

        try:
            outcomes = self.executor.run_tasks(
                f"{self.name}.map",
                [make_map_task(i, split) for i, split in enumerate(splits)],
                self.counters,
            )
            per_task_out, map_side = merge_outcomes(outcomes, self.counters)
            map_out: list = [
                record for task_out in per_task_out for record in task_out
            ]
            self.clock.record(
                PhaseRecord(
                    name=f"{self.name}.map",
                    counters=self.counters.diff(before),
                    tasks=max(len(splits), 1),
                    group=self.group,
                )
            )
        finally:
            map_span.__exit__(None, None, None)

        if self.reduce_task is None:
            with trace_span(
                f"{self.name}.map_write", kind="phase",
                counters=self.counters, group=self.group,
            ):
                out_records = self._write_output(map_out, tasks=max(len(splits), 1))
            return JobResult(
                output_path=self.output_path,
                output_records=out_records,
                map_output_records=_num_records(map_out),
                splits=len(splits),
                reducers=0,
                side=map_side,
            )

        # -------------------------------------------------------- shuffle
        with trace_span(
            f"{self.name}.shuffle", kind="phase", counters=self.counters,
            group=self.group,
        ):
            before = self.counters.snapshot()
            n_reducers = self.num_reducers or max(len(splits), 1)
            self.counters.add("mr.tasks", n_reducers)
            shuffle_bytes = sum(estimate_size(kv) for kv in map_out)
            self.counters.add("shuffle.bytes_disk", shuffle_bytes)
            annotate(
                reducers=n_reducers,
                records=len(map_out),
                bytes=shuffle_bytes,
            )
            if map_out:
                self.counters.add("sort.ops", len(map_out) * max(np.log2(len(map_out)), 1.0))
            grouped: list[dict] = [dict() for _ in range(n_reducers)]
            for key, value in map_out:
                bucket = grouped[hash(key) % n_reducers]
                bucket.setdefault(key, []).append(value)
            self.clock.record(
                PhaseRecord(
                    name=f"{self.name}.shuffle",
                    counters=self.counters.diff(before),
                    tasks=n_reducers,
                    group=self.group,
                )
            )

        # --------------------------------------------------------- reduce
        reduce_span = trace_span(
            f"{self.name}.reduce", kind="phase", counters=self.counters,
            group=self.group, reducers=n_reducers,
        )
        reduce_span.__enter__()
        before = self.counters.snapshot()

        def make_reduce_task(index: int, bucket: dict) -> Callable[[], list]:
            def attempt():
                bytes_in = 0
                records_in = 0
                task_out: list = []
                for key in sorted(bucket, key=repr):
                    values = bucket[key]
                    bytes_in += sum(estimate_size(v) for v in values)
                    records_in += len(values)
                    with trace_span(
                        "partition", kind="partition",
                        counters=self.counters,
                        key=repr(key), values=len(values),
                    ):
                        task_out.extend(self.reduce_task(key, values))
                bytes_out = sum(estimate_size(r) for r in task_out)
                if self.streaming_hook is not None:
                    self.streaming_hook(
                        "reduce", bytes_in, bytes_out, records_in, len(task_out)
                    )
                return task_out

            return lambda: self._attempts("reduce", index, attempt)

        try:
            outcomes = self.executor.run_tasks(
                f"{self.name}.reduce",
                [make_reduce_task(i, bucket) for i, bucket in enumerate(grouped)],
                self.counters,
            )
            per_task_out, reduce_side = merge_outcomes(outcomes, self.counters)
            reduce_out: list = [
                record for task_out in per_task_out for record in task_out
            ]
            side = dict(map_side)
            for key, values in reduce_side.items():
                side.setdefault(key, []).extend(values)
            out_records = self._write_output(
                reduce_out, tasks=n_reducers, before=before
            )
        finally:
            reduce_span.__exit__(None, None, None)
        return JobResult(
            output_path=self.output_path,
            output_records=out_records,
            map_output_records=len(map_out),
            splits=len(splits),
            reducers=n_reducers,
            side=side,
        )

    # -------------------------------------------------------------- helpers
    def _materialize(self, split: Split) -> SplitData:
        part_records, part_aux = [], []
        for path, block_idx in split.parts:
            block = self.hdfs.read_block(path, block_idx)
            part_records.append(block.records)
            part_aux.append(block.aux)
        if part_records and all(
            isinstance(p, GeometryBatch) for p in part_records
        ):
            # Columnar blocks stay columnar: concatenate the array slices
            # instead of materialising per-record geometry objects.
            records: "list | GeometryBatch" = GeometryBatch.concat(part_records)
        else:
            records = [r for part in part_records for r in part]
        return SplitData(
            split=split, records=records, part_records=part_records, part_aux=part_aux
        )

    def _write_output(self, records: list, *, tasks: int, before=None) -> int:
        before = self.counters.snapshot() if before is None else before
        if self.output_path is not None:
            self.hdfs.write_file(self.output_path, records, overwrite=True)
        phase_name = f"{self.name}.reduce" if self.reduce_task else f"{self.name}.map_write"
        self.clock.record(
            PhaseRecord(
                name=phase_name,
                counters=self.counters.diff(before),
                tasks=tasks,
                group=self.group,
            )
        )
        return _num_records(records)
