"""Simulated Hadoop MapReduce substrate (jobs, input formats, streaming)."""

from .job import (
    MAX_TASK_ATTEMPTS,
    BlockInputFormat,
    InputFormat,
    JobResult,
    MapReduceJob,
    Split,
    SplitData,
    TaskAttemptError,
)
from .streaming import (
    DEFAULT_PIPE_FRACTION,
    PipePolicy,
    StreamingPipeError,
    make_streaming_hook,
    parse_charge,
    pipe_capacity_for,
    serialize_charge,
)

__all__ = [
    "MapReduceJob",
    "JobResult",
    "TaskAttemptError",
    "MAX_TASK_ATTEMPTS",
    "Split",
    "SplitData",
    "InputFormat",
    "BlockInputFormat",
    "StreamingPipeError",
    "PipePolicy",
    "make_streaming_hook",
    "pipe_capacity_for",
    "parse_charge",
    "serialize_charge",
    "DEFAULT_PIPE_FRACTION",
]
