"""Command-line interface: regenerate the paper's artifacts from a shell.

::

    python -m repro table1                  # dataset catalog
    python -m repro fig1                    # framework stage traces
    python -m repro table2 [--exec-records N] [--seed S]
    python -m repro table3 [--exec-records N] [--seed S]
    python -m repro headlines               # tables 2+3 + speedup claims
    python -m repro run taxi-nycb SpatialSpark EC2-10
    python -m repro report [--out FILE]     # paper-vs-ours markdown
    python -m repro calibrate               # refit the cost constants
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

# build_parser is the documented embedding surface for driving the CLI
# programmatically (tests exercise it directly), even though nothing in
# src/repro imports it.
__all__ = ["main", "build_parser"]  # repro: noqa[API002]


def _add_worker_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=1,
                   help="task-execution workers (1 = serial)")
    p.add_argument("--backend", default=None,
                   choices=("serial", "thread", "process"),
                   help="force a task execution backend "
                        "(default: auto from --workers)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    from .experiments.runner import DEFAULT_SEED

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Spatial Join Query Processing in Cloud' "
            "(You, Zhang, Gruenwald, ICPP 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (dataset sizes)")
    sub.add_parser("fig1", help="print the Fig.-1 framework stage traces")

    for name, help_text in (
        ("table2", "regenerate Table 2 (full datasets, 4 configs)"),
        ("table3", "regenerate Table 3 (sample datasets, breakdowns)"),
        ("headlines", "regenerate both tables plus the speedup claims"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--exec-records", type=int, default=None,
                       help="execution-scale records per dataset")
        p.add_argument("--seed", type=int, default=DEFAULT_SEED)
        if name != "headlines":
            _add_worker_args(p)

    run = sub.add_parser("run", help="run one experiment cell")
    run.add_argument("experiment", help="e.g. taxi-nycb")
    run.add_argument("system", help="HadoopGIS | SpatialHadoop | SpatialSpark")
    run.add_argument("config", nargs="?", default="WS",
                     help="WS | EC2-10 | EC2-8 | EC2-6 | EC2-<n>")
    run.add_argument("--exec-records", type=int, default=2500)
    run.add_argument("--seed", type=int, default=DEFAULT_SEED)
    run.add_argument("--explain", action="store_true",
                     help="print the per-phase cost decomposition")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="record a span tree of the run and write it as "
                          "Chrome trace-event JSON (open in "
                          "https://ui.perfetto.dev)")
    run.add_argument("--trace-tree", action="store_true",
                     help="record a span tree and print it as text")
    run.add_argument("--skew", action="store_true",
                     help="record a span tree and print the per-phase "
                          "task-skew report (straggler ratios, hottest "
                          "partitions)")
    _add_worker_args(run)

    validate = sub.add_parser(
        "validate", help="check all systems against brute-force joins"
    )
    validate.add_argument("--seed", type=int, default=DEFAULT_SEED)
    validate.add_argument("--size", type=int, default=400)

    report = sub.add_parser(
        "report", help="generate the paper-vs-ours markdown report"
    )
    report.add_argument("--out", default=None, help="write to a file")
    report.add_argument("--exec-records", type=int, default=None)
    report.add_argument("--seed", type=int, default=DEFAULT_SEED)

    sub.add_parser("calibrate", help="refit the cost-model constants "
                                     "against the paper's timings")

    plan = sub.add_parser(
        "plan",
        help="rank candidate query plans with the cost-based planner "
             "(estimates only, nothing executes)",
    )
    plan.add_argument("--system", default=None,
                      help="HadoopGIS | SpatialHadoop | SpatialSpark "
                           "(default: rank all three)")
    plan.add_argument("--cluster", default="WS",
                      help="WS | EC2-10 | EC2-<n> (default: WS)")
    plan.add_argument("--left", default="taxi:2000", metavar="NAME:N",
                      help="left dataset spec (taxi | census | tiger | "
                           "water, default taxi:2000)")
    plan.add_argument("--right", default="census:400", metavar="NAME:N",
                      help="right dataset spec (default census:400)")
    plan.add_argument("--predicate", default="intersects",
                      help="intersects | within_distance:<d>")
    plan.add_argument("--explain", action="store_true",
                      help="print the ranked candidate table, not just "
                           "the winning plan")
    plan.add_argument("--top", type=int, default=10,
                      help="candidates to list with --explain")
    plan.add_argument("--seed", type=int, default=DEFAULT_SEED)

    service = sub.add_parser(
        "service",
        help="demo the prepared-path query service (prepare once, "
             "serve repeated joins, report per-path latency and cache "
             "statistics)",
    )
    service.add_argument("system", nargs="?", default="SpatialHadoop",
                         help="HadoopGIS | SpatialHadoop | SpatialSpark")
    service.add_argument("--size", type=int, default=500,
                         help="records per dataset")
    service.add_argument("--queries", type=int, default=8,
                         help="warm join queries to serve")
    service.add_argument("--concurrency", type=int, default=8,
                         help="query dispatch threads")
    service.add_argument("--seed", type=int, default=DEFAULT_SEED)
    return parser


def _exec_override(args) -> Optional[dict]:
    if args.exec_records is None:
        return None
    from .experiments.runner import EXPERIMENTS

    return {exp: args.exec_records for exp in EXPERIMENTS}


def _cmd_table1(_args) -> int:
    from .experiments import table1

    print(table1())
    return 0


def _cmd_fig1(_args) -> int:
    from .experiments import fig1

    print(fig1())
    return 0


def _cmd_table2(args) -> int:
    from .experiments import table2

    print(table2(exec_records=_exec_override(args), seed=args.seed,
                 workers=args.workers, backend=args.backend).render())
    return 0


def _cmd_table3(args) -> int:
    from .experiments import table3

    print(table3(exec_records=_exec_override(args), seed=args.seed,
                 workers=args.workers, backend=args.backend).render())
    return 0


def _cmd_headlines(args) -> int:
    from .experiments import headline_comparisons, table2, table3

    t2 = table2(exec_records=_exec_override(args), seed=args.seed)
    print(t2.render())
    print()
    t3 = table3(exec_records=_exec_override(args), seed=args.seed)
    print(t3.render())
    print(f"\n{'claim':<64}{'paper':>8}{'ours':>8}")
    for label, paper, ours in headline_comparisons(t2, t3):
        ours_text = f"{ours:.2f}x" if ours else "n/a"
        print(f"{label:<64}{paper:>7.2f}x{ours_text:>8}")
    return 0


def _cmd_run(args) -> int:
    from .experiments import run_experiment

    want_trace = bool(args.trace or args.trace_tree or args.skew)
    report = run_experiment(
        args.experiment,
        args.system,
        args.config,
        exec_records=args.exec_records,
        seed=args.seed,
        workers=args.workers,
        backend=args.backend,
        trace=want_trace,
    )
    if want_trace and report.trace is not None:
        if args.trace:
            from .trace import write_chrome_trace

            write_chrome_trace(report.trace, args.trace)
            print(f"wrote Chrome trace JSON to {args.trace} "
                  f"(open in https://ui.perfetto.dev)")
        if args.trace_tree:
            from .trace import render_tree

            print(render_tree(report.trace, min_seconds=1e-4))
            print()
        if args.skew:
            from .trace import render_skew, skew_report

            print(render_skew(skew_report(report.trace)))
            print()
    if not report.ok:
        print(f"{args.experiment} × {args.system} × {args.config}: "
              f"FAILED ({report.failure_kind})")
        print(f"  {report.failure}")
        return 1
    b = report.breakdown_seconds()
    print(f"{args.experiment} × {args.system} × {args.config}: ok")
    print(f"  result pairs (executed scale): {len(report.pairs):,}")
    print(f"  simulated seconds: IA={b['IA']:,.0f} IB={b['IB']:,.0f} "
          f"DJ={b['DJ']:,.0f} TOT={b['TOT']:,.0f}")
    if args.explain:
        from .experiments import explain_report, render_explanation

        print()
        print(render_explanation(explain_report(report)))
    return 0


def _cmd_report(args) -> int:
    from .experiments import generate_report

    text = generate_report(exec_records=_exec_override(args), seed=args.seed)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_validate(args) -> int:
    from .experiments import run_validation

    print(f"validating all systems against brute force "
          f"(seed={args.seed}, size={args.size}):")
    results = run_validation(seed=args.seed, size=args.size, verbose_print=print)
    failed = [r for r in results if not r[2]]
    print(f"\n{len(results) - len(failed)}/{len(results)} checks passed")
    return 1 if failed else 0


def _cmd_calibrate(_args) -> int:
    from .experiments.calibration import main as calibrate_main

    calibrate_main()
    return 0


def _dataset_from_spec(spec: str, seed: int):
    from .data import (
        census_blocks_batch,
        linear_water_batch,
        taxi_points_batch,
        tiger_edges_batch,
    )

    generators = {
        "taxi": taxi_points_batch,
        "census": census_blocks_batch,
        "tiger": tiger_edges_batch,
        "water": linear_water_batch,
    }
    name, _, count = spec.partition(":")
    if name not in generators:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(generators)}"
        )
    return generators[name](int(count) if count else 1000, seed=seed)


def _cmd_plan(args) -> int:
    from .data.stats import describe
    from .experiments.runner import resolve_cluster
    from .plan import PLAN_SYSTEMS, rank_plans, render_ranking

    stats_l = describe(_dataset_from_spec(args.left, args.seed))
    stats_r = describe(_dataset_from_spec(args.right, args.seed + 1))
    cluster = resolve_cluster(args.cluster)
    systems = [args.system] if args.system else list(PLAN_SYSTEMS)
    print(f"planning {args.left} ⋈ {args.right} "
          f"({args.predicate}) on {args.cluster}")
    for system in systems:
        ranked = rank_plans(
            stats_l, stats_r, args.predicate, cluster, system=system
        )
        est, best = ranked[0]
        print(f"\n{system}: {best.describe()}  "
              f"(est. {est.seconds:,.2f}s, {est.rows:,.0f} pairs)")
        if args.explain:
            print(render_ranking(ranked, top=args.top))
    return 0


def _cmd_service(args) -> int:
    import time

    from .data import census_blocks, taxi_points
    from .service import Query, SpatialQueryService
    from .api import spatial_join

    pts = taxi_points(args.size, seed=args.seed)
    polys = census_blocks(max(args.size // 8, 10), seed=args.seed + 1)

    # The demo reports *real* serving latency (like benchmarks/ does);
    # nothing below feeds the cost model's simulated seconds.
    t0 = time.perf_counter()  # repro: noqa[CLK001]
    one_shot = spatial_join(pts, polys, system=args.system, seed=args.seed)
    one_shot_s = time.perf_counter() - t0  # repro: noqa[CLK001]

    with SpatialQueryService(seed=args.seed) as svc:
        t0 = time.perf_counter()  # repro: noqa[CLK001]
        a = svc.prepare(pts, system=args.system, roles=("a",))
        b = svc.prepare(polys, system=args.system, roles=("b",))
        prepare_s = time.perf_counter() - t0  # repro: noqa[CLK001]

        queries = [Query("join", a, b)] * args.queries
        t0 = time.perf_counter()  # repro: noqa[CLK001]
        reports = svc.execute(queries, concurrency=args.concurrency)
        serve_s = time.perf_counter() - t0  # repro: noqa[CLK001]

        c = svc.counters
        print(f"service demo: {args.system}, {args.size} × {len(polys)} "
              f"records, seed={args.seed}")
        print(f"  one-shot spatial_join: {one_shot_s*1e3:8.1f} ms "
              f"({len(one_shot.pairs):,} pairs)")
        print(f"  prepare (once):        {prepare_s*1e3:8.1f} ms")
        print(f"  serve {args.queries} queries "
              f"(concurrency {args.concurrency}): {serve_s*1e3:8.1f} ms "
              f"({args.queries / serve_s:,.0f} qps)")
        match = all(r.pairs == one_shot.pairs for r in reports)
        print(f"  pairs identical to one-shot: {match}")
        print(f"  cache: {int(c['service.cache.hits'])} hits / "
              f"{int(c['service.cache.misses'])} misses / "
              f"{int(c['service.cache.evictions'])} evictions")
    return 0 if match else 1


_COMMANDS = {
    "table1": _cmd_table1,
    "fig1": _cmd_fig1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "headlines": _cmd_headlines,
    "run": _cmd_run,
    "report": _cmd_report,
    "validate": _cmd_validate,
    "calibrate": _cmd_calibrate,
    "plan": _cmd_plan,
    "service": _cmd_service,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, KeyError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
