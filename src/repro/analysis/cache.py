"""Incremental lint cache: skip re-linting files whose content is unchanged.

The cache is a JSON document (default ``.repro-lint-cache.json``) mapping
each linted file to its content SHA and the findings the per-file rule
pack produced for it.  On the next run, a file whose SHA still matches is
served from the cache instead of being re-parsed and re-walked.  The
whole-program phase (WRK001/CTR002/DET004/API002) is cached under a
single *project digest* — the hash of every ``(path, sha)`` pair — so it
re-runs iff **any** file changed.

Soundness
---------

A cache hit must be indistinguishable from a re-lint, so the keys cover
every input a finding can depend on:

* the file's own content (the SHA);
* the rule selection and the effective counter schema (the *config
  digest* — the whole cache is dropped when either changes, because
  CTR001 findings depend on ``repro.metrics.COUNTER_SCHEMA`` and a
  ``--select`` change alters which rules ran);
* sibling modules, for API001 only: a module with a lazy ``_EXPORTS``
  table validates attributes *of other files*, so such files are simply
  never cached (there are only a handful of lazy packages, and parsing
  one extra ``__init__.py`` per run is cheaper than dependency-accurate
  invalidation).

``# repro: noqa`` edits change the content SHA, so suppression changes
invalidate naturally.  Findings round-trip losslessly (including the
``trace`` chains ``--why`` prints), so ``--why`` works on cached runs.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .core import Finding, LintSession, _module_name, iter_python_files, lint_source

__all__ = ["LintCache", "DEFAULT_CACHE", "lint_paths_cached"]

#: Cache file used when ``--cache`` is not given.
DEFAULT_CACHE = ".repro-lint-cache.json"

_VERSION = 1


def _content_sha(text: str) -> str:
    return hashlib.sha1(text.encode()).hexdigest()


def _config_digest(session: LintSession) -> str:
    """Hash of everything findings depend on besides file contents."""
    schema = session.counter_schema
    if schema is None:
        try:
            from repro.metrics import COUNTER_SCHEMA

            schema = frozenset(COUNTER_SCHEMA)
        except Exception:  # pragma: no cover - metrics must be importable
            schema = frozenset()
    payload = f"v{_VERSION}|{','.join(session.codes)}|{','.join(sorted(schema))}"
    return hashlib.sha1(payload.encode()).hexdigest()


def _finding_to_dict(f: Finding) -> dict:
    return {
        "rule": f.rule,
        "line": f.line,
        "col": f.col,
        "message": f.message,
        "snippet": f.snippet,
        "trace": list(f.trace),
    }


def _finding_from_dict(path: str, doc: dict) -> Finding:
    return Finding(
        rule=doc["rule"],
        path=path,
        line=doc["line"],
        col=doc["col"],
        message=doc["message"],
        snippet=doc["snippet"],
        trace=tuple(doc.get("trace", ())),
    )


class LintCache:
    """Content-addressed finding store for one (rule-config, tree) pair."""

    def __init__(self, path: Path, config: str):
        self.path = path
        self.config = config
        #: path str -> {"sha": str, "findings": [dict]}
        self._files: dict[str, dict] = {}
        #: project digest -> [finding dict with "path"]
        self._project: dict[str, list] = {}

    @classmethod
    def load(cls, path: Path, session: LintSession) -> "LintCache":
        """Load *path*, discarding state from a different config/version."""
        cache = cls(path, _config_digest(session))
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return cache
        if doc.get("version") != _VERSION or doc.get("config") != cache.config:
            return cache
        files = doc.get("files")
        project = doc.get("project")
        if isinstance(files, dict):
            cache._files = files
        if isinstance(project, dict):
            cache._project = project
        return cache

    def save(self) -> None:
        """Persist, dropping entries whose file no longer exists."""
        self._files = {
            p: entry for p, entry in self._files.items() if Path(p).exists()
        }
        doc = {
            "version": _VERSION,
            "config": self.config,
            "files": self._files,
            "project": self._project,
        }
        try:
            self.path.write_text(json.dumps(doc, sort_keys=True) + "\n")
        except OSError:  # read-only checkout: caching is best-effort
            pass

    # -- per-file phase ----------------------------------------------------
    def get_file(self, path: str, sha: str) -> Optional[list[Finding]]:
        """Cached findings for *path* iff its content SHA still matches."""
        entry = self._files.get(path)
        if entry is None or entry.get("sha") != sha:
            return None
        return [_finding_from_dict(path, d) for d in entry["findings"]]

    def put_file(self, path: str, sha: str, findings: Sequence[Finding]) -> None:
        """Record the per-file findings for *path* at content *sha*."""
        self._files[path] = {
            "sha": sha,
            "findings": [_finding_to_dict(f) for f in findings],
        }

    # -- whole-program phase -----------------------------------------------
    def project_digest(self, shas: dict[str, str]) -> str:
        """Digest of the whole tree: any one file changing changes it."""
        pairs = "|".join(f"{p}={s}" for p, s in sorted(shas.items()))
        return hashlib.sha1(f"{self.config}|{pairs}".encode()).hexdigest()

    def get_project(self, digest: str) -> Optional[list[Finding]]:
        """Replay the whole-program findings for an unchanged tree."""
        entries = self._project.get(digest)
        if entries is None:
            return None
        return [_finding_from_dict(d["path"], d) for d in entries]

    def put_project(self, digest: str, findings: Sequence[Finding]) -> None:
        """Record the whole-program findings for one tree state."""
        # One digest per tree state; keep only the latest so the file
        # doesn't accrete a project entry per historical edit.
        self._project = {
            digest: [dict(_finding_to_dict(f), path=f.path) for f in findings]
        }


def lint_paths_cached(
    paths: Iterable[Path],
    *,
    session: LintSession,
    cache: LintCache,
) -> list[Finding]:
    """:func:`repro.analysis.core.lint_paths`, consulting *cache*.

    Serves unchanged files from the cache, re-lints the rest, and runs
    (or replays) the whole-program phase keyed on the full-tree digest.
    The caller saves the cache; this function only mutates it in memory.
    """
    files = list(iter_python_files(paths))
    findings: list[Finding] = []
    shas: dict[str, str] = {}
    for path in files:
        text = path.read_text()
        sha = _content_sha(text)
        shas[str(path)] = sha
        hit = cache.get_file(str(path), sha)
        if hit is None:
            module, root = _module_name(path)
            hit = lint_source(
                text, str(path), session=session, module=module, root=root
            )
            # API001 validates _EXPORTS targets in *other* files, so a
            # module carrying that table can change meaning without
            # changing content — never cache those (see module docstring).
            if "_EXPORTS" not in text:
                cache.put_file(str(path), sha, hit)
        findings.extend(hit)

    if session.project_codes():
        digest = cache.project_digest(shas)
        project = cache.get_project(digest)
        if project is None:
            from .interproc import lint_project

            project = lint_project(files, session=session)
            cache.put_project(digest, project)
        findings.extend(project)
    return sorted(findings, key=Finding.sort_key)
