"""CLK001: wall-clock reads are confined to the tracing/executor whitelist.

The repo's central costing invariant is that simulated seconds are a pure
function of *counters* (see ``repro.cluster.costmodel``): substrates count
bytes/records/ops, and only the cost model turns counts into time.  A
``time.time()`` call anywhere in a substrate or system would leak real
wall-clock — which varies with machine load — into numbers the paper
tables treat as reproducible.

The only modules allowed to read the real clock are the ones that measure
it *on purpose*, and keep it out of results by construction:

* ``repro.exec.task`` — task wall-clock for the benchmark harness,
* ``repro.trace.core`` / ``repro.trace.export`` — span durations, which
  :meth:`repro.trace.Span.fingerprint` explicitly excludes.

Everything else must go through ``repro.cluster.simclock``.
"""

from __future__ import annotations

import ast

from .core import FileContext, Rule, register

__all__ = ["CLOCK_WHITELIST"]

#: Modules allowed to read the real clock (measured-on-purpose paths).
CLOCK_WHITELIST = frozenset(
    {"repro.exec.task", "repro.trace.core", "repro.trace.export"}
)

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClock(Rule):
    """CLK001: confine real-clock reads to the measured-on-purpose modules."""

    code = "CLK001"
    name = "wall-clock-discipline"
    description = (
        "real-clock read outside the exec.task/trace whitelist; wall-clock "
        "must never feed costed counters (use repro.cluster.simclock)"
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        """Flag wall-clock calls in any module outside the whitelist."""
        if ctx.module in CLOCK_WHITELIST:
            return
        dotted = ctx.resolve_imported(node.func)
        if dotted in _CLOCK_CALLS:
            ctx.report(
                self,
                node,
                f"{dotted}() outside the clock whitelist "
                f"({', '.join(sorted(CLOCK_WHITELIST))}): wall-clock must not "
                "leak into costed paths — counters + the cost model are the "
                "only source of simulated seconds",
            )
