"""``repro-lint`` / ``python -m repro.analysis``: the invariant lint gate.

Exit codes: 0 = clean (possibly via baseline), 1 = new findings or stale
baseline entries, 2 = usage error.  See DESIGN.md §9 for the contracts
the rule pack enforces and README §"Invariant linting" for the
suppression/baseline policy.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .baseline import Baseline
from .cache import DEFAULT_CACHE, LintCache, lint_paths_cached
from .core import RULES, LintSession, iter_python_files, lint_paths
from .reporting import render_github, render_json, render_text

__all__ = ["main"]

#: Baseline used when --baseline is not given and this file exists in cwd.
DEFAULT_BASELINE = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the repro codebase: determinism "
            "(DET*), clock discipline (CLK*), the counter ledger (CTR*), "
            "API export integrity (API*), shared-memory confinement (SHM*), "
            "and whole-program worker purity / flow rules (WRK001, CTR002, "
            "DET004, API002) over the project call graph."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "report format (default: text); 'github' emits ::error "
            "workflow commands for inline PR annotations"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "JSON baseline of accepted findings; fails on anything new and "
            f"on stale entries (default: ./{DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.add_argument(
        "--graph-dump",
        metavar="PATH",
        help=(
            "write the project call graph as JSON to PATH ('-' for stdout) "
            "after linting"
        ),
    )
    parser.add_argument(
        "--why",
        nargs=2,
        metavar=("CODE", "PATH:LINE"),
        help=(
            "explain one finding: print the interprocedural witness chain "
            "for rule CODE at PATH:LINE (suffix-matched), then exit 0 if "
            "the finding exists, 1 otherwise"
        ),
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        help=(
            "incremental cache file keyed by content SHA "
            f"(default: ./{DEFAULT_CACHE})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="lint every file from scratch; do not read or write the cache",
    )
    return parser


def _default_paths() -> list[Path]:
    for candidate in (Path("src/repro"), Path("src"), Path(".")):
        if candidate.is_dir():
            return [candidate]
    return []


def _why(findings: list, code: str, where: str, parser) -> int:
    """``--why``: print the witness chain for one finding; 0 = found."""
    path_part, sep, line_part = where.rpartition(":")
    if not sep or not line_part.isdigit():
        parser.error(f"--why location must be PATH:LINE, got {where!r}")
    want_line = int(line_part)
    matches = [
        f
        for f in findings
        if f.rule == code
        and f.line == want_line
        and Path(f.path).as_posix().endswith(Path(path_part).as_posix())
    ]
    if not matches:
        print(f"no {code} finding at {path_part}:{want_line}")
        return 1
    for f in matches:
        print(f"{f.rule} {f.path}:{f.line}:{f.col + 1} {f.message}")
        if f.trace:
            for step in f.trace:
                print(f"  {step}")
        else:
            print("  (per-file rule: the finding is local to the reported line)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-lint``; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            scope = "whole-program" if getattr(rule, "whole_program", False) else "per-file"
            print(f"{code}  {rule.name:<28} [{scope:>13}] {rule.description}")
        return 0

    paths = args.paths or _default_paths()
    if not paths:
        parser.error("no paths given and no src/ directory found")
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    try:
        session = LintSession(
            select=args.select.split(",") if args.select else None,
            ignore=args.ignore.split(",") if args.ignore else (),
        )
    except ValueError as exc:
        parser.error(str(exc))

    if args.no_cache:
        findings = lint_paths(paths, session=session)
    else:
        cache = LintCache.load(args.cache or Path(DEFAULT_CACHE), session)
        findings = lint_paths_cached(paths, session=session, cache=cache)
        cache.save()

    if args.graph_dump is not None:
        if session.graph is None:
            # Project phase served from cache (or disabled): build fresh.
            from .graph import build_graph

            session.graph = build_graph(iter_python_files(paths))
        doc = json.dumps(session.graph.to_json(), indent=2, sort_keys=True)
        if args.graph_dump == "-":
            print(doc)
        else:
            Path(args.graph_dump).write_text(doc + "\n")

    if args.why is not None:
        return _why(findings, args.why[0], args.why[1], parser)

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        default = Path(DEFAULT_BASELINE)
        baseline_path = default if default.exists() or args.write_baseline else None
    if args.no_baseline:
        baseline_path = None

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        Baseline.save(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    stale: list = []
    matched = 0
    if baseline_path is not None:
        try:
            result = Baseline.load(baseline_path).check(findings)
        except ValueError as exc:
            parser.error(str(exc))
        findings, stale, matched = result.new, result.stale, len(result.matched)

    n_files = len(list(iter_python_files(paths)))
    if args.format == "json":
        print(json.dumps(
            render_json(findings, stale=stale, matched=matched, files=n_files),
            indent=2,
        ))
    elif args.format == "github":
        out = render_github(findings, stale=stale)
        if out:
            print(out)
    else:
        print(render_text(findings, stale=stale, matched=matched, files=n_files))
    return 1 if findings or stale else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
