"""``repro-lint`` / ``python -m repro.analysis``: the invariant lint gate.

Exit codes: 0 = clean (possibly via baseline), 1 = new findings or stale
baseline entries, 2 = usage error.  See DESIGN.md §9 for the contracts
the rule pack enforces and README §"Invariant linting" for the
suppression/baseline policy.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .baseline import Baseline
from .core import RULES, LintSession, iter_python_files, lint_file
from .reporting import render_json, render_text

__all__ = ["main"]

#: Baseline used when --baseline is not given and this file exists in cwd.
DEFAULT_BASELINE = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the repro codebase: determinism "
            "(DET*), clock discipline (CLK*), the counter ledger (CTR*), "
            "and API export integrity (API*)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "JSON baseline of accepted findings; fails on anything new and "
            f"on stale entries (default: ./{DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def _default_paths() -> list[Path]:
    for candidate in (Path("src/repro"), Path("src"), Path(".")):
        if candidate.is_dir():
            return [candidate]
    return []


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-lint``; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code}  {rule.name:<28} {rule.description}")
        return 0

    paths = args.paths or _default_paths()
    if not paths:
        parser.error("no paths given and no src/ directory found")
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    try:
        session = LintSession(
            select=args.select.split(",") if args.select else None,
            ignore=args.ignore.split(",") if args.ignore else (),
        )
    except ValueError as exc:
        parser.error(str(exc))

    files = list(iter_python_files(paths))
    findings = []
    for path in files:
        findings.extend(lint_file(path, session=session))
    findings.sort(key=lambda f: f.sort_key())

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        default = Path(DEFAULT_BASELINE)
        baseline_path = default if default.exists() or args.write_baseline else None
    if args.no_baseline:
        baseline_path = None

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        Baseline.save(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    stale: list = []
    matched = 0
    if baseline_path is not None:
        try:
            result = Baseline.load(baseline_path).check(findings)
        except ValueError as exc:
            parser.error(str(exc))
        findings, stale, matched = result.new, result.stale, len(result.matched)

    if args.format == "json":
        print(json.dumps(
            render_json(findings, stale=stale, matched=matched, files=len(files)),
            indent=2,
        ))
    else:
        print(render_text(findings, stale=stale, matched=matched, files=len(files)))
    return 1 if findings or stale else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
