"""Finding reporters: a human text format and a machine JSON document."""

from __future__ import annotations

from typing import Optional, Sequence

from .core import RULES, Finding

__all__ = ["render_text", "render_json"]


def render_text(
    findings: Sequence[Finding],
    *,
    stale: Sequence[dict] = (),
    matched: int = 0,
    files: Optional[int] = None,
) -> str:
    """ruff/flake8-style lines plus a per-rule summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1} {f.rule} {f.message}" for f in findings
    ]
    for entry in stale:
        lines.append(
            f"{entry['path']} {entry['rule']} stale baseline entry "
            f"(no longer observed): {entry['snippet']!r}"
        )
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    if findings or stale:
        lines.append("")
        for rule in sorted(counts):
            name = getattr(RULES.get(rule), "name", "")
            lines.append(f"{counts[rule]:>5}  {rule}  {name}")
        total = len(findings)
        suffix = f", {len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}" if stale else ""
        lines.append(f"{total} finding{'s' if total != 1 else ''}{suffix}.")
    else:
        scanned = f" in {files} files" if files is not None else ""
        baselined = f" ({matched} baselined)" if matched else ""
        lines.append(f"All checks passed{scanned}{baselined}.")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    *,
    stale: Sequence[dict] = (),
    matched: int = 0,
    files: Optional[int] = None,
) -> dict:
    """JSON-serialisable report document (stable key order)."""
    return {
        "version": 1,
        "files": files,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "snippet": f.snippet,
                "fingerprint": f.fingerprint,
            }
            for f in findings
        ],
        "stale_baseline": list(stale),
        "baselined": matched,
        "summary": {
            "findings": len(findings),
            "stale": len(stale),
            "ok": not findings and not stale,
        },
    }
