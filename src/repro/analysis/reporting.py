"""Finding reporters: human text, machine JSON, and GitHub annotations."""

from __future__ import annotations

from typing import Optional, Sequence

from .core import RULES, Finding

__all__ = ["render_text", "render_json", "render_github"]


def render_text(
    findings: Sequence[Finding],
    *,
    stale: Sequence[dict] = (),
    matched: int = 0,
    files: Optional[int] = None,
) -> str:
    """ruff/flake8-style lines plus a per-rule summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1} {f.rule} {f.message}" for f in findings
    ]
    for entry in stale:
        lines.append(
            f"{entry['path']} {entry['rule']} stale baseline entry "
            f"(no longer observed): {entry['snippet']!r}"
        )
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    if findings or stale:
        lines.append("")
        for rule in sorted(counts):
            name = getattr(RULES.get(rule), "name", "")
            lines.append(f"{counts[rule]:>5}  {rule}  {name}")
        total = len(findings)
        suffix = f", {len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}" if stale else ""
        lines.append(f"{total} finding{'s' if total != 1 else ''}{suffix}.")
    else:
        scanned = f" in {files} files" if files is not None else ""
        baselined = f" ({matched} baselined)" if matched else ""
        lines.append(f"All checks passed{scanned}{baselined}.")
    return "\n".join(lines)


def _gh_escape(value: str, *, prop: bool = False) -> str:
    """GitHub workflow-command escaping (data; *prop* adds ``:``/``,``)."""
    value = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if prop:
        value = value.replace(":", "%3A").replace(",", "%2C")
    return value


def render_github(
    findings: Sequence[Finding],
    *,
    stale: Sequence[dict] = (),
) -> str:
    """``::error file=…,line=…`` workflow commands — one per finding.

    Emitted on stdout inside a GitHub Actions job, these surface as
    inline PR annotations at the offending line.  Clean runs produce no
    output (annotations only exist to point at problems).
    """
    lines = []
    for f in findings:
        lines.append(
            f"::error file={_gh_escape(f.path, prop=True)}"
            f",line={f.line},col={f.col + 1}"
            f",title={_gh_escape(f.rule, prop=True)}"
            f"::{_gh_escape(f.message)}"
        )
    for entry in stale:
        lines.append(
            f"::error file={_gh_escape(entry['path'], prop=True)}"
            f",title={_gh_escape(entry['rule'] + ' (stale baseline)', prop=True)}"
            f"::stale baseline entry (no longer observed): "
            f"{_gh_escape(repr(entry['snippet']))}"
        )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    *,
    stale: Sequence[dict] = (),
    matched: int = 0,
    files: Optional[int] = None,
) -> dict:
    """JSON-serialisable report document (stable key order)."""
    return {
        "version": 1,
        "files": files,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "snippet": f.snippet,
                "fingerprint": f.fingerprint,
            }
            for f in findings
        ],
        "stale_baseline": list(stale),
        "baselined": matched,
        "summary": {
            "findings": len(findings),
            "stale": len(stale),
            "ok": not findings and not stale,
        },
    }
