"""Committed JSON baselines: adopt a tool without stopping the world.

A baseline records *known* findings so the lint gate can fail only on
**new** ones, while also failing on **stale** entries — baselined
findings that no longer occur — so the debt list can only shrink.  (This
repo's own baseline is empty by policy: every pre-existing violation was
fixed, not baselined, when the linter landed.)

Entries are keyed by ``(rule, path, fingerprint-of-source-line)`` rather
than line numbers, so edits elsewhere in a file don't churn the baseline.
Identical findings on identical lines are matched as a multiset.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .core import Finding

__all__ = ["Baseline", "BaselineResult"]

_VERSION = 1


@dataclass
class BaselineResult:
    """Outcome of checking findings against a baseline."""

    new: list  # findings not covered by the baseline
    matched: list  # findings the baseline accepts
    stale: list  # baseline entries no longer observed (dicts)

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


class Baseline:
    """An on-disk set of accepted findings."""

    def __init__(self, entries: Sequence[dict] = ()):
        self.entries = list(entries)

    # -- persistence -------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not Path(path).exists():
            return cls()
        doc = json.loads(Path(path).read_text())
        if doc.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {doc.get('version')!r} in {path}"
            )
        return cls(doc.get("findings", []))

    @staticmethod
    def save(path: Path, findings: Iterable[Finding]) -> None:
        entries = [
            {
                "rule": f.rule,
                "path": f.path,
                "fingerprint": f.fingerprint,
                "snippet": f.snippet,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ]
        doc = {"version": _VERSION, "findings": entries}
        Path(path).write_text(json.dumps(doc, indent=2) + "\n")

    # -- matching ----------------------------------------------------------
    @staticmethod
    def _key(entry: dict) -> tuple:
        return (entry["rule"], entry["path"], entry["fingerprint"])

    def check(self, findings: Sequence[Finding]) -> BaselineResult:
        """Split *findings* into new/matched and detect stale entries."""
        budget: dict[tuple, int] = {}
        for entry in self.entries:
            key = self._key(entry)
            budget[key] = budget.get(key, 0) + 1
        new, matched = [], []
        for finding in findings:
            key = (finding.rule, finding.path, finding.fingerprint)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                matched.append(finding)
            else:
                new.append(finding)
        # Stale = the per-key surplus of baseline entries over findings.
        stale = []
        for entry in self.entries:
            key = self._key(entry)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                stale.append(entry)
        return BaselineResult(new=new, matched=matched, stale=stale)
