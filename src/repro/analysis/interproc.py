"""Whole-program rules: fixpoint taint propagation over the call graph.

The per-file rules catch a ``time.time()`` written directly inside a
task body; they cannot catch the same call two helpers deep inside a
function shipped to the warm worker pool.  These rules can, because they
run over :class:`repro.analysis.graph.ProjectGraph` — every module of
the linted tree parsed once, with a conservative call graph and the
worker entry points declared at the dispatch sites themselves.

====== ===================== ============================================
code   name                  contract
====== ===================== ============================================
WRK001 worker-purity         code reachable from worker entry points is
                             transitively free of wall-clock reads,
                             unseeded RNG, mutable module-global writes,
                             and shared-memory use outside repro.exec.shm
CTR002 counter-key-flow      counter-key literals passed through helper
                             parameters into ``counters.add`` sinks must
                             be registered in COUNTER_SCHEMA
DET004 set-identity-flow     set-iteration order and ``id()`` values must
                             not cross function boundaries into ordered
                             outputs, pair arrays, or fingerprints
API002 dead-export           ``__all__`` / ``_EXPORTS`` symbols nobody
                             outside the module references are dead API
====== ===================== ============================================

Every WRK001/CTR002/DET004 finding carries a ``trace`` — the witness
chain from the entry point (or key literal, or set producer) to the
primitive — rendered by ``repro-lint --why CODE path:line``.  Findings
honour the same ``# repro: noqa[RULE]`` line suppressions as the
per-file phase, keyed on the line the finding is reported at.

All fixpoints are monotone over finite lattices (a function either has
a summary fact or it doesn't; facts are only ever added), so every loop
terminates even on mutually recursive call cycles — the property
``tests/analysis/test_graph.py`` pins with an explicit two-function
cycle.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .clock import CLOCK_WHITELIST, _CLOCK_CALLS
from .core import RULES, Finding, LintSession, Rule, register
from .determinism import unseeded_rng_message
from .graph import (
    FunctionNode,
    ModuleNode,
    ProjectGraph,
    _FunctionScan,
    _annotation_class,
    _resolve_dotted,
    build_graph,
)
from .shm import SHM_WHITELIST, _SHM_CALLS, _SHM_MODULES

# The rule classes are reached through the RULES registry; tests import
# ProjectContext / WORKER_STATE_WHITELIST directly.  The one supported
# entry point is lint_project.
__all__ = ["lint_project"]

#: Modules allowed to write module-level state from worker-reachable
#: code: the planes whose *job* is per-process state.  ``repro.exec.shm``
#: owns the live-segment registry, ``repro.exec.shm_pool`` the worker-side
#: attach/arena caches, ``repro.exec.task`` the per-task counter swap,
#: ``repro.trace.core`` the active-session pin, and ``repro.metrics`` the
#: thread-local counter redirect stack.  Everything else reached from a
#: worker must treat module globals as read-only — a write would survive
#: into the next task the warm worker runs and break bit-identical replay.
WORKER_STATE_WHITELIST = frozenset(
    {
        "repro.exec.shm",
        "repro.exec.shm_pool",
        "repro.exec.task",
        "repro.trace.core",
        "repro.metrics",
    }
)

#: WRK001 taint kinds -> modules exempt for that kind only.
_KIND_WHITELISTS = {
    "wall-clock read": CLOCK_WHITELIST,
    "unseeded/global RNG": frozenset(),
    "module-global write": WORKER_STATE_WHITELIST,
    "shared-memory use": SHM_WHITELIST,
}

#: methods that mutate their receiver in place
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "appendleft",
        "extendleft",
    }
)

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

#: set-returning methods (mirrors core._SET_METHODS)
_SET_METHODS = ("union", "intersection", "difference", "symmetric_difference")

#: builtins whose result cannot observe iteration order (DET003 twin)
_ORDER_FREE = frozenset(
    {"sorted", "sum", "min", "max", "any", "all", "len", "set", "frozenset"}
)


@dataclass(frozen=True)
class Primitive:
    """One impure primitive inside a function body (a WRK001 taint seed)."""

    kind: str  # key into _KIND_WHITELISTS
    lineno: int
    col: int
    detail: str  # short human phrase for the message / trace


# --------------------------------------------------------------- AST helpers
def _own_nodes(root: ast.AST) -> Iterable[ast.AST]:
    """Walk *root* without descending into nested function bodies."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _FUNC_NODES):
            stack.extend(ast.iter_child_nodes(node))


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain (None otherwise)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _imported_dotted(node: ast.AST, mod: ModuleNode) -> Optional[str]:
    """Dotted origin of a chain *rooted at an import* (None otherwise).

    The root-must-be-imported restriction mirrors
    :meth:`FileContext.resolve_imported`: a local variable that merely
    shares a module's name cannot look like ``time.time``.
    """
    base = node
    while isinstance(base, ast.Attribute):
        base = base.value
    if isinstance(base, ast.Name) and base.id in mod.imports:
        return _resolve_dotted(node, mod)
    return None


def _fn_args(fn: FunctionNode) -> list:
    args = getattr(fn.node, "args", None)
    if args is None:
        return []
    return args.posonlyargs + args.args + args.kwonlyargs


def _local_names(fn: FunctionNode) -> set:
    """Names bound locally in *fn* (params, stores, imports, handlers)."""
    names = set(fn.params)
    declared_global: set = set()
    for node in _own_nodes(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, ast.Nonlocal):
            names.update(node.names)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names - declared_global


def _bind_args(call: ast.Call, callee: FunctionNode) -> Iterable[tuple]:
    """Yield ``(parameter_name, argument_node)`` pairs for a call site.

    Positional binding assumes the conventional shapes: an attribute
    call on an instance binds the first parameter (``self``) to the
    receiver; a bare call does not.  Keywords bind by name.
    """
    offset = (
        1
        if callee.cls is not None
        and callee.params[:1]
        and callee.params[0] in ("self", "cls")
        and isinstance(call.func, ast.Attribute)
        else 0
    )
    for i, arg in enumerate(call.args):
        idx = i + offset
        if idx < len(callee.params):
            yield callee.params[idx], arg
    for kw in call.keywords:
        if kw.arg is not None:
            yield kw.arg, kw.value


def _location(graph: ProjectGraph, qualname: str) -> str:
    fn = graph.functions.get(qualname)
    if fn is None:
        return "?"
    mod = graph.modules.get(fn.module)
    return f"{mod.path}:{fn.lineno}" if mod else f"?:{fn.lineno}"


# ----------------------------------------------------------- shared context
class _Resolver:
    """Call-site resolution reusing the graph builder's machinery."""

    def __init__(self, graph: ProjectGraph):
        self.graph = graph
        self._scans: dict = {}
        self._types: dict = {}

    def callee(self, func_expr: ast.AST, fn: FunctionNode) -> Optional[str]:
        """Qualname of the *function* a callee expression denotes."""
        mod = self.graph.modules.get(fn.module)
        if mod is None:
            return None
        scan = self._scans.get(fn.module)
        if scan is None:
            scan = self._scans[fn.module] = _FunctionScan(self.graph, mod)
        local_types = self._types.get(fn.qualname)
        if local_types is None:
            local_types = self._types[fn.qualname] = scan._local_types(fn)
        resolved = scan._resolve_callable(func_expr, fn, local_types)
        return resolved if resolved in self.graph.functions else None


class ProjectContext:
    """Everything whole-program rule hooks need: graph, schema, report()."""

    def __init__(self, graph: ProjectGraph, session: LintSession):
        self.graph = graph
        self.session = session
        self.findings: list = []
        self.resolver = _Resolver(graph)
        self._primitives: dict = {}
        self._parent_stamped: set = set()

    # -- findings ----------------------------------------------------------
    def report(
        self,
        rule: Rule,
        mod: ModuleNode,
        lineno: int,
        col: int,
        message: str,
        trace: Sequence[str] = (),
    ) -> None:
        """Record a finding unless a ``# repro: noqa`` suppresses it."""
        codes = mod.noqa.get(lineno)
        if codes is not None and (not codes or rule.code in codes):
            return
        snippet = (
            mod.lines[lineno - 1].strip() if 0 < lineno <= len(mod.lines) else ""
        )
        self.findings.append(
            Finding(rule.code, mod.path, lineno, col, message, snippet, tuple(trace))
        )

    # -- shared analyses ---------------------------------------------------
    def schema(self) -> frozenset:
        """CTR002's registered-key set (lazy, same source as CTR001)."""
        if self.session.counter_schema is None:
            from ..metrics import COUNTER_SCHEMA

            self.session.counter_schema = frozenset(COUNTER_SCHEMA)
        return self.session.counter_schema

    def parent_of(self, mod: ModuleNode, node: ast.AST) -> Optional[ast.AST]:
        """AST parent within *mod*'s tree (stamped lazily per module)."""
        if mod.name not in self._parent_stamped:
            for parent in ast.walk(mod.tree):
                for child in ast.iter_child_nodes(parent):
                    child._ip_parent = parent  # type: ignore[attr-defined]
            self._parent_stamped.add(mod.name)
        return getattr(node, "_ip_parent", None)

    def primitives(self, fn: FunctionNode) -> list:
        """The impure primitives inside *fn*'s body (cached per function)."""
        cached = self._primitives.get(fn.qualname)
        if cached is None:
            mod = self.graph.modules.get(fn.module)
            cached = self._primitives[fn.qualname] = (
                _collect_primitives(fn, mod, self.graph)
                if mod is not None
                else []
            )
        return cached


def _collect_primitives(
    fn: FunctionNode, mod: ModuleNode, graph: ProjectGraph
) -> list:
    """Scan one function body for WRK001 taint seeds."""
    out: list[Primitive] = []
    locals_ = _local_names(fn)

    def names_module(root: str) -> bool:
        # ``np.append(...)`` is a call into numpy, not a mutation of a
        # module-level object — skip mutating-method checks when the
        # receiver's root is an import alias denoting a module.
        origin = mod.imports.get(root)
        return origin is not None and (
            "." not in origin or origin in graph.modules
        )

    declared_global: set = set()
    for node in _own_nodes(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in _own_nodes(fn.node):
        if isinstance(node, ast.Call):
            dotted = _imported_dotted(node.func, mod)
            if dotted is not None:
                if dotted in _CLOCK_CALLS:
                    out.append(
                        Primitive(
                            "wall-clock read",
                            node.lineno,
                            node.col_offset,
                            f"{dotted}()",
                        )
                    )
                elif unseeded_rng_message(
                    dotted, has_args=bool(node.args or node.keywords)
                ):
                    out.append(
                        Primitive(
                            "unseeded/global RNG",
                            node.lineno,
                            node.col_offset,
                            f"{dotted}()",
                        )
                    )
                if dotted in _SHM_CALLS:
                    out.append(
                        Primitive(
                            "shared-memory use",
                            node.lineno,
                            node.col_offset,
                            f"{dotted}()",
                        )
                    )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
            ):
                root = _root_name(node.func.value)
                if (
                    root is not None
                    and root not in ("self", "cls")
                    and root not in locals_
                    and root in mod.bindings
                    and not names_module(root)
                ):
                    out.append(
                        Primitive(
                            "module-global write",
                            node.lineno,
                            node.col_offset,
                            f"{root}.{node.func.attr}(...) mutates "
                            f"module-level state",
                        )
                    )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    out.append(
                        Primitive(
                            "module-global write",
                            node.lineno,
                            node.col_offset,
                            f"assignment to global {target.id!r}",
                        )
                    )
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if (
                        root is not None
                        and root not in ("self", "cls")
                        and root not in locals_
                        and root in mod.bindings
                    ):
                        out.append(
                            Primitive(
                                "module-global write",
                                node.lineno,
                                node.col_offset,
                                f"write through module-level name {root!r}",
                            )
                        )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _SHM_MODULES:
                    out.append(
                        Primitive(
                            "shared-memory use",
                            node.lineno,
                            node.col_offset,
                            f"import {alias.name}",
                        )
                    )
        elif isinstance(node, ast.ImportFrom) and not node.level:
            if node.module in _SHM_MODULES:
                out.append(
                    Primitive(
                        "shared-memory use",
                        node.lineno,
                        node.col_offset,
                        f"from {node.module} import ...",
                    )
                )
            elif node.module == "multiprocessing":
                for alias in node.names:
                    if f"multiprocessing.{alias.name}" in _SHM_MODULES:
                        out.append(
                            Primitive(
                                "shared-memory use",
                                node.lineno,
                                node.col_offset,
                                f"from multiprocessing import {alias.name}",
                            )
                        )
    return sorted(out, key=lambda p: (p.lineno, p.col, p.kind, p.detail))


# ------------------------------------------------------------------- WRK001
@register
class WorkerPurity(Rule):
    """WRK001: worker-reachable code is transitively pure."""

    code = "WRK001"
    name = "worker-purity"
    whole_program = True
    description = (
        "function reachable from a worker entry point performs a "
        "wall-clock read, unseeded RNG draw, module-global write, or "
        "shared-memory call (transitively; see --why for the call chain)"
    )

    def check_project(self, graph: ProjectGraph, pctx: ProjectContext) -> None:
        """Flag every impure primitive reachable from a worker entry."""
        parents = graph.reachable_from_entries()
        seen: set = set()
        for qualname in sorted(parents):
            fn = graph.functions.get(qualname)
            if fn is None:
                continue
            mod = graph.modules.get(fn.module)
            if mod is None:
                continue
            for prim in pctx.primitives(fn):
                if fn.module in _KIND_WHITELISTS.get(prim.kind, frozenset()):
                    continue
                site = (mod.path, prim.lineno, prim.kind, prim.detail)
                if site in seen:
                    continue
                seen.add(site)
                entry = parents[qualname][0]
                trace = self._trace(graph, parents, qualname, prim)
                pctx.report(
                    self,
                    mod,
                    prim.lineno,
                    prim.col,
                    f"{prim.detail}: {prim.kind} in {qualname}, which is "
                    f"reachable from worker entry point {entry.qualname} "
                    f"({entry.reason}); worker-shipped code must be "
                    "transitively deterministic — run "
                    f"`repro-lint --why WRK001 {mod.path}:{prim.lineno}` "
                    "for the call chain",
                    trace=trace,
                )

    @staticmethod
    def _trace(
        graph: ProjectGraph, parents: dict, qualname: str, prim: Primitive
    ) -> tuple:
        """Witness chain: entry point -> ... -> offending primitive."""
        entry = parents[qualname][0]
        lines = []
        for step_qual, edge in graph.chain(parents, qualname):
            loc = _location(graph, step_qual)
            if edge is None:
                lines.append(
                    f"{step_qual} ({loc}) <- {entry.reason} at "
                    f"{entry.path}:{entry.lineno}"
                )
            else:
                lines.append(
                    f"-> {step_qual} ({loc}) via {edge.kind} at line "
                    f"{edge.lineno}"
                )
        lines.append(f"!! {prim.detail} ({prim.kind}) at line {prim.lineno}")
        return tuple(lines)


# ------------------------------------------------------------------- CTR002
def _is_counterish(node: ast.AST, fn: FunctionNode, mod, graph) -> bool:
    """Structural ledger test for graph-phase ASTs (no FileContext)."""
    if isinstance(node, ast.Attribute):
        return node.attr == "counters"
    if isinstance(node, ast.Name):
        if node.id == "counters":
            return True
        if node.id in ("self", "cls"):
            return bool(fn.cls) and fn.cls.rsplit(".", 1)[-1] == "Counters"
        for arg in _fn_args(fn):
            if arg.arg == node.id:
                resolved = _annotation_class(arg.annotation, mod, graph)
                return resolved is not None and resolved.endswith(".Counters")
    return False


@register
class CounterKeyFlow(Rule):
    """CTR002: helper-parameter counter keys resolve to COUNTER_SCHEMA."""

    code = "CTR002"
    name = "counter-key-flow"
    whole_program = True
    description = (
        "string literal flows through helper-function parameters into a "
        "counters.add sink but is not registered in COUNTER_SCHEMA"
    )

    def check_project(self, graph: ProjectGraph, pctx: ProjectContext) -> None:
        """Fixpoint the key-parameter set, then validate literal call sites."""
        key_params = self._key_params(graph, pctx)
        schema = pctx.schema()
        for qualname, fn in sorted(graph.functions.items()):
            mod = graph.modules.get(fn.module)
            if mod is None:
                continue
            for node in _own_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = pctx.resolver.callee(node.func, fn)
                if callee not in key_params:
                    continue
                callee_fn = graph.functions[callee]
                for param, arg in _bind_args(node, callee_fn):
                    if param not in key_params[callee]:
                        continue
                    if not (
                        isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                    ):
                        continue
                    if arg.value in schema:
                        continue
                    trace = (
                        f"literal {arg.value!r} passed at "
                        f"{mod.path}:{node.lineno}",
                    ) + key_params[callee][param]
                    pctx.report(
                        self,
                        mod,
                        node.lineno,
                        node.col_offset,
                        f"counter key {arg.value!r} flows through "
                        f"{callee}(param {param!r}) into counters.add but "
                        "is not registered in repro.metrics.COUNTER_SCHEMA "
                        "— register it or fix the typo (unregistered keys "
                        "silently split the ledger)",
                        trace=trace,
                    )

    @staticmethod
    def _key_params(graph: ProjectGraph, pctx: ProjectContext) -> dict:
        """qualname -> {param -> provenance chain to a counters.add sink}."""
        key_params: dict = {}
        for qualname, fn in sorted(graph.functions.items()):
            mod = graph.modules.get(fn.module)
            if mod is None:
                continue
            for node in _own_nodes(fn.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in fn.params
                    and _is_counterish(node.func.value, fn, mod, graph)
                ):
                    key_params.setdefault(qualname, {}).setdefault(
                        node.args[0].id,
                        (
                            f"{qualname}({node.args[0].id}) -> counters.add "
                            f"at {mod.path}:{node.lineno}",
                        ),
                    )
        # Propagate caller-param -> callee-key-param edges to fixpoint.
        # Monotone (entries only ever added), so it terminates on cycles.
        changed = True
        while changed:
            changed = False
            for qualname, fn in sorted(graph.functions.items()):
                mod = graph.modules.get(fn.module)
                if mod is None:
                    continue
                for node in _own_nodes(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = pctx.resolver.callee(node.func, fn)
                    if callee not in key_params:
                        continue
                    callee_fn = graph.functions[callee]
                    for param, arg in _bind_args(node, callee_fn):
                        if (
                            param in key_params[callee]
                            and isinstance(arg, ast.Name)
                            and arg.id in fn.params
                        ):
                            mine = key_params.setdefault(qualname, {})
                            if arg.id not in mine:
                                mine[arg.id] = (
                                    f"{qualname}({arg.id}) -> "
                                    f"{callee}({param}) at "
                                    f"{mod.path}:{node.lineno}",
                                ) + key_params[callee][param]
                                changed = True
        return key_params


# ------------------------------------------------------------------- DET004
@register
class SetIdentityFlow(Rule):
    """DET004: set order / id() values must not cross function boundaries."""

    code = "DET004"
    name = "set-identity-flow"
    whole_program = True
    description = (
        "set-iteration order or an id() value crosses a function boundary "
        "into ordered output (pair arrays, merges, fingerprints)"
    )

    _KEYED_METHODS = ("setdefault", "get", "pop", "add", "discard", "remove")

    def check_project(self, graph: ProjectGraph, pctx: ProjectContext) -> None:
        """Summarise producers/consumers, then check every call boundary."""
        returns_set, returns_id = self._return_summaries(graph, pctx)
        ordered_params = self._ordered_params(graph, pctx)
        for qualname, fn in sorted(graph.functions.items()):
            mod = graph.modules.get(fn.module)
            if mod is None:
                continue
            self._check_ordered_uses(graph, pctx, fn, mod, returns_set)
            self._check_set_args(
                graph, pctx, fn, mod, returns_set, ordered_params
            )
            self._check_id_keys(graph, pctx, fn, mod, returns_id)

    # -- summaries ---------------------------------------------------------
    def _return_summaries(
        self, graph: ProjectGraph, pctx: ProjectContext
    ) -> tuple:
        """Fixpoint: which functions return sets / id()-derived values."""
        returns_set: dict = {}
        returns_id: dict = {}
        changed = True
        while changed:
            changed = False
            for qualname, fn in sorted(graph.functions.items()):
                if qualname in returns_set and qualname in returns_id:
                    continue
                if graph.modules.get(fn.module) is None:
                    continue
                local_sets = self._local_sets(pctx, fn, returns_set)
                for value, lineno in self._return_values(fn):
                    if qualname not in returns_set and self._setish(
                        value, pctx, fn, local_sets, returns_set
                    ):
                        returns_set[qualname] = lineno
                        changed = True
                    if qualname not in returns_id and self._idish(
                        value, pctx, fn, returns_id
                    ):
                        returns_id[qualname] = lineno
                        changed = True
        return returns_set, returns_id

    @staticmethod
    def _return_values(fn: FunctionNode) -> Iterable[tuple]:
        if isinstance(fn.node, ast.Lambda):
            yield fn.node.body, fn.node.lineno
            return
        for node in _own_nodes(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                yield node.value, node.lineno

    def _local_sets(
        self, pctx: ProjectContext, fn: FunctionNode, returns_set: dict
    ) -> set:
        """Local names assigned from set expressions (flow-insensitive)."""
        local: set = set()
        changed = True
        while changed:
            changed = False
            for node in _own_nodes(fn.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id not in local
                    and self._setish(node.value, pctx, fn, local, returns_set)
                ):
                    local.add(node.targets[0].id)
                    changed = True
        return local

    def _setish(
        self,
        node: ast.AST,
        pctx: ProjectContext,
        fn: FunctionNode,
        local_sets: set,
        returns_set: dict,
    ) -> bool:
        """Graph-phase twin of :func:`repro.analysis.core.is_setish`, plus
        calls to functions whose summary says they return a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
            ):
                return self._setish(
                    node.func.value, pctx, fn, local_sets, returns_set
                )
            return pctx.resolver.callee(node.func, fn) in returns_set
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._setish(
                node.left, pctx, fn, local_sets, returns_set
            ) or self._setish(node.right, pctx, fn, local_sets, returns_set)
        if isinstance(node, ast.Name):
            return node.id in local_sets
        return False

    def _idish(
        self,
        node: ast.AST,
        pctx: ProjectContext,
        fn: FunctionNode,
        returns_id: dict,
    ) -> bool:
        """Is this expression an ``id()`` value (directly or via a call)?"""
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                return True
            return pctx.resolver.callee(node.func, fn) in returns_id
        return False

    def _ordered_params(
        self, graph: ProjectGraph, pctx: ProjectContext
    ) -> dict:
        """qualname -> {param -> line where its order reaches output}."""
        out: dict = {}
        for qualname, fn in sorted(graph.functions.items()):
            mod = graph.modules.get(fn.module)
            if mod is None:
                continue
            params = set(fn.params) - {"self", "cls"}
            found: dict = {}
            for node in _own_nodes(fn.node):
                if (
                    isinstance(node, ast.For)
                    and isinstance(node.iter, ast.Name)
                    and node.iter.id in params
                ):
                    found.setdefault(node.iter.id, node.iter.lineno)
                elif isinstance(
                    node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
                ):
                    if self._order_free_parent(pctx, mod, node):
                        continue
                    for gen in node.generators:
                        if (
                            isinstance(gen.iter, ast.Name)
                            and gen.iter.id in params
                        ):
                            found.setdefault(gen.iter.id, gen.iter.lineno)
                elif isinstance(node, ast.Call):
                    arg = node.args[0] if node.args else None
                    if not (isinstance(arg, ast.Name) and arg.id in params):
                        continue
                    if (
                        isinstance(node.func, ast.Name)
                        and node.func.id in ("list", "tuple", "enumerate")
                    ) or (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "join"
                    ):
                        found.setdefault(arg.id, node.lineno)
            if found:
                out[qualname] = found
        return out

    @staticmethod
    def _order_free_parent(pctx: ProjectContext, mod, node: ast.AST) -> bool:
        parent = pctx.parent_of(mod, node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_FREE
            and node in parent.args
        )

    # -- checks ------------------------------------------------------------
    def _set_call(
        self,
        node: ast.AST,
        pctx: ProjectContext,
        fn: FunctionNode,
        returns_set: dict,
    ) -> Optional[str]:
        if isinstance(node, ast.Call):
            callee = pctx.resolver.callee(node.func, fn)
            if callee in returns_set:
                return callee
        return None

    def _report_set_use(
        self,
        pctx: ProjectContext,
        graph: ProjectGraph,
        fn,
        mod,
        node: ast.AST,
        callee: str,
        returns_set: dict,
        where: str,
    ) -> None:
        pctx.report(
            self,
            mod,
            node.lineno,
            node.col_offset,
            f"result of {callee}() is a set (returned at "
            f"{_location(graph, callee).rsplit(':', 1)[0]}:"
            f"{returns_set[callee]}) and is iterated {where}: set order "
            "crosses the function boundary into ordered output — wrap in "
            "sorted(...) or return a sorted sequence from the callee",
            trace=(
                f"{callee} returns a set at "
                f"{_location(graph, callee).rsplit(':', 1)[0]}:"
                f"{returns_set[callee]}",
                f"result iterated {where} in {fn.qualname} at "
                f"{mod.path}:{node.lineno}",
            ),
        )

    def _check_ordered_uses(
        self, graph, pctx, fn, mod, returns_set: dict
    ) -> None:
        """Set-returning call results iterated in ordered contexts here."""
        for node in _own_nodes(fn.node):
            if isinstance(node, ast.For):
                callee = self._set_call(node.iter, pctx, fn, returns_set)
                if callee is not None:
                    self._report_set_use(
                        pctx, graph, fn, mod, node.iter, callee, returns_set,
                        "in a for loop",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
            ):
                if self._order_free_parent(pctx, mod, node):
                    continue
                for gen in node.generators:
                    callee = self._set_call(gen.iter, pctx, fn, returns_set)
                    if callee is not None:
                        self._report_set_use(
                            pctx, graph, fn, mod, gen.iter, callee,
                            returns_set, "in a comprehension",
                        )
            elif isinstance(node, ast.Call):
                arg = node.args[0] if node.args else None
                callee = (
                    self._set_call(arg, pctx, fn, returns_set)
                    if arg is not None
                    else None
                )
                if callee is None:
                    continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple", "enumerate")
                ) or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                ):
                    self._report_set_use(
                        pctx, graph, fn, mod, node, callee, returns_set,
                        f"via {getattr(node.func, 'id', 'str.join')}()",
                    )

    def _check_set_args(
        self, graph, pctx, fn, mod, returns_set: dict, ordered_params: dict
    ) -> None:
        """Set expressions passed to params the callee iterates ordered."""
        local_sets = self._local_sets(pctx, fn, returns_set)
        for node in _own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = pctx.resolver.callee(node.func, fn)
            if callee not in ordered_params:
                continue
            callee_fn = graph.functions[callee]
            callee_mod = graph.modules.get(callee_fn.module)
            for param, arg in _bind_args(node, callee_fn):
                if param not in ordered_params[callee]:
                    continue
                if not self._setish(arg, pctx, fn, local_sets, returns_set):
                    continue
                iter_line = ordered_params[callee][param]
                pctx.report(
                    self,
                    mod,
                    node.lineno,
                    node.col_offset,
                    f"set passed to {callee}(param {param!r}), which "
                    f"iterates it into ordered output (line {iter_line}): "
                    "set order crosses the function boundary — pass "
                    "sorted(...) or sort inside the callee",
                    trace=(
                        f"set argument at {mod.path}:{node.lineno} in "
                        f"{fn.qualname}",
                        f"{callee} iterates param {param!r} in an ordered "
                        f"context at "
                        f"{callee_mod.path if callee_mod else '?'}:"
                        f"{iter_line}",
                    ),
                )

    def _check_id_keys(self, graph, pctx, fn, mod, returns_id: dict) -> None:
        """id()-derived call results used as keys / membership tokens."""

        def flag(node: ast.AST, callee: str, what: str) -> None:
            pctx.report(
                self,
                mod,
                node.lineno,
                node.col_offset,
                f"result of {callee}() is an id() value (returned at line "
                f"{returns_id[callee]}) used as a {what}: addresses are "
                "recycled after GC and vary across runs — key on a stable "
                "identity instead",
                trace=(
                    f"{callee} returns id(...) at "
                    f"{_location(graph, callee).rsplit(':', 1)[0]}:"
                    f"{returns_id[callee]}",
                    f"used as {what} in {fn.qualname} at "
                    f"{mod.path}:{node.lineno}",
                ),
            )

        def id_call(expr: ast.AST) -> Optional[str]:
            if isinstance(expr, ast.Call):
                callee = pctx.resolver.callee(expr.func, fn)
                if callee in returns_id:
                    return callee
            return None

        for node in _own_nodes(fn.node):
            if isinstance(node, ast.Subscript):
                keys = (
                    node.slice.elts
                    if isinstance(node.slice, ast.Tuple)
                    else [node.slice]
                )
                for key in keys:
                    callee = id_call(key)
                    if callee is not None:
                        flag(node, callee, "subscript key")
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    callee = id_call(key) if key is not None else None
                    if callee is not None:
                        flag(node, callee, "dict-literal key")
            elif isinstance(node, ast.Compare):
                callee = id_call(node.left)
                if callee is not None and any(
                    isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
                ):
                    flag(node, callee, "membership probe")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._KEYED_METHODS
                and node.args
            ):
                callee = id_call(node.args[0])
                if callee is not None:
                    flag(node, callee, f"{node.func.attr}() key")


# ------------------------------------------------------------------- API002
@register
class DeadExport(Rule):
    """API002: exported symbols nobody outside the module references."""

    code = "API002"
    name = "dead-export"
    whole_program = True
    description = (
        "__all__ / _EXPORTS symbol with no inbound reference from any "
        "other module in the linted tree — dead API surface"
    )

    def check_project(self, graph: ProjectGraph, pctx: ProjectContext) -> None:
        """Cross-reference every export against all other modules' uses."""
        used = self._used_symbols(graph)
        for mod in sorted(graph.modules.values(), key=lambda m: m.name):
            # __init__ modules ARE the declared public surface of their
            # package: their exports exist for out-of-tree consumers.
            if Path(mod.path).name == "__init__.py":
                continue
            star_used = any(
                mod.name in other.star_imports
                for other in graph.modules.values()
                if other.name != mod.name
            )
            exports = list(mod.all_entries) + [
                (name, None) for name in sorted(mod.exports)
            ]
            for name, node in exports:
                if star_used:
                    continue
                dotted = f"{mod.name}.{name}"
                canonical = graph.resolve_symbol(dotted)
                inbound = any(
                    dotted in symbols or (canonical and canonical in symbols)
                    for other, symbols in used.items()
                    if other != mod.name
                )
                if inbound:
                    continue
                lineno = getattr(node, "lineno", 1)
                col = getattr(node, "col_offset", 0)
                pctx.report(
                    self,
                    mod,
                    lineno,
                    col,
                    f"{name!r} is exported by {mod.name} but nothing "
                    "outside that module references it — dead API surface "
                    "(drop it from __all__/_EXPORTS, or re-export it from "
                    "the package __init__ if it is public)",
                )

    @staticmethod
    def _used_symbols(graph: ProjectGraph) -> dict:
        """module name -> every dotted symbol it references or imports."""
        used: dict = {}
        for mod in graph.modules.values():
            symbols = set(graph.references.get(mod.name, ()))
            for value in mod.imports.values():
                symbols.add(value)
                resolved = graph.resolve_symbol(value)
                if resolved is not None:
                    symbols.add(resolved)
            for target_mod, attr in mod.exports.values():
                symbols.add(f"{target_mod}.{attr}")
                resolved = graph.resolve_symbol(f"{target_mod}.{attr}")
                if resolved is not None:
                    symbols.add(resolved)
            used[mod.name] = symbols
        return used


# -------------------------------------------------------------- entry point
def lint_project(
    paths: Iterable[Path], *, session: Optional[LintSession] = None
) -> list:
    """Run the whole-program phase over *paths* (sorted findings).

    Builds the project graph once, leaves it on ``session.graph``, and
    runs every enabled whole-program rule.  Module-scope statements are
    analysed by the graph builder (references, dispatch seeds) but the
    taint rules only examine function bodies — module import time runs
    in the parent process, where the per-file rules already apply.
    """
    session = session or LintSession()
    codes = session.project_codes()
    if not codes:
        return []
    graph = build_graph(Path(p) for p in paths)
    session.graph = graph
    pctx = ProjectContext(graph, session)
    for code in codes:
        RULES[code]().check_project(graph, pctx)
    return sorted(pctx.findings, key=Finding.sort_key)
