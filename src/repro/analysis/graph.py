"""Whole-program symbol table and conservative call graph.

The per-file rules in this package see one AST at a time; a wall-clock
read hidden one call deep inside a helper shipped to the warm worker
pool is invisible to them.  :class:`ProjectGraph` closes that hole: it
parses every module of the linted tree once, builds a symbol table
(modules, classes, functions — including nested functions and lambdas),
and then records a *conservative* edge set between functions:

* **call** — a direct call whose callee resolves through the module's
  (absolutized) import table, the enclosing scope chain, ``self.method``
  within a class (following project base classes), or a local variable
  whose constructor class is known (``x = Foo(); x.bar()``);
* **ref** — a bare reference to a known function (callbacks, functions
  stored in tables, ``functools.partial(fn, ...)`` arguments);
* **closure** — the edge from a function to the functions and lambdas
  defined inside it (if the outer runs in a worker, its closures can).

**Entry points** are declared *in the analyzed source itself*, at the
dispatch sites where callables cross an execution boundary:

* ``_WORKER_ENTRY_POINTS = ("fn", "Class.method", ...)`` — a module-level
  tuple naming functions in that module whose bodies execute inside
  pool workers (e.g. the warm pool's ``_worker_main`` loop).
* ``_DISPATCH_POINTS = ("MapReduceJob", "RDD.map", ...)`` — callables
  defined in that module whose *function-valued arguments* are shipped
  to workers.  At every call site of a declared dispatch point, the
  graph seeds an entry point for each function referenced in the
  arguments (lambdas, named functions, ``self._method`` references,
  factories called inside list comprehensions, and — one hop — local
  variables assigned from such expressions).

Matching is conservative: an attribute call whose receiver type cannot
be resolved matches a declared ``Class.method`` spec by method name
alone.  Over-approximation only ever *adds* reachability, which is the
safe direction for the WRK001 worker-purity guarantee.

Everything is deterministic: modules are processed in sorted path
order, edges and seeds are kept in first-insertion order of a sorted
walk, and :meth:`ProjectGraph.reachable_from_entries` breaks ties by
qualname so ``--why`` chains are stable across runs and machines.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from .core import _module_name, _noqa_map, iter_python_files

# Edge/ClassNode/EntryPoint stay importable for the graph tests but are
# internal data-model details; the supported surface is the four below.
__all__ = [
    "FunctionNode",
    "ModuleNode",
    "ProjectGraph",
    "build_graph",
]

#: module-level declaration names read by the graph builder
WORKER_ENTRY_DECL = "_WORKER_ENTRY_POINTS"
DISPATCH_DECL = "_DISPATCH_POINTS"

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass(frozen=True)
class Edge:
    """One outgoing edge of a function node."""

    target: str  # callee qualname
    kind: str  # "call" | "ref" | "closure"
    lineno: int  # call/reference site in the caller's file


@dataclass
class FunctionNode:
    """One function, method, nested function, or lambda."""

    qualname: str
    module: str
    name: str
    lineno: int
    node: ast.AST
    cls: Optional[str] = None  # owning class qualname
    parent: Optional[str] = None  # enclosing function qualname
    params: tuple = ()
    edges: list = field(default_factory=list)

    def add_edge(self, target: str, kind: str, lineno: int) -> None:
        """Append an outgoing edge, deduplicating exact repeats."""
        edge = Edge(target, kind, lineno)
        if edge not in self.edges:
            self.edges.append(edge)


@dataclass
class ClassNode:
    """One class: its methods, bases, and inferred attribute types."""

    qualname: str
    module: str
    name: str
    bases: tuple = ()  # resolved dotted names (best effort)
    methods: dict = field(default_factory=dict)  # name -> qualname
    attr_types: dict = field(default_factory=dict)  # self.X -> class qualname


@dataclass
class ModuleNode:
    """One parsed module of the project."""

    name: str
    path: str
    tree: ast.Module
    lines: list
    imports: dict = field(default_factory=dict)  # alias -> absolute dotted
    bindings: set = field(default_factory=set)  # top-level names
    classes: dict = field(default_factory=dict)  # name -> ClassNode
    functions: dict = field(default_factory=dict)  # top-level name -> qualname
    all_entries: list = field(default_factory=list)  # (name, node)
    exports: dict = field(default_factory=dict)  # _EXPORTS name -> (mod, attr)
    star_imports: list = field(default_factory=list)  # absolute dotted modules
    worker_entries: tuple = ()
    dispatch_decls: tuple = ()
    noqa: dict = field(default_factory=dict)  # line -> frozenset of codes


@dataclass(frozen=True)
class EntryPoint:
    """A worker entry seed: the function plus where it was declared."""

    qualname: str
    reason: str  # human phrase for --why output
    path: str
    lineno: int


# ---------------------------------------------------------------- parsing
def _absolutize_imports(
    tree: ast.Module, module: Optional[str], *, is_package: bool = False
) -> tuple:
    """(alias -> absolute dotted origin, [star-imported modules]).

    Relative imports are resolved against *module*'s package so that
    ``from ..metrics import Counters`` inside ``repro.exec.backend``
    maps ``Counters`` to ``repro.metrics.Counters``.  For a package
    ``__init__`` the level-1 base is the package itself, not its parent.
    """
    table: dict[str, str] = {}
    stars: list[str] = []
    if not module:
        pkg_parts = []
    elif is_package:
        pkg_parts = module.split(".")
    else:
        pkg_parts = module.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    table[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    stars.append(base)
                else:
                    table[alias.asname or alias.name] = f"{base}.{alias.name}"
    return table, stars


def _literal_str_tuple(node: ast.AST) -> Optional[tuple]:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append(elt.value)
    return tuple(out)


def _module_level_decls(mod: ModuleNode) -> None:
    """Collect __all__, _EXPORTS, entry/dispatch declarations, bindings."""
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id == "__all__":
                for elt in getattr(stmt.value, "elts", []):
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        mod.all_entries.append((elt.value, elt))
            elif target.id == "_EXPORTS" and isinstance(stmt.value, ast.Dict):
                for key, value in zip(stmt.value.keys, stmt.value.values):
                    pair = _literal_str_tuple(value)
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and pair is not None
                        and len(pair) == 2
                    ):
                        mod.exports[key.value] = pair
            elif target.id == WORKER_ENTRY_DECL:
                mod.worker_entries = _literal_str_tuple(stmt.value) or ()
            elif target.id == DISPATCH_DECL:
                mod.dispatch_decls = _literal_str_tuple(stmt.value) or ()


class _Collector(ast.NodeVisitor):
    """First pass over one module: classes, functions, lambdas, qualnames."""

    def __init__(self, graph: "ProjectGraph", mod: ModuleNode):
        self.graph = graph
        self.mod = mod
        self._cls_stack: list[ClassNode] = []
        self._fn_stack: list[FunctionNode] = []

    def _qualname(self, name: str) -> str:
        if self._fn_stack:
            return f"{self._fn_stack[-1].qualname}.{name}"
        if self._cls_stack:
            return f"{self._cls_stack[-1].qualname}.{name}"
        return f"{self.mod.name}.{name}"

    def _register(self, node, name: str) -> FunctionNode:
        fn = FunctionNode(
            qualname=self._qualname(name),
            module=self.mod.name,
            name=name,
            lineno=node.lineno,
            node=node,
            cls=self._cls_stack[-1].qualname if self._cls_stack else None,
            parent=self._fn_stack[-1].qualname if self._fn_stack else None,
            params=tuple(
                a.arg
                for a in (
                    node.args.posonlyargs + node.args.args + node.args.kwonlyargs
                )
            ),
        )
        self.graph.functions[fn.qualname] = fn
        node._graph_qualname = fn.qualname  # type: ignore[attr-defined]
        return fn

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualname(node.name)
        cls = ClassNode(qualname=qualname, module=self.mod.name, name=node.name)
        bases = []
        for base in node.bases:
            dotted = _dotted_or_local(base, self.mod)
            if dotted:
                bases.append(dotted)
        cls.bases = tuple(bases)
        self.graph.classes[qualname] = cls
        if not self._cls_stack and not self._fn_stack:
            self.mod.classes[node.name] = cls
        self._cls_stack.append(cls)
        self.generic_visit(node)
        self._cls_stack.pop()

    def _visit_function(self, node, name: str) -> None:
        fn = self._register(node, name)
        if self._cls_stack and not self._fn_stack:
            self._cls_stack[-1].methods[name] = fn.qualname
        elif not self._fn_stack:
            self.mod.functions[name] = fn.qualname
        self._fn_stack.append(fn)
        self.generic_visit(node)
        self._fn_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node, f"<lambda:{node.lineno}>")


def _resolve_dotted(node: ast.AST, mod: ModuleNode) -> Optional[str]:
    """Dotted origin of a Name/Attribute chain through the import table."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.insert(0, node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = mod.imports.get(node.id, node.id)
    parts.insert(0, origin)
    return ".".join(parts)


def _dotted_or_local(node: ast.AST, mod: ModuleNode) -> Optional[str]:
    """Like :func:`_resolve_dotted`, but a bare name bound at the top
    level of *mod* itself is qualified with the module (``Base`` inside
    ``pkg.d`` -> ``pkg.d.Base``), so same-module classes resolve."""
    if isinstance(node, ast.Name):
        return _lookup_name(node.id, mod)
    return _resolve_dotted(node, mod)


# ------------------------------------------------------------------- graph
class ProjectGraph:
    """The parsed project: modules, symbols, edges, and entry points."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleNode] = {}
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassNode] = {}
        self.entry_points: list[EntryPoint] = []
        #: dotted symbols referenced per module: module -> set of dotted
        self.references: dict[str, set] = {}
        self._dispatch_specs = {"callables": set(), "methods": {}}
        self._subclass_cache: dict[str, set] = {}

    # -- symbol resolution -------------------------------------------------
    def resolve_symbol(self, dotted: Optional[str], _depth: int = 0) -> Optional[str]:
        """Canonical qualname for *dotted*, following package re-exports.

        ``repro.exec.SerialBackend`` resolves through the ``repro.exec``
        package's own import table to ``repro.exec.backend.SerialBackend``.
        """
        if dotted is None or _depth > 4:
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        head, _, tail = dotted.rpartition(".")
        if not head:
            return None
        mod = self.modules.get(head)
        if mod is not None:
            if tail in mod.functions:
                return mod.functions[tail]
            if tail in mod.classes:
                return mod.classes[tail].qualname
            if tail in mod.imports:
                return self.resolve_symbol(mod.imports[tail], _depth + 1)
        # ``pkg.mod.Class.method`` — resolve the class, then the method.
        cls = self.resolve_symbol(head, _depth + 1)
        if cls in self.classes:
            return self.find_method(cls, tail)
        return None

    def find_method(self, cls_qualname: str, name: str) -> Optional[str]:
        """Locate *name* on a class or (project-known) ancestors."""
        seen = set()
        queue = [cls_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            queue.extend(self.resolve_symbol(b) or b for b in cls.bases)
        return None

    def subclasses_of(self, cls_qualname: str) -> set:
        """The project-known subclass closure of a class (inclusive)."""
        cached = self._subclass_cache.get(cls_qualname)
        if cached is not None:
            return cached
        out = {cls_qualname}
        changed = True
        while changed:
            changed = False
            for cls in self.classes.values():
                if cls.qualname in out:
                    continue
                resolved = {self.resolve_symbol(b) or b for b in cls.bases}
                if resolved & out:
                    out.add(cls.qualname)
                    changed = True
        self._subclass_cache[cls_qualname] = out
        return out

    def module_of(self, qualname: str) -> Optional[ModuleNode]:
        """The :class:`ModuleNode` a function qualname was defined in."""
        fn = self.functions.get(qualname)
        if fn is not None:
            return self.modules.get(fn.module)
        return None

    # -- reachability ------------------------------------------------------
    def reachable_from_entries(self) -> dict:
        """BFS over all entry points at once.

        Returns ``qualname -> (entry_point, parent_qualname, via_edge)``
        with deterministic tie-breaking (entry points and edges visited
        in sorted/insertion order), so every reachable function has one
        stable witness chain for ``--why``.
        """
        parents: dict[str, tuple] = {}
        queue: list[str] = []
        for entry in sorted(
            self.entry_points, key=lambda e: (e.qualname, e.path, e.lineno)
        ):
            if entry.qualname in parents:
                continue
            parents[entry.qualname] = (entry, None, None)
            queue.append(entry.qualname)
        while queue:
            current = queue.pop(0)
            fn = self.functions.get(current)
            if fn is None:
                continue
            entry = parents[current][0]
            for edge in fn.edges:
                if edge.target not in parents:
                    parents[edge.target] = (entry, current, edge)
                    queue.append(edge.target)
        return parents

    def chain(self, parents: dict, qualname: str) -> list:
        """Witness chain entry → … → *qualname* as (qualname, edge) pairs."""
        steps: list[tuple] = []
        current = qualname
        while current is not None:
            entry, parent, edge = parents[current]
            steps.append((current, edge))
            current = parent
        steps.reverse()
        return steps

    # -- serialization -----------------------------------------------------
    def to_json(self) -> dict:
        """JSON document for ``--graph-dump`` (stable ordering)."""
        return {
            "version": 1,
            "modules": {
                name: {
                    "path": mod.path,
                    "worker_entry_points": list(mod.worker_entries),
                    "dispatch_points": list(mod.dispatch_decls),
                }
                for name, mod in sorted(self.modules.items())
            },
            "functions": {
                qualname: {
                    "module": fn.module,
                    "line": fn.lineno,
                    "edges": [
                        {"target": e.target, "kind": e.kind, "line": e.lineno}
                        for e in fn.edges
                    ],
                }
                for qualname, fn in sorted(self.functions.items())
            },
            "entry_points": [
                {
                    "function": e.qualname,
                    "reason": e.reason,
                    "path": e.path,
                    "line": e.lineno,
                }
                for e in sorted(
                    self.entry_points, key=lambda e: (e.qualname, e.path, e.lineno)
                )
            ],
        }


# ------------------------------------------------------------- edge builder
class _FunctionScan:
    """Second pass: edges, references, and dispatch-site entry points."""

    def __init__(self, graph: ProjectGraph, mod: ModuleNode):
        self.graph = graph
        self.mod = mod
        self.refs = graph.references.setdefault(mod.name, set())
        #: dispatch specs: (decl_module, spec) for every declaration
        self.dispatch = graph._dispatch_specs

    # -- local context -----------------------------------------------------
    def scan_module(self) -> None:
        for fn in sorted(
            (f for f in self.graph.functions.values() if f.module == self.mod.name),
            key=lambda f: (f.lineno, f.qualname),
        ):
            self._scan_function(fn)
        # Module-level statements (outside any def) also reference symbols
        # and may call dispatch points.
        for node in self._own_nodes(self.mod.tree):
            self._record_references(node, None, {})
            if isinstance(node, ast.Call):
                self._match_dispatch(node, None, {})

    @staticmethod
    def _own_nodes(root) -> Iterable[ast.AST]:
        """Walk *root* without descending into nested function bodies."""
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, _FUNC_NODES):
                stack.extend(ast.iter_child_nodes(node))

    def _local_types(self, fn: FunctionNode) -> dict:
        """Local var -> class qualname, from ``x = ClassName(...)`` sites."""
        types: dict[str, str] = {}
        for node in self._own_nodes(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                dotted = _dotted_or_local(node.value.func, self.mod)
                resolved = self.graph.resolve_symbol(dotted)
                if resolved in self.graph.classes:
                    types[node.targets[0].id] = resolved
        # Annotated parameters: ``def f(backend: ExecutorBackend)``.
        args = getattr(fn.node, "args", None)
        if args is not None:
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                resolved = _annotation_class(arg.annotation, self.mod, self.graph)
                if resolved is not None:
                    types[arg.arg] = resolved
        return types

    def _scan_function(self, fn: FunctionNode) -> None:
        local_types = self._local_types(fn)
        for node in self._own_nodes(fn.node):
            if isinstance(node, _FUNC_NODES):
                fn.add_edge(
                    node._graph_qualname, "closure", node.lineno  # type: ignore[attr-defined]
                )
                continue
            if isinstance(node, ast.Call):
                self._scan_call(node, fn, local_types)
            self._record_references(node, fn, local_types)

    # -- resolution helpers ------------------------------------------------
    def _resolve_callable(self, node: ast.AST, fn: Optional[FunctionNode], local_types: dict) -> Optional[str]:
        """Qualname of the function/class a callee expression denotes."""
        if isinstance(node, ast.Name):
            # Nested function in an enclosing scope chain?
            scope = fn
            while scope is not None:
                nested = self.graph.functions.get(f"{scope.qualname}.{node.id}")
                if nested is not None:
                    return nested.qualname
                scope = self.graph.functions.get(scope.parent) if scope.parent else None
            # Method of the enclosing class referenced bare (rare) — skip.
            return self.graph.resolve_symbol(_lookup_name(node.id, self.mod))
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and fn is not None and fn.cls:
                    # Method via self/cls, or a typed instance attribute.
                    cls = self.graph.classes.get(fn.cls)
                    method = self.graph.find_method(fn.cls, node.attr)
                    if method is not None:
                        return method
                    if cls is not None and node.attr in cls.attr_types:
                        return None  # typed attr, not itself callable here
                    return None
                if base.id in local_types:
                    return self.graph.find_method(local_types[base.id], node.attr)
                dotted = _resolve_dotted(node, self.mod)
                return self.graph.resolve_symbol(dotted)
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and fn is not None
                and fn.cls
            ):
                # ``self.executor.run_tasks`` — typed instance attribute.
                cls = self.graph.classes.get(fn.cls)
                if cls is not None and base.attr in cls.attr_types:
                    return self.graph.find_method(cls.attr_types[base.attr], node.attr)
        return None

    def _scan_call(self, node: ast.Call, fn: FunctionNode, local_types: dict) -> None:
        resolved = self._resolve_callable(node.func, fn, local_types)
        if resolved is not None:
            if resolved in self.graph.classes:
                init = self.graph.find_method(resolved, "__init__")
                if init is not None:
                    fn.add_edge(init, "call", node.lineno)
            else:
                fn.add_edge(resolved, "call", node.lineno)
        # functools.partial(fn, ...): the partial's target is as good as
        # called — record a call edge (the ref pass would only add "ref").
        dotted = _resolve_dotted(node.func, self.mod)
        if dotted in ("functools.partial", "partial") and node.args:
            target = self._resolve_callable(node.args[0], fn, local_types)
            if target is not None and target in self.graph.functions:
                fn.add_edge(target, "call", node.lineno)
        self._match_dispatch(node, fn, local_types)

    def _record_references(self, node: ast.AST, fn: Optional[FunctionNode], local_types: dict) -> None:
        """Cross-module reference set (API002) + ref edges to functions."""
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            dotted = _lookup_name(node.id, self.mod)
            if dotted is not None:
                self.refs.add(dotted)
                resolved = self.graph.resolve_symbol(dotted)
                if resolved is not None:
                    self.refs.add(resolved)
                if fn is not None and resolved in self.graph.functions:
                    fn.add_edge(resolved, "ref", node.lineno)
            # A bare reference to a function defined in an enclosing
            # scope (callback passed by name).
            if fn is not None:
                scope: Optional[FunctionNode] = fn
                while scope is not None:
                    nested = self.graph.functions.get(f"{scope.qualname}.{node.id}")
                    if nested is not None:
                        fn.add_edge(nested.qualname, "ref", node.lineno)
                        break
                    scope = (
                        self.graph.functions.get(scope.parent)
                        if scope.parent
                        else None
                    )
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            dotted = _resolve_dotted(node, self.mod)
            if dotted is not None:
                self.refs.add(dotted)
                resolved = self.graph.resolve_symbol(dotted)
                if resolved is not None:
                    self.refs.add(resolved)
                    if fn is not None and resolved in self.graph.functions:
                        fn.add_edge(resolved, "ref", node.lineno)
            if (
                fn is not None
                and fn.cls
                and isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")
            ):
                method = self.graph.find_method(fn.cls, node.attr)
                if method is not None:
                    fn.add_edge(method, "ref", node.lineno)

    # -- dispatch sites ----------------------------------------------------
    def _match_dispatch(self, node: ast.Call, fn: Optional[FunctionNode], local_types: dict) -> Optional[str]:
        spec = self._dispatch_spec_for(node, fn, local_types)
        if spec is None:
            return None
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for target in self._function_refs(arg, fn, local_types):
                self._seed(target, spec, node)
        return spec

    def _dispatch_spec_for(self, node: ast.Call, fn, local_types: dict) -> Optional[str]:
        specs = self.dispatch
        if not specs:
            return None
        func = node.func
        if isinstance(func, ast.Attribute):
            by_attr = specs["methods"].get(func.attr)
            if not by_attr:
                return None
            receiver_cls: Optional[str] = None
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and fn is not None and fn.cls:
                    receiver_cls = fn.cls
                elif base.id in local_types:
                    receiver_cls = local_types[base.id]
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and fn is not None
                and fn.cls
            ):
                cls = self.graph.classes.get(fn.cls)
                if cls is not None:
                    receiver_cls = cls.attr_types.get(base.attr)
            if receiver_cls is None:
                # Unknown receiver: conservative name-only match.
                return f"{sorted(by_attr)[0]}.{func.attr}"
            for cls_qualname in sorted(by_attr):
                if receiver_cls in self.graph.subclasses_of(cls_qualname):
                    return f"{cls_qualname}.{func.attr}"
            return None
        dotted = _dotted_or_local(func, self.mod)
        resolved = self.graph.resolve_symbol(dotted)
        if resolved in specs["callables"]:
            return resolved
        return None

    def _function_refs(self, expr: ast.AST, fn, local_types: dict) -> list:
        """Function qualnames referenced anywhere inside *expr*.

        Covers lambdas, named references, ``self._method``, callee
        functions of calls inside the expression (closure factories in
        list comprehensions), and — one hop — local variables assigned
        from such expressions in the enclosing function.
        """
        out: list[str] = []

        def visit(node: ast.AST, hop: int) -> None:
            for sub in ast.walk(node):
                if isinstance(sub, _FUNC_NODES):
                    qual = getattr(sub, "_graph_qualname", None)
                    if qual is not None and qual not in out:
                        out.append(qual)
                elif isinstance(sub, (ast.Name, ast.Attribute)) and isinstance(
                    getattr(sub, "ctx", ast.Load()), ast.Load
                ):
                    resolved = self._resolve_callable(sub, fn, local_types)
                    if resolved in self.graph.functions and resolved not in out:
                        out.append(resolved)
                    elif resolved in self.graph.classes:
                        # A shipped class: seed every method (conservative).
                        cls = self.graph.classes[resolved]
                        for method in sorted(cls.methods.values()):
                            if method not in out:
                                out.append(method)
                    elif (
                        isinstance(sub, ast.Name)
                        and hop == 0
                        and fn is not None
                    ):
                        # One-hop local flow: fns = [...]; run_tasks(fns).
                        for assign in self._own_nodes(fn.node):
                            if (
                                isinstance(assign, ast.Assign)
                                and any(
                                    isinstance(t, ast.Name) and t.id == sub.id
                                    for t in assign.targets
                                )
                            ):
                                visit(assign.value, hop + 1)

        visit(expr, 0)
        return out

    def _seed(self, qualname: str, spec: str, node: ast.Call) -> None:
        entry = EntryPoint(
            qualname=qualname,
            reason=f"shipped via dispatch point {spec}",
            path=self.mod.path,
            lineno=node.lineno,
        )
        if entry not in self.graph.entry_points:
            self.graph.entry_points.append(entry)


def _lookup_name(name: str, mod: ModuleNode) -> Optional[str]:
    """Absolute dotted origin of a bare name at module scope."""
    if name in mod.imports:
        return mod.imports[name]
    if name in mod.bindings or name in mod.functions or name in mod.classes:
        return f"{mod.name}.{name}"
    return None


def _annotation_class(ann: Optional[ast.AST], mod: ModuleNode, graph: ProjectGraph) -> Optional[str]:
    """Project class qualname an annotation denotes, unwrapping
    ``Optional[X]`` / ``X | None`` / quoted forward references."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        text = ann.value
        for piece in text.replace("Optional[", "").replace("]", "").split("|"):
            resolved = graph.resolve_symbol(_lookup_name(piece.strip(), mod))
            if resolved in graph.classes:
                return resolved
        return None
    if isinstance(ann, ast.Subscript):
        # Optional[X] → X; other generics: try the subscripted value too.
        inner = _annotation_class(ann.slice, mod, graph)
        return inner
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return _annotation_class(ann.left, mod, graph) or _annotation_class(
            ann.right, mod, graph
        )
    resolved = graph.resolve_symbol(_resolve_dotted(ann, mod))
    return resolved if resolved in graph.classes else None


# ---------------------------------------------------------------- assembly
def _collect_attr_types(graph: ProjectGraph, mod: ModuleNode) -> None:
    """Infer ``self.X`` attribute classes from __init__-style assignments."""
    for cls in mod.classes.values():
        for method_qual in cls.methods.values():
            fn = graph.functions.get(method_qual)
            if fn is None:
                continue
            ann_types: dict[str, str] = {}
            args = getattr(fn.node, "args", None)
            if args is not None:
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    resolved = _annotation_class(arg.annotation, mod, graph)
                    if resolved is not None:
                        ann_types[arg.arg] = resolved
            for node in _FunctionScan._own_nodes(fn.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and isinstance(node.targets[0].value, ast.Name)
                    and node.targets[0].value.id == "self"
                ):
                    attr = node.targets[0].attr
                    value = node.value
                    if isinstance(value, ast.Call):
                        resolved = graph.resolve_symbol(
                            _dotted_or_local(value.func, mod)
                        )
                        if resolved in graph.classes:
                            cls.attr_types.setdefault(attr, resolved)
                    elif isinstance(value, ast.Name) and value.id in ann_types:
                        cls.attr_types.setdefault(attr, ann_types[value.id])


def _declared_entries(graph: ProjectGraph) -> None:
    """Seed entry points from ``_WORKER_ENTRY_POINTS`` declarations."""
    for mod in sorted(graph.modules.values(), key=lambda m: m.name):
        for name in mod.worker_entries:
            if "." in name:
                cls_name, _, method = name.partition(".")
                cls = mod.classes.get(cls_name)
                qualname = cls.methods.get(method) if cls else None
            else:
                qualname = mod.functions.get(name)
            if qualname is None:
                continue
            fn = graph.functions[qualname]
            graph.entry_points.append(
                EntryPoint(
                    qualname=qualname,
                    reason=f"declared in {mod.name}.{WORKER_ENTRY_DECL}",
                    path=mod.path,
                    lineno=fn.lineno,
                )
            )


def build_graph(paths: Iterable[Path]) -> ProjectGraph:
    """Parse every ``.py`` under *paths* and build the project graph."""
    graph = ProjectGraph()
    files = list(iter_python_files(Path(p) for p in paths))
    for path in files:
        try:
            text = path.read_text()
            tree = ast.parse(text)
        except (OSError, SyntaxError):
            continue
        module, _root = _module_name(path)
        if module is None:
            module = path.stem
        lines = text.splitlines()
        mod = ModuleNode(
            name=module, path=str(path), tree=tree, lines=lines, noqa=_noqa_map(lines)
        )
        mod.imports, mod.star_imports = _absolutize_imports(
            tree, module, is_package=path.name == "__init__.py"
        )
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                mod.bindings.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            mod.bindings.add(name_node.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    mod.bindings.add(stmt.target.id)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    mod.bindings.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name != "*":
                        mod.bindings.add(alias.asname or alias.name)
        _module_level_decls(mod)
        graph.modules[module] = mod
    # Pass 1: symbols.
    for mod in sorted(graph.modules.values(), key=lambda m: m.name):
        _Collector(graph, mod).visit(mod.tree)
    # Instance-attribute types need the full class table first.
    for mod in sorted(graph.modules.values(), key=lambda m: m.name):
        _collect_attr_types(graph, mod)
    # Dispatch spec registry.
    callables: set = set()
    methods: dict[str, set] = {}
    for mod in graph.modules.values():
        for spec in mod.dispatch_decls:
            if "." in spec:
                cls_name, _, method = spec.partition(".")
                cls = mod.classes.get(cls_name)
                if cls is not None:
                    methods.setdefault(method, set()).add(cls.qualname)
            else:
                if spec in mod.classes:
                    callables.add(mod.classes[spec].qualname)
                elif spec in mod.functions:
                    callables.add(mod.functions[spec])
    graph._dispatch_specs = {"callables": callables, "methods": methods}
    # Pass 2: edges, references, dispatch-site seeds.
    for mod in sorted(graph.modules.values(), key=lambda m: m.name):
        _FunctionScan(graph, mod).scan_module()
    _declared_entries(graph)
    return graph
