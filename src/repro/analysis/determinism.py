"""Determinism rules: DET001 (id-as-key), DET002 (RNG), DET003 (set order).

These encode the bit-identical-results contract every backend, engine,
and data plane in this repo signs up to (see DESIGN.md §9):

* **DET001** — ``id()`` must never be a dict/set key or grouping token.
  CPython reuses addresses after garbage collection, so an id-keyed
  table can silently conflate two distinct objects; the ``Counters``
  redirect-sink bug fixed in PR 4 (and the ``skew.py`` phase-grouping
  twin of it) was exactly this class.
* **DET002** — no module-level RNG.  ``random.random()`` /
  ``np.random.rand()`` draw from hidden process-global state and an
  unseeded ``default_rng()`` / ``Random()`` seeds from the OS; every
  random draw must flow from an explicitly seeded generator so the same
  seed yields the same bytes on every backend.
* **DET003** — iterating a ``set`` (or set expression) in order-sensitive
  positions must go through ``sorted()``.  Set iteration order depends
  on insertion history and, for strings, on per-process hash
  randomisation — anything it feeds (pair emission, merges, exporters)
  would differ run to run.  ``dict`` iteration is *not* flagged:
  CPython dicts iterate in insertion order, which is deterministic
  whenever insertions are (the property the merge machinery relies on).
"""

from __future__ import annotations

import ast

from typing import Optional

from .core import FileContext, Rule, is_setish, register

__all__ = ["unseeded_rng_message"]

#: constructors that are fine *when* given a seed argument
_SEEDABLE = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState", "random.Random"}
)
#: numpy.random names that never touch the global RNG state
_BENIGN = frozenset({"numpy.random.SeedSequence", "numpy.random.Generator"})


def unseeded_rng_message(dotted: str, *, has_args: bool) -> Optional[str]:
    """Why calling *dotted* violates the seeded-RNG contract (None = fine).

    Shared between the per-file DET002 rule and the whole-program WRK001
    worker-purity pass, so both flag exactly the same primitive set.
    """
    if dotted in _SEEDABLE:
        if not has_args:
            return (
                f"{dotted}() without a seed draws entropy from the OS; "
                "pass a seed derived from DEFAULT_SEED"
            )
        return None
    if dotted in _BENIGN:
        return None
    if dotted == "random.SystemRandom" or dotted.startswith("random.SystemRandom."):
        return "SystemRandom is nondeterministic by design"
    for prefix, label in (("numpy.random.", "numpy"), ("random.", "stdlib")):
        if dotted.startswith(prefix) and "." not in dotted[len(prefix):]:
            return (
                f"{dotted}() uses the {label} module-level RNG (hidden "
                "process-global state); use a seeded "
                "np.random.default_rng(...) generator instead"
            )
    return None


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        and len(node.args) == 1
    )


@register
class IdAsKey(Rule):
    """DET001: ban ``id()`` as a dict/set key or grouping token."""

    code = "DET001"
    name = "id-as-key"
    description = (
        "id() used as a dict/set key or grouping token; addresses are "
        "recycled after GC, conflating distinct objects"
    )

    _MSG = (
        "id() used as a {what}: CPython reuses addresses after GC, so two "
        "distinct objects can collide — key on a stable identity "
        "(explicit token, tree path, tuple of attributes) instead"
    )

    def visit_Subscript(self, node: ast.Subscript, ctx: FileContext) -> None:
        """Flag ``table[id(x)]`` (and tuple keys containing id())."""
        keys = node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
        for key in keys:
            if _is_id_call(key):
                ctx.report(self, node, self._MSG.format(what="subscript key"))

    def visit_Dict(self, node: ast.Dict, ctx: FileContext) -> None:
        """Flag ``{id(x): ...}`` dict-literal keys."""
        for key in node.keys:
            if key is not None and _is_id_call(key):
                ctx.report(self, node, self._MSG.format(what="dict-literal key"))

    def visit_Set(self, node: ast.Set, ctx: FileContext) -> None:
        """Flag ``{id(x), ...}`` set-literal elements."""
        for elt in node.elts:
            if _is_id_call(elt):
                ctx.report(self, node, self._MSG.format(what="set-literal element"))

    def visit_Compare(self, node: ast.Compare, ctx: FileContext) -> None:
        """Flag ``id(x) in seen`` membership probes."""
        if _is_id_call(node.left) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            ctx.report(self, node, self._MSG.format(what="membership probe"))

    _KEYED_METHODS = ("setdefault", "get", "pop", "add", "discard", "remove")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        """Flag keyed-method calls (``setdefault(id(x))``) and ``key=id``."""
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._KEYED_METHODS
            and node.args
            and _is_id_call(node.args[0])
        ):
            ctx.report(
                self, node, self._MSG.format(what=f"{node.func.attr}() key")
            )
        for kw in node.keywords:
            if (
                kw.arg == "key"
                and isinstance(kw.value, ast.Name)
                and kw.value.id == "id"
            ):
                ctx.report(self, node, self._MSG.format(what="key= function"))


@register
class UnseededRng(Rule):
    """DET002: ban module-level and unseeded RNG draws."""

    code = "DET002"
    name = "unseeded-rng"
    description = (
        "module-level or unseeded RNG; randomness must flow from an "
        "explicitly seeded generator (np.random.default_rng(seed))"
    )

    #: constructors that are fine *when* given a seed argument
    _SEEDABLE = frozenset(
        {"numpy.random.default_rng", "numpy.random.RandomState", "random.Random"}
    )
    #: numpy.random names that never touch the global RNG state
    _BENIGN = frozenset({"numpy.random.SeedSequence", "numpy.random.Generator"})

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        """Flag calls into ``random.*`` / ``numpy.random.*`` global state."""
        dotted = ctx.resolve_imported(node.func)
        if dotted is None:
            return
        if dotted in self._SEEDABLE:
            if not node.args and not node.keywords:
                ctx.report(
                    self,
                    node,
                    f"{dotted}() without a seed draws entropy from the OS; "
                    "pass a seed derived from DEFAULT_SEED",
                )
            return
        if dotted in self._BENIGN:
            return
        if dotted == "random.SystemRandom" or dotted.startswith("random.SystemRandom."):
            ctx.report(self, node, "SystemRandom is nondeterministic by design")
            return
        for prefix, label in (("numpy.random.", "numpy"), ("random.", "stdlib")):
            if dotted.startswith(prefix) and "." not in dotted[len(prefix):]:
                ctx.report(
                    self,
                    node,
                    f"{dotted}() uses the {label} module-level RNG (hidden "
                    "process-global state); use a seeded "
                    "np.random.default_rng(...) generator instead",
                )
                return


@register
class UnorderedIteration(Rule):
    """DET003: ban set iteration feeding ordered output sans sorted()."""

    code = "DET003"
    name = "unordered-set-iteration"
    description = (
        "iteration over a set feeding ordered output without sorted(); "
        "set order varies with insertion history and hash randomisation"
    )

    _MSG = (
        "iterating a set {where} feeds order-dependent output; wrap the "
        "iterable in sorted(...) (set iteration order varies across runs)"
    )
    #: calls whose result cannot observe iteration order
    _ORDER_FREE = frozenset(
        {"sorted", "sum", "min", "max", "any", "all", "len", "set", "frozenset"}
    )

    def _order_free_parent(self, node: ast.AST, ctx: FileContext) -> bool:
        parent = ctx.parent_of(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in self._ORDER_FREE
            and node in parent.args
        )

    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        """Flag ``for x in <set expression>:``."""
        if is_setish(node.iter, ctx):
            ctx.report(self, node.iter, self._MSG.format(where="in a for loop"))

    def _check_comp(self, node, ctx: FileContext, where: str) -> None:
        if self._order_free_parent(node, ctx):
            return
        for gen in node.generators:
            if is_setish(gen.iter, ctx):
                ctx.report(self, gen.iter, self._MSG.format(where=where))

    def visit_ListComp(self, node: ast.ListComp, ctx: FileContext) -> None:
        """Flag set-fed list comprehensions (ordered output)."""
        self._check_comp(node, ctx, "in a list comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp, ctx: FileContext) -> None:
        """Flag set-fed generator expressions outside order-free reducers."""
        self._check_comp(node, ctx, "in a generator expression")

    def visit_DictComp(self, node: ast.DictComp, ctx: FileContext) -> None:
        """Flag set-fed dict comprehensions (insertion order leaks)."""
        self._check_comp(node, ctx, "in a dict comprehension")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        """Flag ``list``/``tuple``/``enumerate``/``str.join`` over sets."""
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and len(node.args) >= 1
            and is_setish(node.args[0], ctx)
        ):
            ctx.report(self, node, self._MSG.format(where=f"via {node.func.id}()"))
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and len(node.args) == 1
            and is_setish(node.args[0], ctx)
        ):
            ctx.report(self, node, self._MSG.format(where="via str.join()"))
