"""Static analysis of the repo's own invariants (``repro-lint``).

The paper reproduction rests on contracts no type checker sees: results
must be bit-identical across execution backends, every charged counter
key must belong to one central ledger schema, and real wall-clock must
never reach a costed path.  This package lints those contracts at the
AST level — ``python -m repro.analysis src/repro`` is a CI gate, so the
bug classes that previously needed golden-test archaeology (the ``id()``
-as-key redirect bug of PR 4, typo'd counter keys) fail at review time.

Rule pack
---------

====== ======================= ==============================================
code   name                    contract
====== ======================= ==============================================
DET001 id-as-key               no ``id()`` as dict/set key or grouping token
DET002 unseeded-rng            no module-level / unseeded RNG
DET003 unordered-set-iteration no set iteration feeding order without sorted()
CLK001 wall-clock-discipline   real clock only in exec.task / trace
CTR001 counter-ledger          counter keys literal + in COUNTER_SCHEMA
API001 export-integrity        __all__ / lazy _EXPORTS resolve to real attrs
SHM001 shared-memory-confinement shared_memory only in repro.exec.shm
====== ======================= ==============================================

Suppress a deliberate exception with ``# repro: noqa[RULE]`` on the
offending line; accept legacy debt via a committed JSON baseline
(``lint-baseline.json`` — empty in this repo by policy).
"""

from .baseline import Baseline, BaselineResult
from .cli import main
from .core import (
    RULES,
    FileContext,
    Finding,
    LintSession,
    Rule,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    register,
)
from .reporting import render_json, render_text

# Importing the rule modules registers the rule pack (per-file rules
# first, then the whole-program pack, which depends on the graph engine).
from . import api, clock, counters, determinism, shm  # noqa: F401  isort: skip
from . import interproc  # noqa: F401  isort: skip
from .graph import ProjectGraph, build_graph
from .interproc import lint_project

__all__ = [
    "Baseline",
    "BaselineResult",
    "FileContext",
    "Finding",
    "LintSession",
    "ProjectGraph",
    "RULES",
    "Rule",
    "build_graph",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "main",
    "register",
    "render_json",
    "render_text",
]
