"""CTR001: every counter key charged anywhere must be a registered literal.

The counter ledger is the repo's unit of account — the cost model, the
trace attribution, the skew reports, and every golden test key on exact
counter names.  A typo'd key (``"geom.pip_test"`` for ``"geom.pip_tests"``)
doesn't fail anything at runtime: it silently opens a *second* ledger
entry that the cost model prices at zero, and the run's numbers drift
without a single error.  This rule makes that a lint failure:

* ``<ledger>.add(key, ...)`` — *key* must be a string literal present in
  :data:`repro.metrics.COUNTER_SCHEMA`.  Non-literal keys are flagged too
  (the ledger's own ``merge`` plumbing, which forwards already-validated
  keys, carries an explicit ``# repro: noqa[CTR001]``).
* ``<ledger>["key"]`` and ``<ledger>.get("key", ...)`` — literal-key reads
  must also be registered; an unregistered read is the same typo on the
  consuming side (it silently reads 0.0).

A ledger expression is recognised structurally (``*.counters`` attributes,
``Counters(...)`` constructions, ``Counters``-annotated parameters, and
local aliases of those) — see :func:`repro.analysis.core.is_counterish`.
"""

from __future__ import annotations

import ast

from .core import FileContext, Rule, is_counterish, register

# CounterLedger is reached through the RULES registry, not by name —
# this module deliberately exports nothing.


@register
class CounterLedger(Rule):
    """CTR001: counter keys must be literals registered in COUNTER_SCHEMA."""

    code = "CTR001"
    name = "counter-ledger"
    description = (
        "counter key not a string literal registered in "
        "repro.metrics.COUNTER_SCHEMA (typo'd keys silently split ledgers)"
    )

    def _schema(self, ctx: FileContext) -> frozenset:
        schema = ctx.session.counter_schema
        if schema is None:
            from ..metrics import COUNTER_SCHEMA

            schema = ctx.session.counter_schema = frozenset(COUNTER_SCHEMA)
        return schema

    def _check_key(self, key: ast.AST, node: ast.AST, ctx: FileContext, op: str) -> None:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            if key.value not in self._schema(ctx):
                ctx.report(
                    self,
                    node,
                    f"counter key {key.value!r} ({op}) is not registered in "
                    "repro.metrics.COUNTER_SCHEMA — register it there or fix "
                    "the typo (unregistered keys silently split the ledger)",
                )
        elif op == "add":
            ctx.report(
                self,
                node,
                "non-literal counter key in .add(): keys must be string "
                "literals so the schema check can see them",
            )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        """Check ``<ledger>.add(key, ...)`` / ``<ledger>.get(key, ...)``."""
        if not isinstance(node.func, ast.Attribute) or not node.args:
            return
        if node.func.attr in ("add", "get") and is_counterish(node.func.value, ctx):
            self._check_key(node.args[0], node, ctx, node.func.attr)

    def visit_Subscript(self, node: ast.Subscript, ctx: FileContext) -> None:
        """Check literal-key ``<ledger>["key"]`` reads and writes."""
        if is_counterish(node.value, ctx):
            self._check_key(node.slice, node, ctx, "subscript")
