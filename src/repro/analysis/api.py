"""API001: export lists must resolve to real attributes.

The top-level package (and any future lazy package) exposes its API
through a PEP 562 ``_EXPORTS`` table — ``name -> (module, attr)`` — plus
a plain ``__all__``.  Nothing checks either at import time: a renamed
function leaves a dangling entry that only explodes when a user first
touches it.  This rule resolves both statically:

* every ``__all__`` entry must be bound at module top level (assignment,
  def/class, import) or be a key of the module's ``_EXPORTS`` table;
* every ``_EXPORTS`` value ``(module, attr)`` whose module lives under
  the linted source tree must actually define *attr* (in its own
  top-level bindings, or transitively via its own ``_EXPORTS``);
* when the module declares ``__all__``, every ``_EXPORTS`` key must
  appear in it — a lazy export missing from ``__all__`` is reachable by
  attribute access but invisible to ``from pkg import *``, ``dir()``
  consumers and the documentation tests, which is always an oversight.

Modules outside the tree (third-party) are skipped; a target module that
does ``from x import *`` or defines ``__getattr__`` is treated as opaque
and accepted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .core import FileContext, Rule, register

# ExportIntegrity is reached through the RULES registry, not by name —
# this module deliberately exports nothing.


@dataclass
class _ModuleSurface:
    """Statically visible top-level surface of one module."""

    bindings: set = field(default_factory=set)
    export_keys: set = field(default_factory=set)
    has_star_import: bool = False
    has_getattr: bool = False

    def defines(self, name: str) -> bool:
        return (
            name in self.bindings
            or name in self.export_keys
            or self.has_star_import
            or self.has_getattr
        )


def _collect_surface(tree: ast.Module) -> _ModuleSurface:
    surface = _ModuleSurface()

    def collect(stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            surface.bindings.add(node.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    surface.bindings.add(stmt.target.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                surface.bindings.add(stmt.name)
                if stmt.name == "__getattr__":
                    surface.has_getattr = True
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    surface.bindings.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        surface.has_star_import = True
                    else:
                        surface.bindings.add(alias.asname or alias.name)
            elif isinstance(stmt, (ast.If, ast.Try)):
                collect(stmt.body)
                collect(getattr(stmt, "orelse", []))
                for handler in getattr(stmt, "handlers", []):
                    collect(handler.body)
                collect(getattr(stmt, "finalbody", []))
            elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                collect(stmt.body)
                collect(getattr(stmt, "orelse", []))

    collect(tree.body)
    surface.export_keys |= set(_exports_table(tree) or {})
    return surface


def _literal_str_list(node: ast.AST) -> Optional[list[tuple[str, ast.AST]]]:
    """Entries of a literal list/tuple of strings, with their nodes."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append((elt.value, elt))
    return out


def _exports_table(tree: ast.Module) -> Optional[dict]:
    """The literal ``_EXPORTS`` dict: name -> ((module, attr), value_node)."""
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "_EXPORTS"
            and isinstance(stmt.value, ast.Dict)
        ):
            table = {}
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                    continue
                pair = _literal_str_list(value)
                if pair is not None and len(pair) == 2:
                    table[key.value] = ((pair[0][0], pair[1][0]), value)
            return table
    return None


@register
class ExportIntegrity(Rule):
    """API001: ``__all__`` and lazy ``_EXPORTS`` must resolve statically."""

    code = "API001"
    name = "export-integrity"
    description = (
        "__all__ / lazy _EXPORTS entry does not resolve to a real module "
        "attribute (dangling exports only explode on first attribute access)"
    )

    def _surface_of(self, path: Path, ctx: FileContext) -> Optional[_ModuleSurface]:
        cache = ctx.session.module_surfaces
        key = str(path)
        if key not in cache:
            try:
                cache[key] = _collect_surface(ast.parse(path.read_text()))
            except (OSError, SyntaxError):
                cache[key] = None
        return cache[key]

    def _target_file(self, dotted: str, ctx: FileContext) -> Optional[Path]:
        """Source file of *dotted* if it lives under the linted tree."""
        if ctx.root is None:
            return None
        base = ctx.root.joinpath(*dotted.split("."))
        for candidate in (base.with_suffix(".py"), base / "__init__.py"):
            if candidate.exists():
                return candidate
        return None

    def check_module(self, tree: ast.Module, ctx: FileContext) -> None:
        """Validate this module's ``__all__`` and ``_EXPORTS`` tables."""
        exports = _exports_table(tree) or {}
        surface = _collect_surface(tree)

        all_names: Optional[set] = None
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "__all__"
            ):
                entries = _literal_str_list(stmt.value)
                if entries is not None:
                    all_names = {name for name, _ in entries}
                for name, node in entries or ():
                    if not surface.defines(name):
                        ctx.report(
                            self,
                            node,
                            f"__all__ entry {name!r} is not bound at module "
                            "top level and has no _EXPORTS entry",
                        )

        if all_names is not None:
            for name, (_, node) in exports.items():
                if name not in all_names:
                    ctx.report(
                        self,
                        node,
                        f"_EXPORTS key {name!r} is missing from __all__ "
                        "(lazy export invisible to star-imports and dir())",
                    )

        for name, ((module, attr), node) in exports.items():
            target = self._target_file(module, ctx)
            if target is None:
                # Module not under the linted tree: either third-party
                # (skip) or a dangling intra-tree reference (flag).
                top = module.split(".")[0]
                if ctx.root is not None and (ctx.root / top).is_dir():
                    ctx.report(
                        self,
                        node,
                        f"_EXPORTS[{name!r}] points at unresolvable module "
                        f"{module!r}",
                    )
                continue
            target_surface = self._surface_of(target, ctx)
            if target_surface is not None and not target_surface.defines(attr):
                ctx.report(
                    self,
                    node,
                    f"_EXPORTS[{name!r}] -> {module}.{attr}: {attr!r} is not "
                    f"defined at the top level of {module}",
                )
