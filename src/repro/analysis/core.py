"""The lint driver: findings, the rule registry, and one AST walk per file.

:mod:`repro.analysis` exists because this repo's empirical claims rest on
*contracts* — bit-identical results across backends, one counter ledger,
no wall-clock in costed paths — that Python will happily let a one-line
change break.  Golden tests catch such breakage after it lands; the rules
here catch it at the source level, before any experiment runs.

Design
------

* A **rule** is a class with a ``code`` (``DET001``), registered via
  :func:`register`.  Rules implement ``visit_<NodeType>`` hooks that the
  driver calls during a single AST walk, and/or a ``check_module`` hook
  that runs once per file with the full tree.
* A **FileContext** carries everything a hook needs: source lines, the
  module's dotted name, an import table (``np`` → ``numpy``), a parent
  map, per-scope variable tags (is this name a ``Counters`` ledger?  a
  ``set``?), and ``report()`` to record findings.
* Suppression is per-line: ``# repro: noqa[DET001]`` silences the named
  rules on that line, ``# repro: noqa`` silences them all.  Suppressions
  are deliberate and reviewable — policy in README §"Invariant linting".

The walk is deterministic: files are linted in sorted path order and
findings are sorted by (path, line, col, rule), so output and baselines
are stable across runs and machines.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "register",
    "FileContext",
    "LintSession",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "is_counterish",
    "is_setish",
]

#: ``# repro: noqa`` / ``# repro: noqa[DET001,CTR001]``
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: the stripped source line — baselines fingerprint on this, not the
    #: line number, so unrelated edits above a finding don't churn them
    snippet: str
    #: whole-program findings only: the witness chain (entry point →
    #: … → primitive) rendered by ``repro-lint --why``; excluded from
    #: the fingerprint so baselines stay chain-independent
    trace: tuple = ()

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha1(
            f"{self.rule}|{self.path}|{self.snippet}".encode()
        ).hexdigest()
        return digest[:16]

    def sort_key(self) -> tuple:
        """Stable output/baseline order: (path, line, col, rule)."""
        return (self.path, self.line, self.col, self.rule)


# ------------------------------------------------------------------ registry
RULES: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule to the global registry by its code."""
    code = getattr(cls, "code", None)
    if not code or code in RULES:
        raise ValueError(f"rule code missing or duplicate: {code!r}")
    RULES[code] = cls
    return cls


class Rule:
    """Base class for lint rules.

    Subclasses set ``code`` / ``name`` / ``description`` and implement any
    of: ``visit_<NodeType>(node, ctx)`` (called during the shared walk) or
    ``check_module(tree, ctx)`` (called once per file after the walk).
    A fresh instance is created per file, so rules may keep per-file state.

    Whole-program rules set ``whole_program = True`` and implement
    ``check_project(graph, pctx)`` instead; they run once per lint run,
    after every file has been parsed into the project call graph (see
    :mod:`repro.analysis.graph` / :mod:`repro.analysis.interproc`).
    """

    code = "XXX000"
    name = "unnamed"
    description = ""
    whole_program = False


# ------------------------------------------------------------------- session
class LintSession:
    """Cross-file state for one lint run: rule selection and parse caches."""

    def __init__(
        self,
        *,
        select: Optional[Sequence[str]] = None,
        ignore: Sequence[str] = (),
        counter_schema: Optional[Iterable[str]] = None,
    ):
        codes = sorted(RULES)
        if select is not None:
            unknown = sorted(set(select) - set(codes))
            if unknown:
                raise ValueError(f"unknown rule codes: {', '.join(unknown)}")
            codes = [c for c in codes if c in set(select)]
        codes = [c for c in codes if c not in set(ignore)]
        self.codes = codes
        #: CTR001's registered-key set; None = read repro.metrics at lint time
        self.counter_schema = (
            frozenset(counter_schema) if counter_schema is not None else None
        )
        #: API001's cache of parsed sibling modules: path -> _ModuleSurface
        self.module_surfaces: dict = {}
        #: the ProjectGraph built by the whole-program phase (None until
        #: lint_paths/lint_project runs with project rules enabled)
        self.graph = None

    def project_codes(self) -> list:
        """The enabled rules that run in the whole-program phase."""
        return [
            c for c in self.codes if getattr(RULES[c], "whole_program", False)
        ]

    def make_rules(self) -> list:
        """Fresh per-file instances of every enabled rule."""
        return [RULES[c]() for c in self.codes]


# ------------------------------------------------------------------- context
def _module_name(path: Path) -> tuple[Optional[str], Optional[Path]]:
    """Dotted module name of *path* and the source root above its package.

    Walks up while ``__init__.py`` markers continue — so for
    ``src/repro/trace/skew.py`` this returns (``repro.trace.skew``,
    ``src``).  Returns (None, None) for scripts outside any package.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    if not (current / "__init__.py").exists():
        return None, None
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        current = current.parent
    return ".".join(parts), current


class FileContext:
    """Everything rule hooks need about the file being linted."""

    def __init__(
        self,
        *,
        path: str,
        text: str,
        tree: ast.Module,
        session: LintSession,
        module: Optional[str] = None,
        root: Optional[Path] = None,
    ):
        self.path = path
        self.lines = text.splitlines()
        self.tree = tree
        self.session = session
        self.module = module
        self.root = root
        self.findings: list[Finding] = []
        self.imports = _import_table(tree)
        # Parent links live on the nodes themselves (we own this tree) —
        # an id()-keyed map would be this package's own DET001 violation.
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                child._lint_parent = parent  # type: ignore[attr-defined]
        self._scopes: list[dict[str, str]] = [{}]
        self._noqa = _noqa_map(self.lines)

    # -- findings ----------------------------------------------------------
    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        """Record a finding for *rule* at *node*'s source location."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if line <= len(self.lines) else ""
        self.findings.append(
            Finding(rule.code, self.path, line, col, message, snippet)
        )

    def suppressed(self, finding: Finding) -> bool:
        """Whether a ``# repro: noqa`` on the finding's line silences it."""
        rules = self._noqa.get(finding.line)
        return rules is not None and (not rules or finding.rule in rules)

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of *node* (None for the module root)."""
        return getattr(node, "_lint_parent", None)

    # -- name resolution ---------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, through the imports.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``numpy.random.rand``; unresolvable chains return None.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.insert(0, node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.imports.get(node.id)
        parts.insert(0, origin if origin is not None else node.id)
        return ".".join(parts)

    def resolve_imported(self, node: ast.AST) -> Optional[str]:
        """Like :meth:`resolve`, but only for chains rooted at an import.

        Rules matching well-known module functions (``time.time``,
        ``numpy.random.rand``) use this so a local variable that merely
        shares a module's name cannot trigger them.
        """
        base = node
        while isinstance(base, ast.Attribute):
            base = base.value
        if isinstance(base, ast.Name) and base.id in self.imports:
            return self.resolve(node)
        return None

    def tag(self, name: str) -> Optional[str]:
        """The innermost scope tag recorded for *name* (see driver)."""
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None


def _noqa_map(lines: Sequence[str]) -> dict[int, frozenset]:
    """line -> suppressed rule codes (empty frozenset = suppress all)."""
    out: dict[int, frozenset] = {}
    for i, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match:
            rules = match.group("rules")
            out[i] = frozenset(
                r.strip() for r in rules.split(",") if r.strip()
            ) if rules else frozenset()
    return out


def _import_table(tree: ast.Module) -> dict[str, str]:
    """Imported-name table: local alias -> fully dotted origin."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    table[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name != "*":
                    table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        elif isinstance(node, ast.ImportFrom) and node.level:
            # Relative import: keep the attribute tail so e.g.
            # ``from ..metrics import Counters`` resolves Counters.
            for alias in node.names:
                if alias.name != "*":
                    prefix = f"{node.module}." if node.module else ""
                    table[alias.asname or alias.name] = f".{prefix}{alias.name}"
    return table


# -------------------------------------------------------------- type tagging
def is_counterish(node: ast.AST, ctx: FileContext) -> bool:
    """Heuristic: does this expression denote a Counters ledger?

    True for any ``*.counters`` attribute, a bare ``counters`` name, a
    name assigned from such an expression in an enclosing scope, a
    ``Counters(...)`` construction, and ledger-returning method calls
    (``snapshot`` / ``diff`` / ``scaled``) on a counterish receiver.
    """
    if isinstance(node, ast.Attribute):
        return node.attr == "counters"
    if isinstance(node, ast.Name):
        return node.id == "counters" or ctx.tag(node.id) == "counters"
    if isinstance(node, ast.Call):
        resolved = ctx.resolve(node.func)
        if resolved is not None and resolved.split(".")[-1] == "Counters":
            return True
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in ("snapshot", "diff", "scaled"):
                return is_counterish(node.func.value, ctx)
            if node.func.attr == "total":
                return is_counterish(node.func.value, ctx) or (
                    (ctx.resolve(node.func.value) or "").split(".")[-1] == "Counters"
                )
    return False


_SET_METHODS = ("union", "intersection", "difference", "symmetric_difference")


def is_setish(node: ast.AST, ctx: FileContext) -> bool:
    """Heuristic: does this expression produce a ``set``/``frozenset``?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in _SET_METHODS:
            return is_setish(node.func.value, ctx)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return is_setish(node.left, ctx) or is_setish(node.right, ctx)
    if isinstance(node, ast.Name):
        return ctx.tag(node.id) == "set"
    return False


def _infer_tag(node: ast.AST, ctx: FileContext) -> Optional[str]:
    if is_setish(node, ctx):
        return "set"
    if is_counterish(node, ctx):
        return "counters"
    return None


# -------------------------------------------------------------------- driver
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _annotation_name(ann: Optional[ast.AST], ctx: "FileContext") -> str:
    """Trailing name of an annotation, unwrapping quoted forward refs."""
    if ann is None:
        return ""
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.split(".")[-1].strip()
    return (ctx.resolve(ann) or "").split(".")[-1]


class _Driver(ast.NodeVisitor):
    """One pass over the tree: dispatch rule hooks, track scope tags."""

    def __init__(self, ctx: FileContext, rules: Sequence[Rule]):
        self.ctx = ctx
        #: per node type, the rules that hook it (computed lazily)
        self._hooks: dict[str, list] = {}
        self._rules = rules

    def _dispatch(self, node: ast.AST) -> None:
        kind = type(node).__name__
        hooks = self._hooks.get(kind)
        if hooks is None:
            hooks = self._hooks[kind] = [
                method
                for rule in self._rules
                if (method := getattr(rule, f"visit_{kind}", None)) is not None
            ]
        for hook in hooks:
            hook(node, self.ctx)

    def visit(self, node: ast.AST) -> None:
        self._dispatch(node)
        if isinstance(node, _SCOPE_NODES):
            scope: dict[str, str] = {}
            if isinstance(node, ast.ClassDef) and node.name == "Counters":
                # Inside the ledger type itself, ``self`` is a ledger.
                scope["self"] = "counters"
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in node.args.args + node.args.kwonlyargs:
                    if _annotation_name(arg.annotation, self.ctx) == "Counters":
                        scope[arg.arg] = "counters"
            self.ctx._scopes.append(scope)
            self.generic_visit(node)
            self.ctx._scopes.pop()
            return
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                tag = _infer_tag(node.value, self.ctx)
                scope = self.ctx._scopes[-1]
                if tag is not None:
                    scope[target.id] = tag
                else:
                    scope.pop(target.id, None)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_name(node.annotation, self.ctx) == "Counters":
                self.ctx._scopes[-1][node.target.id] = "counters"
        self.generic_visit(node)


# --------------------------------------------------------------- entry points
def lint_source(
    text: str,
    path: str = "<string>",
    *,
    session: Optional[LintSession] = None,
    module: Optional[str] = None,
    root: Optional[Path] = None,
) -> list[Finding]:
    """Lint one source string; returns sorted, noqa-filtered findings."""
    session = session or LintSession()
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        line = exc.lineno or 1
        lines = text.splitlines()
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        return [Finding("E999", path, line, exc.offset or 0, f"syntax error: {exc.msg}", snippet)]
    ctx = FileContext(
        path=path, text=text, tree=tree, session=session, module=module, root=root
    )
    rules = session.make_rules()
    _Driver(ctx, rules).visit(tree)
    for rule in rules:
        check = getattr(rule, "check_module", None)
        if check is not None:
            check(tree, ctx)
    findings = [f for f in ctx.findings if not ctx.suppressed(f)]
    return sorted(findings, key=Finding.sort_key)


def lint_file(path: Path, *, session: Optional[LintSession] = None) -> list[Finding]:
    """Lint one file, inferring its dotted module name and source root."""
    module, root = _module_name(path)
    return lint_source(
        path.read_text(),
        str(path),
        session=session,
        module=module,
        root=root,
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen = []
    for path in paths:
        if path.is_dir():
            seen.extend(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            seen.append(path)
    yield from sorted(set(seen))


def lint_paths(
    paths: Iterable[Path],
    *,
    session: Optional[LintSession] = None,
    project: bool = True,
) -> list[Finding]:
    """Lint every ``.py`` file under *paths* (deterministic order).

    Runs the per-file rule pack on each file, then — unless ``project``
    is False — the whole-program phase: one project call graph over all
    the files, powering the interprocedural rules (WRK001/CTR002/DET004/
    API002).  The built graph is left on ``session.graph`` for callers
    (``--graph-dump``, ``--why``).
    """
    session = session or LintSession()
    findings: list[Finding] = []
    files = list(iter_python_files(paths))
    for path in files:
        findings.extend(lint_file(path, session=session))
    if project and session.project_codes():
        from .interproc import lint_project

        findings.extend(lint_project(files, session=session))
    return sorted(findings, key=Finding.sort_key)
