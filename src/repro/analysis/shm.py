"""SHM001: ``multiprocessing.shared_memory`` is confined to the shm plane.

Shared-memory segments are system-global named resources: a segment
created and forgotten anywhere survives the process and leaks into
``/dev/shm``.  The repo therefore funnels every segment's create, attach
and unlink through one module — :mod:`repro.exec.shm` — whose
:class:`~repro.exec.shm.ShmRegistry` owns cleanup on normal exit, task
error, pool teardown and process exit, and whose ``_LIVE_SEGMENTS``
accounting is what the leak tests audit.

Everything else talks to shared memory through that module's
abstractions: the warm pool (:mod:`repro.exec.shm_pool`) holds a
``ShmRegistry``/``AttachCache``/``ResultArena``, and
``GeometryBatch.attach_shared`` takes the registry as a duck-typed
argument.  A direct ``SharedMemory(...)`` call anywhere else would be a
second, un-audited segment owner — exactly the lifecycle bug class the
single-owner design removes.
"""

from __future__ import annotations

import ast

from .core import FileContext, Rule, register

__all__ = ["SHM_WHITELIST"]

#: The one module allowed to touch multiprocessing.shared_memory: the
#: registry/arena plane that owns every segment's lifecycle.
SHM_WHITELIST = frozenset({"repro.exec.shm"})

_SHM_MODULES = frozenset(
    {
        "multiprocessing.shared_memory",
        "multiprocessing.resource_tracker",
    }
)

_SHM_CALLS = frozenset(
    {
        "multiprocessing.shared_memory.SharedMemory",
        "multiprocessing.shared_memory.ShareableList",
        "multiprocessing.resource_tracker.register",
        "multiprocessing.resource_tracker.unregister",
    }
)


@register
class SharedMemoryConfinement(Rule):
    """SHM001: shared-memory segments have exactly one owning module."""

    code = "SHM001"
    name = "shared-memory-confinement"
    description = (
        "multiprocessing.shared_memory used outside repro.exec.shm; "
        "segments are system-global resources and must be owned by the "
        "one registry that guarantees their cleanup"
    )

    def _flag(self, node: ast.AST, ctx: FileContext, what: str) -> None:
        ctx.report(
            self,
            node,
            f"{what} outside the shm whitelist "
            f"({', '.join(sorted(SHM_WHITELIST))}): every segment must be "
            "created/attached/unlinked through repro.exec.shm so the "
            "registry's cleanup accounting stays complete",
        )

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        """Flag ``import multiprocessing.shared_memory`` outside the plane."""
        if ctx.module in SHM_WHITELIST:
            return
        for alias in node.names:
            if alias.name in _SHM_MODULES:
                self._flag(node, ctx, f"import {alias.name}")

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        """Flag ``from multiprocessing import shared_memory`` (and friends)."""
        if ctx.module in SHM_WHITELIST or node.level:
            return
        if node.module in _SHM_MODULES:
            self._flag(node, ctx, f"from {node.module} import ...")
            return
        if node.module == "multiprocessing":
            for alias in node.names:
                dotted = f"multiprocessing.{alias.name}"
                if dotted in _SHM_MODULES:
                    self._flag(node, ctx, f"from multiprocessing import {alias.name}")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        """Flag resolved SharedMemory/resource_tracker calls."""
        if ctx.module in SHM_WHITELIST:
            return
        dotted = ctx.resolve_imported(node.func)
        if dotted in _SHM_CALLS:
            self._flag(node, ctx, f"{dotted}()")
