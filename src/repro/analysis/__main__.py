"""``python -m repro.analysis`` — run the invariant linter."""

import sys

from .cli import main

sys.exit(main())
