"""In-process simulated HDFS with byte-level accounting.

The paper's central performance argument is about *how many times bytes
cross HDFS*: HadoopGIS re-reads and re-writes whole datasets across six
preprocessing steps; SpatialHadoop shuffles re-partitioned data through
HDFS block files; SpatialSpark touches HDFS only to load inputs.  This
module provides the file/block structure those behaviours run against and
charges every byte to a shared :class:`~repro.metrics.Counters`.

Files are sequences of records grouped into fixed-size blocks, mirroring
HDFS block files.  A block can carry an *aux* payload — SpatialHadoop
writes each block's local spatial index "to the beginning of the HDFS
block file", and its ``_master`` files store partition MBRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from ..geometry.batch import GeometryBatch
from ..metrics import Counters
from ..pairs import PairBlock
from .sizeof import estimate_size

__all__ = ["Block", "HdfsFile", "SimulatedHDFS", "HdfsError", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024  # the classic 128 MB HDFS block


class HdfsError(IOError):
    """Raised for missing paths, overwrites and other FS misuse."""


@dataclass
class Block:
    """One HDFS block: records plus an optional aux payload (e.g. an index).

    ``records`` is any sized, iterable container — a plain list or a
    columnar :class:`~repro.geometry.batch.GeometryBatch` slice.
    """

    records: "list | GeometryBatch"
    nbytes: int
    aux: Any = None
    aux_nbytes: int = 0
    _num_records: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def total_bytes(self) -> int:
        return self.nbytes + self.aux_nbytes

    def __len__(self) -> int:
        """Logical record count: a :class:`~repro.pairs.PairBlock` in the
        record list stands for its pair count, keeping ``hdfs.records_*``
        totals identical to the per-tuple flow."""
        if self._num_records is None:
            records = self.records
            if isinstance(records, list):
                self._num_records = sum(
                    len(r) if isinstance(r, PairBlock) else 1 for r in records
                )
            else:
                self._num_records = len(records)
        return self._num_records


@dataclass
class HdfsFile:
    """A named file: an ordered list of blocks."""

    path: str
    blocks: list[Block] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return sum(b.total_bytes for b in self.blocks)

    @property
    def num_records(self) -> int:
        return sum(len(b) for b in self.blocks)


class SimulatedHDFS:
    """A single-namenode simulated HDFS shared by all substrates of a run.

    Parameters
    ----------
    block_size:
        Split threshold in (estimated) bytes.  Experiments use a scaled
        block size so scaled datasets still split into multiple blocks.
    counters:
        Shared counters receiving ``hdfs.*`` and ``localfs.*`` charges.
    """

    def __init__(
        self,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        counters: Optional[Counters] = None,
    ):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.counters = counters if counters is not None else Counters()
        self._files: dict[str, HdfsFile] = {}

    # ------------------------------------------------------------ namenode
    def exists(self, path: str) -> bool:
        """True if *path* exists."""
        return path in self._files

    def list_files(self, prefix: str = "") -> list[str]:
        """Sorted paths under *prefix*."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def delete(self, path: str) -> None:
        """Remove a file (raises for missing paths)."""
        if path not in self._files:
            raise HdfsError(f"cannot delete missing path {path!r}")
        del self._files[path]

    def file_size(self, path: str) -> int:
        """Total bytes of a file (data + aux payloads)."""
        return self._file(path).nbytes

    def num_records(self, path: str) -> int:
        """Total record count of a file."""
        return self._file(path).num_records

    def num_blocks(self, path: str) -> int:
        """Number of blocks in a file."""
        return len(self._file(path).blocks)

    def _file(self, path: str) -> HdfsFile:
        try:
            return self._files[path]
        except KeyError:
            raise HdfsError(f"no such HDFS path: {path!r}") from None

    # -------------------------------------------------------------- writes
    def write_file(
        self,
        path: str,
        records: Iterable,
        *,
        sizer: Callable[[Any], int] = estimate_size,
        overwrite: bool = False,
        block_size: Optional[int] = None,
    ) -> HdfsFile:
        """Write records, splitting into blocks; charges ``hdfs.bytes_written``.

        *block_size* overrides the filesystem default for this file —
        experiments size each staged input so its block count matches the
        paper-scale file's (bytes / 128 MB).
        """
        if path in self._files and not overwrite:
            raise HdfsError(f"path already exists: {path!r}")
        limit = block_size if block_size is not None else self.block_size
        f = HdfsFile(path)
        cur: list = []
        cur_bytes = 0
        total = 0
        for rec in records:
            size = sizer(rec)
            if cur and cur_bytes + size > limit:
                f.blocks.append(Block(cur, cur_bytes))
                cur, cur_bytes = [], 0
            cur.append(rec)
            cur_bytes += size
            total += size
        if cur or not f.blocks:
            f.blocks.append(Block(cur, cur_bytes))
        self._files[path] = f
        self.counters.add("hdfs.bytes_written", total)
        self.counters.add("hdfs.records_written", f.num_records)
        return f

    def write_batch_file(
        self,
        path: str,
        batch: GeometryBatch,
        *,
        overwrite: bool = False,
        block_size: Optional[int] = None,
    ) -> HdfsFile:
        """Write a :class:`GeometryBatch` as blocks of contiguous sub-batches.

        The greedy split rule, per-record byte accounting and resulting
        block boundaries are identical to :meth:`write_file` over the
        equivalent ``SpatialRecord`` list, but each block holds a zero-copy
        columnar slice instead of a record list.
        """
        if path in self._files and not overwrite:
            raise HdfsError(f"path already exists: {path!r}")
        limit = block_size if block_size is not None else self.block_size
        sizes = batch.record_sizes()
        f = HdfsFile(path)
        start = 0
        cur_bytes = 0
        for i in range(len(batch)):
            size = int(sizes[i])
            if i > start and cur_bytes + size > limit:
                f.blocks.append(Block(batch.slice(start, i), cur_bytes))
                start, cur_bytes = i, 0
            cur_bytes += size
        if start < len(batch) or not f.blocks:
            f.blocks.append(Block(batch.slice(start, len(batch)), cur_bytes))
        self._files[path] = f
        self.counters.add("hdfs.bytes_written", int(sizes.sum()))
        self.counters.add("hdfs.records_written", f.num_records)
        return f

    def write_blocks(
        self, path: str, blocks: Sequence[Block], *, overwrite: bool = False
    ) -> HdfsFile:
        """Write pre-formed blocks (used by block-aware writers)."""
        if path in self._files and not overwrite:
            raise HdfsError(f"path already exists: {path!r}")
        f = HdfsFile(path, list(blocks))
        self._files[path] = f
        self.counters.add("hdfs.bytes_written", f.nbytes)
        self.counters.add("hdfs.records_written", f.num_records)
        return f

    def attach_block_aux(self, path: str, block_idx: int, aux: Any, nbytes: int) -> None:
        """Attach an aux payload (e.g. a block-local index) to a block.

        Charged as an additional write of *nbytes* — "the intra-partition
        indexes are built virtually for free" compared to data I/O, and the
        accounting shows exactly how small this is.
        """
        block = self._file(path).blocks[block_idx]
        block.aux = aux
        block.aux_nbytes = nbytes
        self.counters.add("hdfs.bytes_written", nbytes)

    # --------------------------------------------------------------- reads
    def read_file(self, path: str) -> Iterator:
        """Iterate all records of a file; charges ``hdfs.bytes_read``."""
        f = self._file(path)
        self.counters.add("hdfs.bytes_read", f.nbytes)
        self.counters.add("hdfs.records_read", f.num_records)
        for block in f.blocks:
            yield from block.records

    def read_all(self, path: str) -> list:
        """All records of a file as a list (charges the read)."""
        return list(self.read_file(path))

    def read_batch_file(self, path: str) -> GeometryBatch:
        """Read a batch-written file back as one batch (charges the read)."""
        f = self._file(path)
        self.counters.add("hdfs.bytes_read", f.nbytes)
        self.counters.add("hdfs.records_read", f.num_records)
        parts = []
        for block in f.blocks:
            if not isinstance(block.records, GeometryBatch):
                raise HdfsError(f"{path!r} does not hold columnar blocks")
            parts.append(block.records)
        return GeometryBatch.concat(parts)

    def read_block(self, path: str, block_idx: int) -> Block:
        """Random-access one block (SpatialHadoop's data access model)."""
        f = self._file(path)
        try:
            block = f.blocks[block_idx]
        except IndexError:
            raise HdfsError(f"{path!r} has no block {block_idx}") from None
        self.counters.add("hdfs.bytes_read", block.total_bytes)
        self.counters.add("hdfs.records_read", len(block))
        return block

    def blocks_meta(self, path: str) -> list[tuple[int, int, int]]:
        """(block_idx, num_records, nbytes) without charging data reads."""
        f = self._file(path)
        return [(i, len(b), b.total_bytes) for i, b in enumerate(f.blocks)]

    # ------------------------------------------- cross-run file linking
    def export_files(self, prefix: str) -> "dict[str, HdfsFile]":
        """Snapshot every file under *prefix* as ``{path: HdfsFile}``.

        Uncharged: exporting moves namenode metadata between simulated
        runs (the service's prepare-once/query-many lifecycle), not
        bytes.  The returned :class:`HdfsFile` objects are shared by
        reference — callers must treat them as immutable.
        """
        return {p: self._files[p] for p in self.list_files(prefix)}

    def install_files(
        self, files: "Mapping[str, HdfsFile]", *, overwrite: bool = False
    ) -> None:
        """Link already-written files into this namespace by reference.

        The query side of the prepare-once lifecycle: a fresh
        per-query filesystem starts from the prepared dataset's staged
        and indexed files without re-paying their write charges.  The
        shared blocks are read-only by convention; writes under new
        paths are unaffected.
        """
        for path, f in files.items():
            if path in self._files and not overwrite:
                raise HdfsError(f"path already exists: {path!r}")
            self._files[path] = f

    # ----------------------------------------------- local filesystem hops
    def copy_to_local(self, path: str) -> list:
        """HDFS → local FS copy (HadoopGIS's serial local steps).

        Charged as an HDFS read plus a local write — the round trip the
        paper flags as "expensive as well" in HadoopGIS preprocessing.
        """
        f = self._file(path)
        self.counters.add("hdfs.bytes_read", f.nbytes)
        self.counters.add("localfs.bytes_written", f.nbytes)
        out: list = []
        for block in f.blocks:
            out.extend(block.records)
        return out

    def copy_from_local(
        self, path: str, records: Sequence, *, sizer: Callable[[Any], int] = estimate_size,
        overwrite: bool = False,
    ) -> HdfsFile:
        """Local FS → HDFS copy: a local read plus an HDFS write."""
        self.counters.add("localfs.bytes_read", sum(sizer(r) for r in records))
        return self.write_file(path, records, sizer=sizer, overwrite=overwrite)
