"""Serialized-size estimation for byte accounting.

Every record that crosses HDFS, a streaming pipe or a shuffle boundary is
charged its estimated on-the-wire size.  The estimator mirrors the text
formats the real systems use (WKT/TSV lines, tab-separated fields).
"""

from __future__ import annotations

from typing import Any

__all__ = ["estimate_size"]

_NUMERIC_SIZE = 12  # ~"123456.78901\t"


def estimate_size(obj: Any) -> int:
    """Approximate serialized size of *obj* in bytes.

    Strings and bytes are exact (+1 for the record separator); geometries
    use their WKT-like estimate; containers sum their elements plus field
    separators.  Unknown objects fall back to ``len(str(obj))``.
    """
    if obj is None:
        return 1
    if isinstance(obj, str):
        return len(obj) + 1
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) + 1
    if isinstance(obj, bool):
        return 2
    if isinstance(obj, (int, float)):
        return _NUMERIC_SIZE
    size_fn = getattr(obj, "serialized_size", None)
    if callable(size_fn):
        return int(size_fn())
    if isinstance(obj, (tuple, list)):
        return sum(estimate_size(x) for x in obj) + len(obj)
    if isinstance(obj, dict):
        return sum(estimate_size(k) + estimate_size(v) for k, v in obj.items()) + 2
    if isinstance(obj, (set, frozenset)):
        return sum(estimate_size(x) for x in obj) + 2
    return len(str(obj)) + 1
