"""Simulated HDFS substrate with byte-level I/O accounting."""

from .filesystem import (
    DEFAULT_BLOCK_SIZE,
    Block,
    HdfsError,
    HdfsFile,
    SimulatedHDFS,
)
from .sizeof import estimate_size

__all__ = [
    "SimulatedHDFS",
    "HdfsFile",
    "Block",
    "HdfsError",
    "DEFAULT_BLOCK_SIZE",
    "estimate_size",
]
