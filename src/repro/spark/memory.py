"""Spark executor memory model.

The paper: "The top reason for SpatialSpark to fail is out of memory and
Spark is not able to spill data to external storage ... the workstation
has 128 GB memory and the aggregated memory capacity of the EC2-10
cluster is 150 GB, which were sufficient" (while EC2-8's 120 GB and
EC2-6's 90 GB were not).

We reproduce that as an executor-memory ledger.  Every *materialized*
dataset (input load or shuffle output) charges a JVM footprint

    footprint = records × record_overhead + data_bytes × byte_expansion

converted to paper scale via ``record_scale`` / ``byte_scale``.  Narrow
(pipelined) transformations charge nothing, matching Spark's execution
model.  When the live footprint exceeds the cluster's usable memory the
ledger raises :class:`SparkOutOfMemoryError` — the "-" cells of Table 2.

Calibration of the constants (documented in EXPERIMENTS.md): a record
that is loaded once and shuffled once costs ``300 + 189 = 489`` bytes of
JVM overhead plus ``1.0×`` its load bytes and ``0.72×`` its shuffle-tuple
bytes.  With the paper's record counts and the shuffle-tuple inflation
the executed pipelines exhibit, both full joins land at ≈92-94 GiB —
inside WS's 96 GiB and EC2-10's 112.5 GiB usable memory, outside EC2-8's
90 GiB and EC2-6's 67.5 GiB: exactly the paper's failure matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SparkOutOfMemoryError", "MemoryModel", "MemoryLedger"]


class SparkOutOfMemoryError(MemoryError):
    """Aggregate executor memory exhausted (no spill path for this workload)."""

    def __init__(self, needed: float, budget: float, what: str):
        self.needed = needed
        self.budget = budget
        self.what = what
        super().__init__(
            f"Spark out of memory while materializing {what}: needs "
            f"{needed / 2**30:.1f} GiB live, budget {budget / 2**30:.1f} GiB"
        )

    def __reduce__(self):
        # Survive the pickle round trip out of a ProcessBackend worker.
        return (SparkOutOfMemoryError, (self.needed, self.budget, self.what))


@dataclass(frozen=True)
class MemoryModel:
    """Per-record / per-byte JVM footprint constants (bytes)."""

    record_overhead_load: float = 300.0
    record_overhead_shuffle: float = 189.0
    byte_expansion_load: float = 1.0
    byte_expansion_shuffle: float = 0.72

    def load_footprint(self, records: float, nbytes: float) -> float:
        """JVM bytes held by a materialized input of this size."""
        return records * self.record_overhead_load + nbytes * self.byte_expansion_load

    def shuffle_footprint(self, records: float, nbytes: float) -> float:
        """JVM bytes held by a shuffle output of this size."""
        return (
            records * self.record_overhead_shuffle
            + nbytes * self.byte_expansion_shuffle
        )


class MemoryLedger:
    """Tracks live and peak simulated executor memory for one Spark app.

    ``record_scale`` / ``byte_scale`` convert executed (scaled-down)
    counts into logical paper-scale volumes, so a 1/1000-scale run OOMs
    exactly where the full-scale system would.
    """

    def __init__(
        self,
        budget_bytes: float = float("inf"),
        *,
        record_scale: float = 1.0,
        byte_scale: float = 1.0,
        model: MemoryModel | None = None,
    ):
        self.budget_bytes = budget_bytes
        self.record_scale = record_scale
        self.byte_scale = byte_scale
        self.model = model or MemoryModel()
        self.live_bytes = 0.0
        self.peak_bytes = 0.0

    # ------------------------------------------------------------- charging
    def _charge(self, footprint: float, what: str) -> float:
        self.live_bytes += footprint
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        if self.live_bytes > self.budget_bytes:
            needed = self.live_bytes
            # The failed allocation is rolled back: the task dies but its
            # memory returns to the executor pool.
            self.live_bytes -= footprint
            raise SparkOutOfMemoryError(needed, self.budget_bytes, what)
        return footprint

    def charge_load(
        self,
        records: int,
        nbytes: int,
        what: str = "input RDD",
        scale: "tuple[float, float] | None" = None,
    ) -> float:
        """Charge a materialized input; returns the footprint taken."""
        rs, bs = scale if scale is not None else (self.record_scale, self.byte_scale)
        return self._charge(
            self.model.load_footprint(records * rs, nbytes * bs), what
        )

    def charge_shuffle(
        self,
        records: int,
        nbytes: int,
        what: str = "shuffle",
        scale: "tuple[float, float] | None" = None,
    ) -> float:
        """Charge a materialized shuffle output; returns the footprint."""
        rs, bs = scale if scale is not None else (self.record_scale, self.byte_scale)
        return self._charge(
            self.model.shuffle_footprint(records * rs, nbytes * bs), what
        )

    def charge_broadcast(self, nbytes: int, replicas: int, what: str = "broadcast") -> float:
        """Charge a broadcast variable replicated onto every node."""
        return self._charge(nbytes * self.byte_scale * replicas, what)

    def release(self, footprint: float) -> None:
        """Return memory (e.g. an RDD unpersisted between queries)."""
        self.live_bytes = max(0.0, self.live_bytes - footprint)
