"""SparkContext analogue: sources, broadcast variables, phase recording.

One context = one Spark application (SpatialSpark runs one query per
application).  It wires the RDD machinery to the run's shared counters,
clock, HDFS and memory ledger, and exposes the little that SpatialSpark
needs: ``parallelize``, ``from_hdfs``, ``broadcast`` and a phase-recording
context manager for Table 3 breakdowns.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Optional, Sequence

from ..cluster.simclock import PhaseRecord, SimClock
from ..exec.backend import ExecutorBackend, SerialBackend, merge_outcomes
from ..hdfs.filesystem import SimulatedHDFS
from ..hdfs.sizeof import estimate_size
from ..geometry.batch import GeometryBatch
from ..metrics import Counters
from ..trace.core import span as trace_span
from .memory import MemoryLedger
from .rdd import RDD

__all__ = ["SparkContext", "Broadcast"]

#: repro-lint whole-program declaration (WRK001): per-partition task
#: bodies handed to ``run_stage_tasks`` are forwarded to the executor
#: backend and may run inside pool workers.
_DISPATCH_POINTS = ("SparkContext.run_stage_tasks",)


class Broadcast:
    """A broadcast variable: read-only value shipped to every executor."""

    def __init__(self, value: Any, nbytes: int):
        self.value = value
        self.nbytes = nbytes


class SparkContext:
    """Entry point of the simulated Spark runtime."""

    def __init__(
        self,
        *,
        counters: Optional[Counters] = None,
        clock: Optional[SimClock] = None,
        hdfs: Optional[SimulatedHDFS] = None,
        ledger: Optional[MemoryLedger] = None,
        default_parallelism: int = 8,
        num_nodes: int = 1,
        scale_resolver: Optional[Callable[[str], tuple[float, float]]] = None,
        executor: Optional[ExecutorBackend] = None,
    ):
        self.counters = counters if counters is not None else Counters()
        self.clock = clock if clock is not None else SimClock()
        self.hdfs = hdfs
        self.ledger = ledger if ledger is not None else MemoryLedger()
        self.default_parallelism = max(1, default_parallelism)
        self.num_nodes = max(1, num_nodes)
        #: task execution backend per-partition stage tasks run on; the
        #: serial default keeps single-threaded behaviour bit-identical.
        self.executor = executor if executor is not None else SerialBackend()
        #: Optional fn(label) -> (record_scale, byte_scale): maps an RDD
        #: back to its source dataset so per-dataset scale factors apply
        #: (labels compose, so a lineage keeps its source path in the label).
        self.scale_resolver = scale_resolver
        #: Optional fn(rdd_label) -> bool: True simulates losing the RDD's
        #: freshly-computed partitions (executor failure); the runtime
        #: recomputes them from lineage, re-charging the work.
        self.fault_injector = None

    # --------------------------------------------------------------- sources
    def parallelize(self, data, n_partitions: Optional[int] = None) -> RDD:
        """Create an RDD from a local collection (charges a load footprint)."""
        items = list(data)
        n = max(1, n_partitions or self.default_parallelism)
        n = min(n, max(len(items), 1))

        def compute():
            if not items:
                return [[]]
            size = -(-len(items) // n)
            return [items[i : i + size] for i in range(0, len(items), size)]

        return RDD(
            self, compute=compute, n_partitions=n, charges_memory="load",
            label="parallelize",
        )

    def from_hdfs(self, path: str, n_partitions: Optional[int] = None) -> RDD:
        """Load an HDFS file: one partition per block (charges HDFS read).

        This is SpatialSpark's *only* HDFS interaction — everything after
        runs in executor memory.
        """
        if self.hdfs is None:
            raise RuntimeError("SparkContext was created without an HDFS")
        hdfs = self.hdfs
        ctx = self

        def compute():
            meta = hdfs.blocks_meta(path)
            parts = []
            for block_idx, _, _ in meta:
                records = hdfs.read_block(path, block_idx).records
                # Columnar blocks stay columnar; text/record blocks copy.
                parts.append(
                    records if isinstance(records, GeometryBatch) else list(records)
                )
            ctx.counters.add("spark.tasks", max(len(parts), 1))
            return parts or [[]]

        n = n_partitions or max(
            len(self.hdfs.blocks_meta(path)) if self.hdfs.exists(path) else 1, 1
        )
        return RDD(
            self, compute=compute, n_partitions=n, charges_memory="load",
            label=f"hdfs:{path}",
        )

    # ------------------------------------------------------------- broadcast
    def broadcast(self, value: Any, nbytes: Optional[int] = None) -> Broadcast:
        """Ship *value* to all executors (charges network + memory).

        SpatialSpark broadcasts the STR tree over the sampled partition
        MBRs here, without touching HDFS — the design the paper contrasts
        with HadoopGIS's per-mapper index rebuild from an HDFS file.
        """
        size = nbytes if nbytes is not None else estimate_size(value)
        self.counters.add("net.bytes_broadcast", size)
        self.ledger.charge_broadcast(size, replicas=self.num_nodes, what="broadcast")
        return Broadcast(value, size)

    # --------------------------------------------------------- stage tasks
    def run_stage_tasks(self, label: str, fns: Sequence[Callable[[], Any]]) -> list:
        """Run one stage's per-partition task bodies on the executor.

        Outcomes merge in partition order, so counters and results are
        identical to a serial loop regardless of the backend.
        """
        with trace_span(
            label, kind="stage", counters=self.counters, tasks=len(fns)
        ):
            outcomes = self.executor.run_tasks(label, fns, self.counters)
            results, _side = merge_outcomes(outcomes, self.counters)
        return results

    # ------------------------------------------------------- phase recording
    @contextmanager
    def record_phase(self, name: str, *, group: str = "join", tasks: int = 1):
        """Record all counters accumulated in the block as one PhaseRecord.

        When tracing is active the block also becomes a phase span
        bracketing the same interval, so the span's counter deltas equal
        the PhaseRecord's counters bit-exactly.
        """
        with trace_span(name, kind="phase", counters=self.counters, group=group):
            before = self.counters.snapshot()
            yield
            self.clock.record(
                PhaseRecord(
                    name=name, counters=self.counters.diff(before),
                    tasks=tasks, group=group,
                )
            )
