"""Simulated Spark substrate: lazy RDDs, broadcast, executor memory."""

from .context import Broadcast, SparkContext
from .memory import MemoryLedger, MemoryModel, SparkOutOfMemoryError
from .rdd import RDD

__all__ = [
    "SparkContext",
    "Broadcast",
    "RDD",
    "MemoryLedger",
    "MemoryModel",
    "SparkOutOfMemoryError",
]
