"""Lazy RDDs with lineage, narrow/wide dependencies and shuffle accounting.

The subset of the Spark API that SpatialSpark uses — ``map``, ``flatMap``,
``filter``, ``mapPartitions``, ``mapValues``, ``sample``, ``groupByKey``,
``reduceByKey``, ``join``, ``cogroup``, ``distinct``, ``sortBy``,
``union`` — plus the actions ``collect``, ``count``, ``take``,
``countByKey`` and ``reduce``.  Transformations build a lineage DAG;
actions trigger evaluation.

Execution fidelity that matters here:

* **Narrow transformations are pipelined** — they materialize nothing and
  charge no executor memory, like Spark's iterator chaining.
* **Wide transformations (groupByKey / join / partitionBy) are stage
  boundaries** — they charge ``spark.stages``, per-partition
  ``spark.tasks``, in-memory ``shuffle.bytes_mem``, and a shuffle
  footprint on the memory ledger (which is what ultimately OOMs).
* **Sources** (``parallelize`` / HDFS loads) charge a load footprint.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

import numpy as np

from ..geometry.batch import GeometryBatch
from ..hdfs.sizeof import estimate_size
from ..trace.core import span as trace_span

__all__ = ["RDD"]

#: repro-lint whole-program declaration (WRK001): user functions handed
#: to RDD transformations run inside stage task bodies, which the
#: process backend ships to pool workers.
_DISPATCH_POINTS = (
    "RDD.map",
    "RDD.flatMap",
    "RDD.filter",
    "RDD.mapPartitions",
    "RDD.mapValues",
    "RDD.keyBy",
    "RDD.sortBy",
    "RDD.reduceByKey",
    "RDD.reduce",
)


def _default_partitioner(key: Any, n: int) -> int:
    return hash(key) % n


class RDD:
    """One node of the lineage DAG.

    Not constructed directly — use :class:`~repro.spark.context.SparkContext`
    factories (``parallelize``, ``from_hdfs``) and transformations.
    """

    def __init__(
        self,
        ctx,
        *,
        parents: tuple["RDD", ...] = (),
        compute: Optional[Callable[[], list[list]]] = None,
        n_partitions: Optional[int] = None,
        charges_memory: str = "none",  # "load" | "shuffle" | "none"
        label: str = "rdd",
    ):
        self.ctx = ctx
        self.parents = parents
        self._compute = compute
        self._n_partitions = n_partitions
        self._charges_memory = charges_memory
        self.label = label
        #: (n_partitions, partition_fn) once hash-partitioned; lets join()
        #: skip the re-shuffle of co-partitioned inputs, as Spark does.
        self.partitioner: Optional[tuple[int, Callable]] = None
        self._materialized: Optional[list[list]] = None
        self._footprint: float = 0.0  # ledger bytes held while materialized

    # ----------------------------------------------------------- evaluation
    def _partitions(self) -> list[list]:
        """Materialize (with memoization) this RDD's partitions.

        When the context carries a fault injector and it reports an
        executor loss for this RDD, the partitions are *recomputed from
        lineage* — the user functions re-run, so every op they charge is
        charged again, which is exactly the recomputation cost Spark pays.
        """
        if self._materialized is None:
            parts = self._compute()
            injector = getattr(self.ctx, "fault_injector", None)
            if injector is not None and injector(self.label):
                self.ctx.counters.add("spark.recomputes")
                parts = self._compute()
            if self._charges_memory != "none":
                records = sum(len(p) for p in parts)
                nbytes = sum(
                    p.serialized_size()
                    if isinstance(p, GeometryBatch)
                    else sum(estimate_size(r) for r in p)
                    for p in parts
                )
                scale = (
                    self.ctx.scale_resolver(self.label)
                    if self.ctx.scale_resolver is not None
                    else None
                )
                if self._charges_memory == "load":
                    self._footprint = self.ctx.ledger.charge_load(
                        records, nbytes, what=self.label, scale=scale
                    )
                else:
                    self._footprint = self.ctx.ledger.charge_shuffle(
                        records, nbytes, what=self.label, scale=scale
                    )
            self._materialized = parts
        return self._materialized

    def toDebugString(self) -> str:
        """Indented lineage description, Spark-style; shuffle boundaries
        are marked with '+-' like Spark's stage breaks."""
        lines: list[str] = []

        def walk(rdd: "RDD", depth: int) -> None:
            marker = "+-" if rdd._charges_memory == "shuffle" else "| "
            lines.append(f"{'  ' * depth}{marker} {rdd.label} "
                         f"[{rdd.num_partitions} partitions]")
            for parent in rdd.parents:
                walk(parent, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    def cache(self) -> "RDD":
        """Mark persistent.  Materializations are already memoized, so this
        is Spark-API compatibility; pair with :meth:`unpersist` to release
        executor memory between queries."""
        return self

    def unpersist(self) -> "RDD":
        """Drop materialized partitions and return their executor memory."""
        if self._materialized is not None:
            self._materialized = None
            if self._footprint:
                self.ctx.ledger.release(self._footprint)
                self._footprint = 0.0
        return self

    @property
    def num_partitions(self) -> int:
        if self._n_partitions is not None:
            return self._n_partitions
        return self.parents[0].num_partitions if self.parents else 1

    # --------------------------------------------- narrow transformations
    def _narrow(self, fn: Callable[[list], list], label: str) -> "RDD":
        parent = self

        def compute():
            parts = parent._partitions()
            return self.ctx.run_stage_tasks(
                label, [lambda part=part: fn(part) for part in parts]
            )

        return RDD(self.ctx, parents=(parent,), compute=compute, label=label)

    def map(self, f: Callable) -> "RDD":
        """Apply *f* to every element (narrow)."""
        return self._narrow(lambda part: [f(x) for x in part], f"map({self.label})")

    def flatMap(self, f: Callable) -> "RDD":
        """Apply *f* and flatten the resulting iterables (narrow)."""
        return self._narrow(
            lambda part: [y for x in part for y in f(x)], f"flatMap({self.label})"
        )

    def filter(self, f: Callable) -> "RDD":
        """Keep elements where *f* is true (narrow)."""
        return self._narrow(lambda part: [x for x in part if f(x)], f"filter({self.label})")

    def mapPartitions(self, f: Callable[[list], Iterable]) -> "RDD":
        """Apply *f* to each whole partition (narrow)."""
        return self._narrow(lambda part: list(f(part)), f"mapPartitions({self.label})")

    def mapValues(self, f: Callable) -> "RDD":
        """Apply *f* to the values of a pair RDD (narrow)."""
        return self._narrow(
            lambda part: [(k, f(v)) for k, v in part], f"mapValues({self.label})"
        )

    def keyBy(self, f: Callable) -> "RDD":
        """Pair every element with ``f(element)`` as its key (narrow)."""
        return self._narrow(lambda part: [(f(x), x) for x in part], f"keyBy({self.label})")

    def keys(self) -> "RDD":
        """Keys of a pair RDD (narrow)."""
        return self._narrow(lambda part: [k for k, _ in part], f"keys({self.label})")

    def values(self) -> "RDD":
        """Values of a pair RDD (narrow)."""
        return self._narrow(lambda part: [v for _, v in part], f"values({self.label})")

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Bernoulli sampling without replacement (Spark's built-in)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("sample fraction must be in [0, 1]")
        parent = self

        def sample_part(i: int, part: list) -> list:
            rng = np.random.default_rng((seed, i))
            if not part:
                return []
            mask = rng.random(len(part)) < fraction
            return [x for x, keep in zip(part, mask) if keep]

        def compute():
            parts = parent._partitions()
            return self.ctx.run_stage_tasks(
                f"sample({parent.label})",
                [lambda i=i, part=part: sample_part(i, part)
                 for i, part in enumerate(parts)],
            )

        return RDD(self.ctx, parents=(parent,), compute=compute, label=f"sample({self.label})")

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs' partitions (narrow)."""
        a, b = self, other

        def compute():
            return a._partitions() + b._partitions()

        return RDD(
            self.ctx,
            parents=(a, b),
            compute=compute,
            n_partitions=a.num_partitions + b.num_partitions,
            label=f"union({a.label},{b.label})",
        )

    def distinct(self, n_out: Optional[int] = None) -> "RDD":
        """Unique elements (a shuffle: equal elements must co-locate)."""
        n = n_out or self.num_partitions

        def bucket(part, buckets):
            for x in part:
                buckets[hash(x) % n].append(x)

        shuffled = self._shuffled(n, bucket, f"distinct({self.label})")

        def distinct_part(part: list) -> list:
            seen = set()
            uniq = []
            for x in part:
                if x not in seen:
                    seen.add(x)
                    uniq.append(x)
            return uniq

        def compute():
            parts = shuffled._partitions()
            return self.ctx.run_stage_tasks(
                f"distinct({shuffled.label})",
                [lambda part=part: distinct_part(part) for part in parts],
            )

        return RDD(self.ctx, parents=(shuffled,), compute=compute,
                   n_partitions=n, label=f"distinct({self.label})")

    def sortBy(self, key_fn: Callable, n_out: Optional[int] = None) -> "RDD":
        """Globally sort by a key (range-partition shuffle + local sorts).

        Range boundaries come from the materialized data (a real Spark
        sortBy samples first; our partitions are already in memory).
        """
        n = n_out or self.num_partitions
        parent = self

        def compute():
            parts = parent._partitions()
            items = [x for p in parts for x in p]
            with trace_span(
                f"sortBy({parent.label})", kind="shuffle",
                counters=self.ctx.counters,
                records=len(items), out_partitions=n,
            ):
                self.ctx.counters.add("spark.stages")
                self.ctx.counters.add("spark.tasks", max(len(parts), 1))
                nbytes = sum(estimate_size(x) for x in items)
                self.ctx.counters.add("shuffle.bytes_mem", nbytes)
                if items:
                    self.ctx.counters.add(
                        "sort.ops", len(items) * max(np.log2(len(items)), 1.0)
                    )
                items.sort(key=key_fn)
            size = max(1, -(-len(items) // n))
            return [items[i : i + size] for i in range(0, len(items), size)] or [[]]

        return RDD(self.ctx, parents=(parent,), compute=compute,
                   n_partitions=n, charges_memory="shuffle",
                   label=f"sortBy({self.label})")

    def cogroup(self, other: "RDD", n_out: Optional[int] = None) -> "RDD":
        """Group two pair RDDs by key → (key, ([left values], [right values]))."""
        n = n_out or max(self.num_partitions, other.num_partitions)
        left = self.groupByKey(n)
        right = other.groupByKey(n)

        def cogroup_part(lpart: list, rpart: list) -> list:
            lmap = dict(lpart)
            rmap = dict(rpart)
            return [
                (k, (lmap.get(k, []), rmap.get(k, [])))
                for k in sorted(set(lmap) | set(rmap), key=repr)
            ]

        def compute():
            pairs = list(zip(left._partitions(), right._partitions()))
            return self.ctx.run_stage_tasks(
                f"cogroup({left.label},{right.label})",
                [lambda lp=lp, rp=rp: cogroup_part(lp, rp) for lp, rp in pairs],
            )

        out = RDD(self.ctx, parents=(left, right), compute=compute,
                  n_partitions=n, label=f"cogroup({self.label},{other.label})")
        out.partitioner = left.partitioner
        return out

    # ----------------------------------------------- wide transformations
    def _shuffled(
        self, n_out: int, bucket_fn: Callable[[list, list[list]], None], label: str
    ) -> "RDD":
        """Common shuffle machinery: redistribute records into n_out buckets."""
        parent = self

        def shuffle_part(part: list) -> tuple[int, list[list]]:
            # Each map-side task buckets its own partition; the sizing
            # charge rides along so it lands in the task's scratch.
            nbytes = sum(estimate_size(r) for r in part)
            self.ctx.counters.add("shuffle.bytes_mem", nbytes)
            local: list[list] = [[] for _ in range(n_out)]
            bucket_fn(part, local)
            return local

        def compute():
            parts = parent._partitions()
            n_records = sum(len(p) for p in parts)
            with trace_span(
                label, kind="shuffle", counters=self.ctx.counters,
                records=n_records, out_partitions=n_out,
            ):
                self.ctx.counters.add("spark.stages")
                self.ctx.counters.add("spark.tasks", max(len(parts), 1))
                # Per-record serde + hashing + grouping churn of an
                # in-memory exchange — Spark's dominant per-record cost on
                # tiny records.
                self.ctx.counters.add("spark.shuffle_records", n_records)
                if n_records:
                    self.ctx.counters.add(
                        "sort.ops", n_records * max(np.log2(n_records), 1.0)
                    )
                local_buckets = self.ctx.run_stage_tasks(
                    label, [lambda part=part: shuffle_part(part) for part in parts]
                )
                # Reduce-side concatenation in map-task order reproduces
                # the record order of a serial single-bucket pass exactly.
                buckets: list[list] = [[] for _ in range(n_out)]
                for local in local_buckets:
                    for bucket, found in zip(buckets, local):
                        bucket.extend(found)
            return buckets

        return RDD(
            self.ctx,
            parents=(parent,),
            compute=compute,
            n_partitions=n_out,
            charges_memory="shuffle",
            label=label,
        )

    def partitionBy(self, n_out: Optional[int] = None, partitioner=None) -> "RDD":
        """Hash-partition a pair RDD by key."""
        n = n_out or self.ctx.default_parallelism
        pf = partitioner or _default_partitioner

        def bucket(part, buckets):
            for k, v in part:
                buckets[pf(k, n)].append((k, v))

        out = self._shuffled(n, bucket, f"partitionBy({self.label})")
        out.partitioner = (n, pf)
        return out

    def groupByKey(self, n_out: Optional[int] = None) -> "RDD":
        """Group a pair RDD into (key, [values]) — SpatialSpark's core step."""
        n = n_out or self.ctx.default_parallelism
        parent = self
        shuffled = parent.partitionBy(n)

        def group_part(part: list) -> list:
            groups: dict = {}
            for k, v in part:
                groups.setdefault(k, []).append(v)
            return list(groups.items())

        def compute():
            parts = shuffled._partitions()
            return self.ctx.run_stage_tasks(
                f"groupByKey({parent.label})",
                [lambda part=part: group_part(part) for part in parts],
            )

        out = RDD(
            self.ctx,
            parents=(shuffled,),
            compute=compute,
            n_partitions=n,
            label=f"groupByKey({parent.label})",
        )
        out.partitioner = shuffled.partitioner
        return out

    def reduceByKey(self, f: Callable, n_out: Optional[int] = None) -> "RDD":
        """Group by key and fold each group with *f* (a shuffle)."""
        return self.groupByKey(n_out).mapValues(
            lambda vs: _reduce_list(f, vs)
        )

    def join(self, other: "RDD", n_out: Optional[int] = None) -> "RDD":
        """Inner join of two pair RDDs on key → (key, (left, right)).

        Co-partitioned inputs (same partition count and function) are
        joined with a narrow zip — no extra shuffle — matching Spark's
        behaviour when both sides share a partitioner.
        """
        n = n_out or max(self.num_partitions, other.num_partitions)

        def aligned(rdd: "RDD") -> "RDD":
            if rdd.partitioner is not None and rdd.partitioner[0] == n:
                return rdd
            return rdd.partitionBy(n)

        left = aligned(self)
        right = aligned(other)

        def join_part(lpart: list, rpart: list) -> list:
            lmap: dict = {}
            for k, v in lpart:
                lmap.setdefault(k, []).append(v)
            joined = []
            for k, w in rpart:
                for v in lmap.get(k, ()):
                    joined.append((k, (v, w)))
            return joined

        def compute():
            pairs = list(zip(left._partitions(), right._partitions()))
            return self.ctx.run_stage_tasks(
                f"join({left.label},{right.label})",
                [lambda lp=lp, rp=rp: join_part(lp, rp) for lp, rp in pairs],
            )

        out = RDD(
            self.ctx,
            parents=(left, right),
            compute=compute,
            n_partitions=n,
            label=f"join({self.label},{other.label})",
        )
        out.partitioner = left.partitioner
        return out

    # ---------------------------------------------------------------- actions
    def collect(self) -> list:
        """Materialize and return every element (an action)."""
        parts = self._partitions()
        self.ctx.counters.add("spark.stages")
        self.ctx.counters.add("spark.tasks", max(len(parts), 1))
        return [x for part in parts for x in part]

    def count(self) -> int:
        """Number of elements (an action)."""
        parts = self._partitions()
        self.ctx.counters.add("spark.stages")
        self.ctx.counters.add("spark.tasks", max(len(parts), 1))
        return sum(len(p) for p in parts)

    def reduce(self, f: Callable):
        """Fold all elements with *f* (raises on an empty RDD, like Spark)."""
        items = self.collect()
        if not items:
            raise ValueError("reduce() of empty RDD")
        return _reduce_list(f, items)

    def countByKey(self) -> dict:
        """Counts per key of a pair RDD."""
        out: dict = {}
        for k, _v in self.collect():
            out[k] = out.get(k, 0) + 1
        return out

    def take(self, n: int) -> list:
        """The first *n* elements in partition order (an action)."""
        out: list = []
        for part in self._partitions():
            for x in part:
                if len(out) == n:
                    return out
                out.append(x)
        self.ctx.counters.add("spark.stages")
        return out


def _reduce_list(f: Callable, values: list):
    it = iter(values)
    acc = next(it)
    for v in it:
        acc = f(acc, v)
    return acc
