"""Machine and cluster specifications for the paper's hardware configs.

The paper evaluates four configurations (Section III.A):

* **WS** — one workstation: dual 8-core CPUs @ 2.6 GHz, 128 GB RAM.
* **EC2-10 / EC2-8 / EC2-6** — Amazon EC2 clusters of g2.2xlarge nodes
  (8 vCPUs, 15 GB RAM each).

These specs feed the cost model: parallelism caps, aggregate disk and
network bandwidth, and the memory capacities that decide SpatialSpark's
out-of-memory failures and HadoopGIS's streaming-pipe failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "MachineSpec",
    "ClusterConfig",
    "WORKSTATION",
    "EC2_G2_2XLARGE",
    "ws_config",
    "ec2_config",
    "PAPER_CONFIGS",
    "GB",
    "MB",
]

GB = 1024**3
MB = 1024**2


@dataclass(frozen=True)
class MachineSpec:
    """One physical node.

    Bandwidths are deliberately conservative, calibrated to 2014-era
    hardware: a workstation with a fast local RAID-ish disk, and EC2
    instances with modest EBS-backed storage and 1GbE-class networking.
    """

    name: str
    cores: int
    memory_bytes: int
    disk_read_bw: float  # bytes/sec
    disk_write_bw: float  # bytes/sec
    network_bw: float  # bytes/sec per node
    cpu_speed: float = 1.0  # relative per-core speed multiplier


WORKSTATION = MachineSpec(
    name="workstation",
    cores=16,
    memory_bytes=128 * GB,
    disk_read_bw=280 * MB,
    disk_write_bw=220 * MB,
    network_bw=10_000 * MB,  # loopback: effectively unconstrained
    cpu_speed=1.0,
)

EC2_G2_2XLARGE = MachineSpec(
    name="g2.2xlarge",
    cores=8,
    memory_bytes=15 * GB,
    # 2014-era EBS-backed instance storage: far below the workstation's
    # local array — a big part of why the paper's WS is competitive with
    # small EC2 clusters despite having 1/5 the cores.
    disk_read_bw=55 * MB,
    disk_write_bw=45 * MB,
    network_bw=110 * MB,
    # 8 vCPUs = 4 hyperthreaded physical cores on shared 2012-era hosts.
    cpu_speed=0.55,
)


@dataclass(frozen=True)
class ClusterConfig:
    """A homogeneous cluster of :class:`MachineSpec` nodes."""

    name: str
    machine: MachineSpec
    num_nodes: int
    #: Fraction of node memory usable by a JVM-based execution engine
    #: (the rest goes to the OS, the DataNode, and framework overheads).
    usable_memory_fraction: float = 0.75
    #: HDFS replication factor charged on writes.
    hdfs_replication: int = field(default=3)

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        # A single node cannot replicate to 3 machines; HDFS caps at nodes.
        object.__setattr__(
            self, "hdfs_replication", min(self.hdfs_replication, self.num_nodes)
        )

    # ------------------------------------------------------------ aggregates
    @property
    def total_cores(self) -> int:
        return self.machine.cores * self.num_nodes

    @property
    def total_memory_bytes(self) -> int:
        return self.machine.memory_bytes * self.num_nodes

    @property
    def usable_memory_bytes(self) -> int:
        return int(self.total_memory_bytes * self.usable_memory_fraction)

    @property
    def aggregate_disk_read_bw(self) -> float:
        return self.machine.disk_read_bw * self.num_nodes

    @property
    def aggregate_disk_write_bw(self) -> float:
        return self.machine.disk_write_bw * self.num_nodes

    @property
    def aggregate_network_bw(self) -> float:
        # Bisection-style estimate: half the node links carry a shuffle.
        if self.num_nodes == 1:
            return self.machine.network_bw
        return self.machine.network_bw * self.num_nodes / 2.0

    @property
    def is_single_node(self) -> bool:
        return self.num_nodes == 1

    def effective_parallelism(self, tasks: int) -> int:
        """Concurrent task slots actually used by *tasks* runnable tasks."""
        if tasks <= 0:
            return 1
        return max(1, min(tasks, self.total_cores))


def ws_config() -> ClusterConfig:
    """The paper's single-node workstation configuration."""
    return ClusterConfig(name="WS", machine=WORKSTATION, num_nodes=1)


def ec2_config(num_nodes: int) -> ClusterConfig:
    """An EC2 cluster of g2.2xlarge nodes (paper uses 6, 8 and 10)."""
    return ClusterConfig(
        name=f"EC2-{num_nodes}", machine=EC2_G2_2XLARGE, num_nodes=num_nodes
    )


def PAPER_CONFIGS() -> dict[str, ClusterConfig]:
    """All four configurations of Table 2, keyed by the paper's names."""
    return {
        "WS": ws_config(),
        "EC2-10": ec2_config(10),
        "EC2-8": ec2_config(8),
        "EC2-6": ec2_config(6),
    }
