"""Simulated-time ledger.

Substrates *count* resources; the cost model converts each phase's counts
into seconds; the :class:`SimClock` is the ledger those seconds land in,
keeping the per-phase breakdown the paper reports in Table 3 (IA / IB /
DJ / TOT).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics import Counters

__all__ = ["PhaseRecord", "SimClock"]


@dataclass
class PhaseRecord:
    """One accounted phase of a distributed job.

    Parameters
    ----------
    name:
        Human-readable phase label (e.g. ``"index_left.map"``).
    counters:
        Resource counts accumulated during the phase.
    tasks:
        Number of parallel tasks the phase was divided into (1 = serial;
        the master-side steps of HadoopGIS and SpatialHadoop are serial).
    group:
        Reporting group used for Table 3's breakdown: one of
        ``"index_a"``, ``"index_b"``, ``"join"`` or ``"setup"``.
    """

    name: str
    counters: Counters
    tasks: int = 1
    group: str = "join"
    seconds: float = 0.0  # filled in by the cost model


@dataclass
class SimClock:
    """Accumulates costed phases and answers breakdown queries."""

    phases: list[PhaseRecord] = field(default_factory=list)
    #: set by :meth:`repro.cluster.costmodel.CostModel.cost_clock`; until
    #: then the per-phase ``seconds`` are meaningless zeros and breakdown
    #: queries refuse to answer.
    costed: bool = False

    def record(self, phase: PhaseRecord) -> None:
        """Append a phase to the ledger."""
        self.phases.append(phase)

    @property
    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.phases)

    def group_seconds(self, group: str) -> float:
        """Total costed seconds of one reporting group."""
        return sum(p.seconds for p in self.phases if p.group == group)

    def breakdown(self) -> dict[str, float]:
        """Seconds per reporting group, in insertion order of groups."""
        out: dict[str, float] = {}
        for p in self.phases:
            out[p.group] = out.get(p.group, 0.0) + p.seconds
        return out

    def merged_counters(self) -> Counters:
        """Union of every phase's counters (for whole-run reports)."""
        return Counters.total(p.counters for p in self.phases)

    def table(self) -> list[tuple[str, str, int, float]]:
        """(name, group, tasks, seconds) rows for reports/debugging."""
        return [(p.name, p.group, p.tasks, p.seconds) for p in self.phases]
