"""The analytical cost model: resource counts → simulated seconds.

Every substrate phase yields a :class:`~repro.cluster.simclock.PhaseRecord`
holding *counts* (bytes moved, records parsed, geometry ops, tasks).  This
module owns every constant that turns counts into seconds for a given
:class:`~repro.cluster.specs.ClusterConfig`, so all calibration lives in
one audited place.

Counter taxonomy
----------------

CPU (µs per op unless noted):
    ``geom.*``            geometry-engine ops, costed by the engine profile
    ``index.*``           index build/traversal ops
    ``parse.records/bytes``      text → object decoding (Streaming's tax)
    ``serialize.records/bytes``  object → text encoding
    ``sort.ops``          comparison ops charged as n·log2(n) by substrates
    ``cpu.ops``           generic bookkeeping ops

I/O (bytes):
    ``hdfs.bytes_read / hdfs.bytes_written``   distributed FS traffic
    ``localfs.bytes_read / localfs.bytes_written``  single-node local FS
    ``shuffle.bytes_disk``   Hadoop-style shuffle (spill + transfer + read)
    ``shuffle.bytes_mem``    Spark in-memory exchange
    ``net.bytes_broadcast``  broadcast payload, replicated to every node

Fixed overheads (counts):
    ``mr.jobs``, ``mr.tasks``, ``spark.stages``, ``spark.tasks``,
    ``streaming.processes``
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ..metrics import Counters
from .simclock import PhaseRecord, SimClock
from .specs import MB, ClusterConfig

__all__ = [
    "CostParams",
    "CostModel",
    "CostEstimate",
    "DEFAULT_CPU_COSTS",
    "register_operator",
    "estimate_operator",
]

#: Baseline per-op CPU costs in microseconds on a cpu_speed=1.0 core.
#: ``geom.*`` entries here are fallbacks — engines supply their own profile.
#:
#: Values were fitted by bounded non-negative least squares against the
#: 40 runtimes the paper reports (Tables 2-3 plus running-text figures);
#: see :mod:`repro.experiments.calibration` for the audit trail.  Some
#: constants fit to ~0 because a covariate absorbs their role (e.g. the
#: per-byte parse cost subsumes the per-record one); ``index.*`` micro
#: costs were held at small priors rather than fitted.
DEFAULT_CPU_COSTS: dict[str, float] = {
    "geom.pip_tests": 10.5,
    "geom.seg_pair_tests": 0.0226,
    "geom.dist_tests": 0.30,
    "geom.vertex_ops": 1.0,
    "geom.mbr_tests": 0.02,
    "index.build_ops": 1.2,
    "index.node_visits": 0.35,
    "index.nodes_built": 2.0,
    "index.splits": 6.0,
    "index.leaf_pair_tests": 0.08,
    "parse.records": 0.0,
    "parse.bytes": 0.0,
    "serialize.records": 0.0,
    "serialize.bytes": 0.331,
    "sort.ops": 0.0,
    "cpu.ops": 2.0,
    "deser.records": 7.44,
    "join.sweep_ops": 0.126,
    "pipe.records": 0.0,
    "spark.shuffle_records": 126.6,
    "streaming.refine_calls": 1368.4,
}


@dataclass(frozen=True)
class CostParams:
    """All tunable non-CPU constants of the model."""

    #: Per-op CPU costs (µs); merged over DEFAULT_CPU_COSTS.
    cpu_costs: Mapping[str, float] = field(default_factory=dict)
    #: Fixed per-MapReduce-job overhead (JVM spin-up, scheduling, HDFS
    #: session setup).  The fit pushed the explicit per-job constant near
    #: zero because the per-task-wave term below absorbs Hadoop's floor.
    mr_job_overhead_s: float = 0.1
    #: Additional per-job overhead *per cluster node* (task-tracker
    #: coordination, container launches across machines).  This is what
    #: makes SpatialHadoop's small indexing jobs slower on EC2-10 than on
    #: the workstation in Table 3.
    mr_job_pernode_s: float = 0.1
    #: Per-map/reduce-task launch overhead, paid in waves across slots.
    mr_task_overhead_s: float = 9.27
    #: Spark's DAG-scheduler per-stage overhead — far below Hadoop's.
    spark_stage_overhead_s: float = 0.0
    #: Per-Spark-task overhead (threads in a running executor, not JVMs).
    spark_task_overhead_s: float = 1.82
    #: Per-process spawn cost for Hadoop Streaming's external processes.
    streaming_process_overhead_s: float = 0.0
    #: Effective in-memory copy bandwidth per node (bytes/s).
    memory_copy_bw: float = 4000 * MB
    #: GC-pressure penalty shape for in-memory engines: CPU time is
    #: multiplied by ``1 + gc_scale·max(0, p-gc_floor)/(gc_ceiling-p)``
    #: where p = peak live memory / budget.  Spark runs that barely fit
    #: (the paper's full-dataset workstation runs) thrash the collector.
    gc_scale: float = 0.10
    gc_floor: float = 0.75
    gc_ceiling: float = 1.03

    def cpu_cost(self, key: str) -> float:
        """µs per op for *key* (overrides first, then the defaults)."""
        if key in self.cpu_costs:
            return self.cpu_costs[key]
        return DEFAULT_CPU_COSTS.get(key, 0.0)


@dataclass(frozen=True)
class CostEstimate:
    """A QLever-style operator estimate: cost, output size, multiplicity.

    ``seconds`` is the modelled cost of the operator on one cluster;
    ``rows`` estimates its output cardinality and ``multiplicity`` the
    average duplication per input row (multi-assignment blow-up, 1.0 for
    assignment-free operators).  ``counters`` holds the predicted
    resource counts the seconds were priced from, so an estimate can be
    audited against a measured phase ledger key by key.
    """

    seconds: float
    rows: float = 0.0
    multiplicity: float = 1.0
    counters: Mapping[str, float] = field(default_factory=dict)
    tasks: int = 1

    @staticmethod
    def sequence(parts: "list[CostEstimate]") -> "CostEstimate":
        """Pipeline composition: seconds add, the last operator's output
        cardinality flows on, multiplicities compound."""
        if not parts:
            return CostEstimate(0.0)
        mult = 1.0
        for p in parts:
            mult *= p.multiplicity
        return CostEstimate(
            seconds=sum(p.seconds for p in parts),
            rows=parts[-1].rows,
            multiplicity=mult,
        )


#: Registry of per-operator estimators.  Each entry maps an operator name
#: (``ingest``, ``partition``, ``index_build``, ``global_join.*``,
#: ``local_join.<algorithm>``, ``refine``) to a callable
#: ``fn(model, **context) -> CostEstimate`` that predicts the operator's
#: resource counts from dataset statistics and prices them through the
#: SAME :class:`CostModel` components that price measured phases — one
#: costing path for estimates and measurements alike.  Estimators live in
#: :mod:`repro.plan.estimate` and register themselves here on import.
OPERATOR_ESTIMATORS: dict[str, Callable[..., CostEstimate]] = {}


def register_operator(name: str):
    """Class decorator registering an operator estimator under *name*."""

    def deco(fn: Callable[..., CostEstimate]):
        OPERATOR_ESTIMATORS[name] = fn
        return fn

    return deco


def estimate_operator(name: str, model: "CostModel", **context) -> CostEstimate:
    """Run the registered estimator *name* against *model*."""
    if name not in OPERATOR_ESTIMATORS:
        # The built-in estimators register on import of repro.plan.
        from importlib import import_module

        import_module("repro.plan.estimate")
    try:
        fn = OPERATOR_ESTIMATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown operator {name!r}; registered: "
            f"{sorted(OPERATOR_ESTIMATORS)}"
        ) from None
    return fn(model, **context)


class CostModel:
    """Costs :class:`PhaseRecord` objects for one cluster configuration."""

    def __init__(
        self,
        cluster: ClusterConfig,
        *,
        params: Optional[CostParams] = None,
        engine_profile: Optional[Mapping[str, float]] = None,
        memory_pressure: float = 0.0,
    ):
        self.cluster = cluster
        self.params = params or CostParams()
        #: Per-op µs for ``geom.*`` counters; overrides the defaults so the
        #: GEOS-like engine's slowness flows into simulated time.
        self.engine_profile = dict(engine_profile or {})
        #: peak live memory / budget of the run being costed (0 = off).
        self.memory_pressure = memory_pressure

    def gc_penalty(self) -> float:
        """CPU multiplier for garbage-collection thrash near capacity."""
        p = min(self.memory_pressure, 1.0)
        params = self.params
        if p <= params.gc_floor:
            return 1.0
        return 1.0 + params.gc_scale * (p - params.gc_floor) / (params.gc_ceiling - p)

    # ------------------------------------------------------------ components
    def component_seconds(
        self, counters: Mapping[str, float], tasks: int = 1
    ) -> dict[str, float]:
        """The four cost components for one counter ledger.

        The single pricing path: measured phases (:meth:`phase_seconds`),
        cost explanations (:mod:`repro.experiments.explain`) and planner
        estimates (:mod:`repro.plan`) all price counters through here, so
        an estimate and a measurement of the same operator differ only in
        the counts, never in the constants.
        """
        counters = (
            counters if isinstance(counters, Counters) else Counters(counters)
        )
        return {
            "cpu": self._cpu_seconds(counters, tasks),
            "io": self._io_seconds(counters),
            "shuffle": self._shuffle_seconds(counters),
            "overhead": self._overhead_seconds(counters),
        }

    def seconds_for(
        self, counters: Mapping[str, float], tasks: int = 1
    ) -> float:
        """Total simulated seconds for one counter ledger."""
        return sum(self.component_seconds(counters, tasks).values())

    def _cpu_seconds(self, counters: Counters, tasks: int) -> float:
        micros = 0.0
        for key, count in counters.items():
            if key in self.engine_profile:
                micros += count * self.engine_profile[key]
            else:
                micros += count * self.params.cpu_cost(key)
        parallel = self.cluster.effective_parallelism(tasks)
        return (
            micros / 1e6 / (self.cluster.machine.cpu_speed * parallel)
            * self.gc_penalty()
        )

    def _io_seconds(self, counters: Counters) -> float:
        c = self.cluster
        secs = 0.0
        secs += counters["hdfs.bytes_read"] / c.aggregate_disk_read_bw
        secs += (
            counters["hdfs.bytes_written"]
            * c.hdfs_replication
            / c.aggregate_disk_write_bw
        )
        # Local-FS steps run on one machine by definition.
        secs += counters["localfs.bytes_read"] / c.machine.disk_read_bw
        secs += counters["localfs.bytes_written"] / c.machine.disk_write_bw
        return secs

    def _shuffle_seconds(self, counters: Counters) -> float:
        c = self.cluster
        secs = 0.0
        disk_bytes = counters["shuffle.bytes_disk"]
        if disk_bytes:
            # Map-side spill + reduce-side read always hit disk in Hadoop.
            secs += disk_bytes / c.aggregate_disk_write_bw
            secs += disk_bytes / c.aggregate_disk_read_bw
            if not c.is_single_node:
                remote_fraction = (c.num_nodes - 1) / c.num_nodes
                secs += disk_bytes * remote_fraction / c.aggregate_network_bw
        mem_bytes = counters["shuffle.bytes_mem"]
        if mem_bytes:
            secs += mem_bytes / (self.params.memory_copy_bw * c.num_nodes)
            if not c.is_single_node:
                remote_fraction = (c.num_nodes - 1) / c.num_nodes
                secs += mem_bytes * remote_fraction / c.aggregate_network_bw
        bcast = counters["net.bytes_broadcast"]
        if bcast:
            if c.is_single_node:
                secs += bcast / self.params.memory_copy_bw
            else:
                secs += bcast * (c.num_nodes - 1) / c.aggregate_network_bw
        return secs

    def _overhead_seconds(self, counters: Counters) -> float:
        """Fixed framework overheads, paid in waves across task slots."""
        p, c = self.params, self.cluster

        def waves(n_tasks: float) -> float:
            return math.ceil(n_tasks / c.total_cores) if n_tasks else 0.0

        secs = 0.0
        secs += counters["mr.jobs"] * (
            p.mr_job_overhead_s + p.mr_job_pernode_s * c.num_nodes
        )
        secs += waves(counters["mr.tasks"]) * p.mr_task_overhead_s
        secs += counters["spark.stages"] * p.spark_stage_overhead_s
        secs += waves(counters["spark.tasks"]) * p.spark_task_overhead_s
        secs += waves(counters["streaming.processes"]) * p.streaming_process_overhead_s
        return secs

    # ---------------------------------------------------------------- public
    def phase_seconds(self, phase: PhaseRecord) -> float:
        """Simulated seconds for one phase on this cluster."""
        return self.seconds_for(phase.counters, phase.tasks)

    def price(
        self, counters: Mapping[str, float], tasks: int = 1, *,
        rows: float = 0.0, multiplicity: float = 1.0,
    ) -> CostEstimate:
        """Price predicted *counters* into a :class:`CostEstimate`."""
        return CostEstimate(
            seconds=self.seconds_for(counters, tasks),
            rows=rows,
            multiplicity=multiplicity,
            counters=dict(counters),
            tasks=tasks,
        )

    def cost_clock(self, clock: SimClock) -> SimClock:
        """Fill in ``seconds`` for every phase of a clock, in place."""
        for phase in clock.phases:
            phase.seconds = self.phase_seconds(phase)
        clock.costed = True
        return clock
