"""Cluster model: hardware specs, simulated-time ledger, cost model.

The four hardware configurations of the paper (WS, EC2-10/8/6) live in
:mod:`repro.cluster.specs`; the counts→seconds conversion constants live
in :mod:`repro.cluster.costmodel`.
"""

from .costmodel import DEFAULT_CPU_COSTS, CostModel, CostParams
from .simclock import PhaseRecord, SimClock
from .specs import (
    EC2_G2_2XLARGE,
    GB,
    MB,
    PAPER_CONFIGS,
    WORKSTATION,
    ClusterConfig,
    MachineSpec,
    ec2_config,
    ws_config,
)

__all__ = [
    "MachineSpec",
    "ClusterConfig",
    "WORKSTATION",
    "EC2_G2_2XLARGE",
    "ws_config",
    "ec2_config",
    "PAPER_CONFIGS",
    "GB",
    "MB",
    "SimClock",
    "PhaseRecord",
    "CostModel",
    "CostParams",
    "DEFAULT_CPU_COSTS",
]
