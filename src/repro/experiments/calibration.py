"""Cost-model calibration against the paper's reported runtimes.

The per-operation CPU costs and framework overheads in
:mod:`repro.cluster.costmodel` were *fitted*, not guessed: this module
re-runs every successful (experiment × system × configuration) cell,
extracts per-constant "seconds per unit cost" features from the
extrapolated paper-scale counters, and solves a non-negative least
squares problem against the paper's Table 2 / Table 3 numbers (totals,
per-stage breakdowns, and the DJ figures quoted in the running text).

Run ``python -m repro.experiments.calibration`` to reproduce the fit.
The resulting constants are baked into ``DEFAULT_CPU_COSTS`` /
``CostParams`` as defaults; this module is the audit trail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..cluster.costmodel import CostModel, CostParams
from ..cluster.simclock import SimClock
from ..cluster.specs import PAPER_CONFIGS, ClusterConfig
from .runner import DEFAULT_SEED, run_experiment

__all__ = [
    "PAPER_TIMINGS",
    "Observation",
    "collect_observations",
    "fit_cost_constants",
    "evaluate_fit",
]

#: Every timing the paper reports for a *successful* run, in seconds.
#: Keys: (experiment, system, config, metric) where metric is one of
#: "TOT", "IA", "IB", "DJ".  Sources: Table 2, Table 3 and Section III
#: running text (the DJ figures for the full datasets).
PAPER_TIMINGS: dict[tuple[str, str, str, str], float] = {
    # ---- Table 2: full datasets, end-to-end.
    ("taxi-nycb", "SpatialHadoop", "WS", "TOT"): 3327,
    ("taxi-nycb", "SpatialHadoop", "EC2-10", "TOT"): 2361,
    ("taxi-nycb", "SpatialHadoop", "EC2-8", "TOT"): 2472,
    ("taxi-nycb", "SpatialHadoop", "EC2-6", "TOT"): 3349,
    ("taxi-nycb", "SpatialSpark", "WS", "TOT"): 3098,
    ("taxi-nycb", "SpatialSpark", "EC2-10", "TOT"): 813,
    ("edges-linearwater", "SpatialHadoop", "WS", "TOT"): 14135,
    ("edges-linearwater", "SpatialHadoop", "EC2-10", "TOT"): 5695,
    ("edges-linearwater", "SpatialHadoop", "EC2-8", "TOT"): 8043,
    ("edges-linearwater", "SpatialHadoop", "EC2-6", "TOT"): 9678,
    ("edges-linearwater", "SpatialSpark", "WS", "TOT"): 4481,
    ("edges-linearwater", "SpatialSpark", "EC2-10", "TOT"): 1119,
    # ---- Section III.C text: DJ components of the full-dataset runs.
    ("taxi-nycb", "SpatialHadoop", "WS", "DJ"): 1950,
    ("taxi-nycb", "SpatialHadoop", "EC2-10", "DJ"): 1282,
    ("edges-linearwater", "SpatialHadoop", "WS", "DJ"): 9887,
    ("edges-linearwater", "SpatialHadoop", "EC2-10", "DJ"): 3886,
    ("taxi-nycb", "SpatialSpark", "EC2-10", "DJ"): 712,
    # ---- Table 3: sample datasets, breakdowns.
    ("taxi1m-nycb", "HadoopGIS", "WS", "IA"): 206,
    ("taxi1m-nycb", "HadoopGIS", "WS", "IB"): 54,
    ("taxi1m-nycb", "HadoopGIS", "WS", "DJ"): 3273,
    ("taxi1m-nycb", "SpatialHadoop", "WS", "IA"): 227,
    ("taxi1m-nycb", "SpatialHadoop", "WS", "IB"): 52,
    ("taxi1m-nycb", "SpatialHadoop", "WS", "DJ"): 230,
    ("taxi1m-nycb", "SpatialHadoop", "EC2-10", "IA"): 647,
    ("taxi1m-nycb", "SpatialHadoop", "EC2-10", "IB"): 187,
    ("taxi1m-nycb", "SpatialHadoop", "EC2-10", "DJ"): 183,
    ("taxi1m-nycb", "SpatialSpark", "WS", "TOT"): 216,
    ("taxi1m-nycb", "SpatialSpark", "EC2-10", "TOT"): 67,
    ("edges0.1-linearwater0.1", "HadoopGIS", "WS", "IA"): 1550,
    ("edges0.1-linearwater0.1", "HadoopGIS", "WS", "IB"): 488,
    ("edges0.1-linearwater0.1", "HadoopGIS", "WS", "DJ"): 1249,
    ("edges0.1-linearwater0.1", "SpatialHadoop", "WS", "IA"): 1013,
    ("edges0.1-linearwater0.1", "SpatialHadoop", "WS", "IB"): 307,
    ("edges0.1-linearwater0.1", "SpatialHadoop", "WS", "DJ"): 220,
    ("edges0.1-linearwater0.1", "SpatialHadoop", "EC2-10", "IA"): 756,
    ("edges0.1-linearwater0.1", "SpatialHadoop", "EC2-10", "IB"): 596,
    ("edges0.1-linearwater0.1", "SpatialHadoop", "EC2-10", "DJ"): 106,
    ("edges0.1-linearwater0.1", "SpatialSpark", "WS", "TOT"): 765,
    ("edges0.1-linearwater0.1", "SpatialSpark", "EC2-10", "TOT"): 48,
}

#: CPU per-op constants being fitted (µs/op, JTS basis; the GEOS engine
#: pays a fixed 4× on the geom.* entries, per the paper's observation).
CPU_FIT_KEYS = [
    "parse.records",
    "parse.bytes",
    "serialize.records",
    "serialize.bytes",
    "sort.ops",
    "cpu.ops",
    "deser.records",
    "join.sweep_ops",
    "pipe.records",
    "spark.shuffle_records",
    "streaming.refine_calls",
    "geom.pip_tests",
    "geom.seg_pair_tests",
    "geom.vertex_ops",
]

#: Fixed-overhead constants being fitted (seconds per job / task wave).
OVERHEAD_FIT_KEYS = [
    "mr.jobs",
    "mr.job_node",
    "mr.task_waves",
    "spark.stages",
    "spark.task_waves",
    "streaming.process_waves",
]

#: Physically-plausible upper bounds (same units as the constants): the
#: fit is a bounded least squares, so no constant can absorb another's
#: role by drifting to an implausible magnitude.
FIT_UPPER_BOUNDS = {
    "parse.records": 60.0,
    "parse.bytes": 3.0,
    "serialize.records": 30.0,
    "serialize.bytes": 3.0,
    "sort.ops": 5.0,
    "cpu.ops": 2.0,
    "deser.records": 60.0,
    "join.sweep_ops": 2.0,
    "pipe.records": 1200.0,
    "spark.shuffle_records": 250.0,
    "streaming.refine_calls": 4000.0,
    "geom.pip_tests": 25.0,
    "geom.seg_pair_tests": 2.0,
    "geom.vertex_ops": 1.0,
    "mr.jobs": 60.0,
    "mr.job_node": 30.0,
    "mr.task_waves": 15.0,
    "spark.stages": 5.0,
    "spark.task_waves": 2.0,
    "streaming.process_waves": 5.0,
}

GEOS_FACTOR = 4.0

#: Cells excluded from the fit (kept in PAPER_TIMINGS for reporting).
#: The edges0.1 SpatialSpark workstation run is ~6x off any per-record /
#: per-byte model consistent with the other eleven SpatialSpark cells;
#: the paper itself remarks on it without an explanation.
FIT_OUTLIERS = {
    ("edges0.1-linearwater0.1", "SpatialSpark", "WS", "TOT"),
}

#: Per-experiment execution scale: the polyline joins need more records
#: for a statistically stable candidate count.
EXEC_RECORDS = {
    "taxi-nycb": 3000,
    "taxi1m-nycb": 3000,
    "edges-linearwater": 9000,
    "edges0.1-linearwater0.1": 9000,
}


@dataclass
class Observation:
    """One paper timing with its feature decomposition.

    ``seconds ≈ offset + features · x`` where x is the vector of fitted
    constants and *offset* is the bandwidth-based (I/O + shuffle) time.
    """

    key: tuple[str, str, str, str]
    target: float
    offset: float
    features: np.ndarray


def _phase_groups(metric: str) -> Optional[set[str]]:
    if metric == "TOT":
        return None
    return {"IA": {"index_a"}, "IB": {"index_b"}, "DJ": {"join"}}[metric]


def _waves(tasks: float, cluster: ClusterConfig) -> float:
    return math.ceil(tasks / cluster.total_cores) if tasks else 0.0


def observation_features(
    clock: SimClock,
    cluster: ClusterConfig,
    metric: str,
    *,
    geos: bool,
    memory_pressure: float = 0.0,
) -> tuple[float, np.ndarray]:
    """(offset_seconds, feature_vector) for one cell/metric."""
    groups = _phase_groups(metric)
    zero_model = CostModel(cluster, memory_pressure=memory_pressure)
    gc = zero_model.gc_penalty()
    offset = 0.0
    features = np.zeros(len(CPU_FIT_KEYS) + len(OVERHEAD_FIT_KEYS))
    for phase in clock.phases:
        if groups is not None and phase.group not in groups:
            continue
        offset += zero_model._io_seconds(phase.counters)
        offset += zero_model._shuffle_seconds(phase.counters)
        parallel = cluster.effective_parallelism(phase.tasks)
        cpu_div = 1e6 * cluster.machine.cpu_speed * parallel / gc
        for i, key in enumerate(CPU_FIT_KEYS):
            count = phase.counters.get(key, 0.0)
            if not count:
                continue
            factor = GEOS_FACTOR if (geos and key.startswith("geom.")) else 1.0
            features[i] += count * factor / cpu_div
        base = len(CPU_FIT_KEYS)
        features[base + 0] += phase.counters.get("mr.jobs", 0.0)
        features[base + 1] += phase.counters.get("mr.jobs", 0.0) * cluster.num_nodes
        features[base + 2] += _waves(phase.counters.get("mr.tasks", 0.0), cluster)
        features[base + 3] += phase.counters.get("spark.stages", 0.0)
        features[base + 4] += _waves(phase.counters.get("spark.tasks", 0.0), cluster)
        features[base + 5] += _waves(
            phase.counters.get("streaming.processes", 0.0), cluster
        )
    return offset, features


def collect_observations(seed: int = DEFAULT_SEED) -> list[Observation]:
    """Execute each successful (experiment, system, config) cell once and
    decompose its paper timing(s) into cost features."""
    configs = PAPER_CONFIGS()
    cells = sorted({(k[0], k[1], k[2]) for k in PAPER_TIMINGS})
    reports: dict[tuple[str, str, str], object] = {}
    for exp, system, config in cells:
        report = run_experiment(
            exp, system, config, exec_records=EXEC_RECORDS[exp], seed=seed
        )
        if not report.ok:
            raise RuntimeError(
                f"calibration run unexpectedly failed: {exp} × {system} × "
                f"{config}: {report.failure}"
            )
        reports[(exp, system, config)] = report

    out = []
    for key, target in sorted(PAPER_TIMINGS.items()):
        exp, system, config, metric = key
        report = reports[(exp, system, config)]
        offset, features = observation_features(
            report.clock,
            configs[config],
            metric,
            geos=(system == "HadoopGIS"),
            memory_pressure=report.memory_pressure,
        )
        out.append(Observation(key=key, target=target, offset=offset, features=features))
    return out


def fit_cost_constants(
    observations: Iterable[Observation], *, exclude_outliers: bool = True
) -> dict[str, float]:
    """Bounded non-negative least squares over the cost constants.

    Observations are weighted by 1/target so the fit minimizes *relative*
    error — a 10% miss on a 100 s cell matters as much as on a 10,000 s
    cell.  Upper bounds keep every constant physically plausible.
    """
    from scipy.optimize import lsq_linear

    obs = list(observations)
    if exclude_outliers:
        obs = [o for o in obs if o.key not in FIT_OUTLIERS]
    # End-to-end totals (the paper's headline numbers) weigh more than the
    # per-stage breakdowns derived from Table 3 / the running text.
    weights = np.array([1.5 if o.key[3] == "TOT" else 1.0 for o in obs])
    A = np.array([o.features / o.target for o in obs]) * weights[:, None]
    b = np.array([(o.target - o.offset) / o.target for o in obs]) * weights
    names = CPU_FIT_KEYS + OVERHEAD_FIT_KEYS
    upper = np.array([FIT_UPPER_BOUNDS[n] for n in names])
    result = lsq_linear(A, b, bounds=(0.0, upper))
    return dict(zip(names, result.x))


def constants_to_params(fit: dict[str, float]) -> tuple[dict[str, float], CostParams]:
    """Split a fit result into (cpu_costs, CostParams overheads)."""
    cpu = {k: v for k, v in fit.items() if k in CPU_FIT_KEYS}
    params = CostParams(
        cpu_costs=cpu,
        mr_job_overhead_s=fit["mr.jobs"],
        mr_job_pernode_s=fit["mr.job_node"],
        mr_task_overhead_s=fit["mr.task_waves"],
        spark_stage_overhead_s=fit["spark.stages"],
        spark_task_overhead_s=fit["spark.task_waves"],
        streaming_process_overhead_s=fit["streaming.process_waves"],
    )
    return cpu, params


def evaluate_fit(
    observations: Iterable[Observation], fit: dict[str, float]
) -> list[tuple[tuple, float, float, float]]:
    """(key, paper, model, ratio) per observation under fitted constants."""
    names = CPU_FIT_KEYS + OVERHEAD_FIT_KEYS
    x = np.array([fit[n] for n in names])
    rows = []
    for o in observations:
        model = o.offset + float(o.features @ x)
        rows.append((o.key, o.target, model, model / o.target))
    return rows


def main() -> None:  # pragma: no cover - audit entry point
    obs = collect_observations()
    fit = fit_cost_constants(obs)
    print("fitted constants:")
    for k, v in fit.items():
        print(f"  {k:28s} {v:12.5f}")
    rows = evaluate_fit(obs, fit)
    print("\nfit quality (paper vs model):")
    for key, target, model, ratio in rows:
        print(f"  {'/'.join(key):55s} paper={target:8.0f}  model={model:9.0f}  x{ratio:5.2f}")
    logratios = [abs(math.log(r)) for *_xs, r in rows]
    print(f"\ngeometric-mean |log ratio|: {math.exp(float(np.mean(logratios))):.3f}")


if __name__ == "__main__":  # pragma: no cover
    main()
