"""Experiment runner: system × experiment × cluster → costed run report.

The runner reproduces the paper's methodology end to end:

1. generate the two synthetic datasets at an execution scale,
2. run the chosen system on the chosen (simulated) cluster — the join is
   *really executed*; failures (broken pipes, OOM) emerge from the
   substrates using the logical scale factors,
3. extrapolate the measured per-phase resource counts to paper scale,
4. convert counts to simulated seconds with the cluster cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..cluster.costmodel import CostParams
from ..cluster.specs import PAPER_CONFIGS, ClusterConfig, ec2_config
from ..data.catalog import DatasetSpec, GeneratedDataset, dataset
from ..data.loaders import encode_dataset
from ..exec.backend import ExecutorBackend
from ..systems import make_system
from ..systems.base import RunEnvironment, RunReport
from .extrapolate import ScaleInfo, pair_factor

__all__ = [
    "ExperimentSpec",
    "EXPERIMENTS",
    "DEFAULT_SEED",
    "run_experiment",
    "mean_mbr_dims",
    "full_scale_dims",
]

#: The one default RNG seed of the repo.  The CLI, ``run_experiment`` and
#: the validation harness all used to disagree (1 vs 0 vs 0), so the same
#: nominal command produced different tables depending on the entry point.
DEFAULT_SEED = 1


@dataclass(frozen=True)
class ExperimentSpec:
    """One of the paper's four experiments (left × right dataset pair)."""

    exp_id: str
    left: str
    right: str
    description: str = ""


#: The experiments of Tables 2 and 3.
EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.exp_id: spec
    for spec in [
        ExperimentSpec(
            "taxi-nycb", "taxi", "nycb",
            "point-in-polygon join of taxi pickups with census blocks (Table 2)",
        ),
        ExperimentSpec(
            "edges-linearwater", "edges", "linearwater",
            "polyline intersection join of TIGER edges with linearwater (Table 2)",
        ),
        ExperimentSpec(
            "taxi1m-nycb", "taxi1m", "nycb",
            "one month of taxi data against census blocks (Table 3)",
        ),
        ExperimentSpec(
            "edges0.1-linearwater0.1", "edges0.1", "linearwater0.1",
            "10% samples of the TIGER datasets (Table 3)",
        ),
    ]
}


def mean_mbr_dims(geometries: Sequence) -> tuple[float, float]:
    """Mean MBR width and height of a geometry batch."""
    if not geometries:
        return (0.0, 0.0)
    widths = np.array([g.mbr.width for g in geometries])
    heights = np.array([g.mbr.height for g in geometries])
    return float(widths.mean()), float(heights.mean())


def full_scale_dims(spec: DatasetSpec, generated: GeneratedDataset) -> tuple[float, float]:
    """Mean object MBR dims at the paper's record count.

    Tessellating polygon datasets shrink per-object extents as the record
    count grows (same domain, more cells: linear dims ∝ 1/sqrt(n)); point
    and polyline generators keep object sizes constant.
    """
    exec_dims = mean_mbr_dims(generated.geometries)
    if spec.kind == "polygon":
        shrink = np.sqrt(generated.actual_records / spec.logical_records)
        return (exec_dims[0] * shrink, exec_dims[1] * shrink)
    return exec_dims


def _staged_bytes(geometries: Sequence) -> int:
    return sum(len(line) + 1 for line in encode_dataset(geometries))


def resolve_cluster(cluster: "str | ClusterConfig") -> ClusterConfig:
    """Accept a paper config name, an ``EC2-<n>`` for any n, or a config."""
    if isinstance(cluster, ClusterConfig):
        return cluster
    configs = PAPER_CONFIGS()
    if cluster in configs:
        return configs[cluster]
    if cluster.startswith("EC2-"):
        try:
            return ec2_config(int(cluster.split("-", 1)[1]))
        except ValueError:
            pass
    raise ValueError(
        f"unknown cluster {cluster!r}; options: {sorted(configs)} or EC2-<n>"
    )


def run_experiment(
    exp_id: str,
    system_name: str,
    cluster_name: "str | ClusterConfig" = "WS",
    *,
    exec_records: int = 2500,
    seed: int = DEFAULT_SEED,
    cost_params: Optional[CostParams] = None,
    system_kwargs: Optional[dict] = None,
    workers: int = 1,
    backend: "str | ExecutorBackend | None" = None,
    trace: bool = False,
) -> RunReport:
    """Run one cell of Table 2/3 and return a costed, paper-scale report.

    *exec_records* is the per-dataset execution-scale target; results
    are extrapolated to the catalog's logical sizes before costing.
    *cluster_name* accepts the paper's four names, ``EC2-<n>`` for any
    node count (scalability sweeps), or a :class:`ClusterConfig`.
    *workers* / *backend* pick the task execution backend (serial by
    default); parallel backends change wall-clock time only — reported
    counts, seconds and failures are identical by construction.
    *trace* records a :mod:`repro.trace` span tree of the run and
    attaches it as ``report.trace`` — results and counters are
    bit-identical with tracing on or off.
    """
    try:
        spec = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; options: {sorted(EXPERIMENTS)}"
        ) from None
    cluster = resolve_cluster(cluster_name)

    left_spec, right_spec = dataset(spec.left), dataset(spec.right)
    left = left_spec.generate(
        scale=min(1.0, exec_records / left_spec.logical_records), seed=seed
    )
    right = right_spec.generate(
        scale=min(1.0, exec_records / right_spec.logical_records), seed=seed
    )

    staged_a = _staged_bytes(left.geometries)
    staged_b = _staged_bytes(right.geometries)
    scale_a = (left.record_scale, left_spec.logical_bytes / max(staged_a, 1))
    scale_b = (right.record_scale, right_spec.logical_bytes / max(staged_b, 1))

    # Block sizes: make each staged input's block count match its
    # paper-scale structure (ceil(logical_bytes / 128 MB), capped for
    # sanity) so task counts and block-pairing fan-out need no
    # extrapolation at all.
    def logical_blocks(nbytes: int) -> int:
        return int(np.clip(-(-nbytes // (128 * 1024**2)), 1, 64))

    bs_a = max(256, staged_a // logical_blocks(left_spec.logical_bytes))
    bs_b = max(256, staged_b // logical_blocks(right_spec.logical_bytes))
    env = RunEnvironment.create(
        cluster,
        block_size=max(bs_a, bs_b),
        scale_a=scale_a,
        scale_b=scale_b,
        seed=seed,
        workers=workers,
        backend=backend,
    )
    env.input_block_sizes.update({"/input/a": bs_a, "/input/b": bs_b})
    system = make_system(system_name, **(system_kwargs or {}))
    if trace:
        from ..trace import Tracer
        from ..trace.core import span as trace_span

        tracer = Tracer()
        with tracer.session(
            f"experiment:{exp_id}", kind="experiment", counters=env.counters,
            experiment=exp_id, system=system.name, cluster=cluster.name,
            seed=seed,
        ):
            with trace_span(system.name, kind="run", counters=env.counters):
                report = system.run(env, left.geometries, right.geometries)
        report.trace = tracer.root
    else:
        report = system.run(env, left.geometries, right.geometries)

    info = ScaleInfo(
        record_ratio_a=scale_a[0],
        record_ratio_b=scale_b[0],
        byte_ratio_a=scale_a[1],
        byte_ratio_b=scale_b[1],
        pairs=pair_factor(
            scale_a[0],
            scale_b[0],
            mean_mbr_dims(left.geometries),
            mean_mbr_dims(right.geometries),
            full_scale_dims(left_spec, left),
            full_scale_dims(right_spec, right),
        ),
        exec_records=left.actual_records + right.actual_records,
        exec_records_a=left.actual_records,
        exec_records_b=right.actual_records,
        staged_bytes_a=staged_a,
        staged_bytes_b=staged_b,
    )
    return report.costed(cost_params, cluster=cluster, scale=info)
