"""Count extrapolation: executed-scale counters → paper-scale counters.

Experiments execute at a small scale (thousands of records) and the
measured resource counts are extrapolated to the paper's dataset sizes
before costing.  Each counter belongs to a scaling class:

``records``
    Linear in the records of the phase's dataset(s): parsing, index
    inserts, per-record bookkeeping.
``bytes``
    Linear in byte volume: all I/O, shuffle and pipe traffic.
``nlogn``
    ``n·log n`` terms (sorts, index-traversal totals): linear ratio times
    a logarithmic correction.
``pairs``
    Driven by the *candidate pairs* of the spatial join (refinement geometry
    ops, candidate counts).  These scale with the product of the two
    record ratios *corrected by the change in pairwise MBR-overlap
    probability* — the polygon tessellation shrinks per-object extents as
    the dataset grows, polylines keep theirs (see ``pair_factor``).
``tasks`` / ``fixed``
    Task counts and per-job/stage constants: *not* scaled — the runner
    sizes the executed HDFS blocks so the executed task structure already
    matches the paper-scale one (ceil(logical bytes / 128 MB) blocks).

The validity of this table is tested by running the same experiment at
two scales and checking the extrapolations agree (tests/experiments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.simclock import PhaseRecord, SimClock
from ..metrics import Counters

__all__ = ["ScaleInfo", "classify_counter", "extrapolate_clock", "pair_factor"]

_CLASS_BY_EXACT = {
    "sort.ops": "nlogn",
    "index.node_visits": "nlogn",
    "mr.jobs": "fixed",
    "spark.stages": "fixed",
    "net.bytes_broadcast": "fixed",
    "mr.tasks": "tasks",
    "spark.tasks": "tasks",
    "streaming.processes": "tasks",
    "join.candidates": "pairs",
    "join.sweep_ops": "pairs",
    "index.leaf_pair_tests": "pairs",
    "streaming.refine_calls": "pairs",
    "pipe.records": "records",
    "spark.shuffle_records": "records",
    "deser.records": "records",
}

_CLASS_BY_PREFIX = [
    ("geom.", "pairs"),  # engine ops arise in refinement, which is pair-driven
    ("hdfs.bytes", "bytes"),
    ("localfs.", "bytes"),
    ("shuffle.", "bytes"),
    ("pipe.", "bytes"),
    ("parse.bytes", "bytes"),
    ("serialize.bytes", "bytes"),
    ("hdfs.records", "records"),
    ("parse.", "records"),
    ("serialize.", "records"),
    ("index.", "records"),
    ("cpu.", "records"),
]


def classify_counter(key: str) -> str:
    """Scaling class of one counter key (unknown keys scale as records)."""
    if key in _CLASS_BY_EXACT:
        return _CLASS_BY_EXACT[key]
    for prefix, cls in _CLASS_BY_PREFIX:
        if key.startswith(prefix):
            return cls
    return "records"


def pair_factor(
    ratio_a: float,
    ratio_b: float,
    exec_dims_a: tuple[float, float],
    exec_dims_b: tuple[float, float],
    full_dims_a: tuple[float, float],
    full_dims_b: tuple[float, float],
) -> float:
    """Scaling factor for candidate-pair-driven counters.

    Expected MBR-join candidates between randomly-placed objects are
    ``n_a · n_b · (w_a+w_b)(h_a+h_b) / Area``.  The factor to full scale is
    therefore ``R_a · R_b · P_full / P_exec`` with ``P ∝ (w_a+w_b)(h_a+h_b)``
    evaluated at each scale's mean object dimensions.  For a tessellating
    polygon dataset the dims shrink as the dataset grows, collapsing the
    product scaling back to the linear behaviour a tiling join actually
    exhibits; fixed-size polylines keep the full product.
    """
    p_exec = (exec_dims_a[0] + exec_dims_b[0]) * (exec_dims_a[1] + exec_dims_b[1])
    p_full = (full_dims_a[0] + full_dims_b[0]) * (full_dims_a[1] + full_dims_b[1])
    if p_exec <= 0:
        # Degenerate (point-vs-point): fall back to the smaller linear ratio.
        return min(ratio_a, ratio_b)
    return ratio_a * ratio_b * (p_full / p_exec)


@dataclass(frozen=True)
class ScaleInfo:
    """All ratios needed to extrapolate one experiment's counters."""

    record_ratio_a: float
    record_ratio_b: float
    byte_ratio_a: float
    byte_ratio_b: float
    pairs: float  # from pair_factor()
    exec_records: int  # total executed records (for the log correction)
    #: executed record counts and staged byte volumes per side — used to
    #: weight the joint ratios of phases that touch both datasets.
    exec_records_a: int = 1
    exec_records_b: int = 1
    staged_bytes_a: int = 1
    staged_bytes_b: int = 1

    @property
    def record_ratio_join(self) -> float:
        """Joint records ratio: (N_a + N_b) / (n_a + n_b)."""
        total_exec = self.exec_records_a + self.exec_records_b
        total_logical = (
            self.record_ratio_a * self.exec_records_a
            + self.record_ratio_b * self.exec_records_b
        )
        return total_logical / max(total_exec, 1)

    @property
    def byte_ratio_join(self) -> float:
        """Joint bytes ratio: (L_a + L_b) / (staged_a + staged_b)."""
        total_exec = self.staged_bytes_a + self.staged_bytes_b
        total_logical = (
            self.byte_ratio_a * self.staged_bytes_a
            + self.byte_ratio_b * self.staged_bytes_b
        )
        return total_logical / max(total_exec, 1)

    def ratios_for_group(self, group: str) -> tuple[float, float]:
        """(record_ratio, byte_ratio) applicable to a phase group."""
        if group == "index_a":
            return self.record_ratio_a, self.byte_ratio_a
        if group == "index_b":
            return self.record_ratio_b, self.byte_ratio_b
        # Join phases touch both datasets: volume-weighted joint ratios.
        return self.record_ratio_join, self.byte_ratio_join

    def log_correction(self, record_ratio: float) -> float:
        """n·log n growth beyond linear: log(N)/log(n)."""
        n = max(self.exec_records, 4)
        return math.log2(n * max(record_ratio, 1.0)) / math.log2(n)


def extrapolate_counters(counters: Counters, group: str, info: ScaleInfo) -> Counters:
    record_ratio, byte_ratio = info.ratios_for_group(group)
    logc = info.log_correction(record_ratio)
    out = Counters()
    for key, value in counters.items():
        cls = classify_counter(key)
        if cls == "records":
            out[key] = value * record_ratio
        elif cls == "bytes":
            out[key] = value * byte_ratio
        elif cls == "nlogn":
            out[key] = value * record_ratio * logc
        elif cls == "pairs":
            out[key] = value * info.pairs
        else:  # tasks / fixed: the executed structure is already logical
            out[key] = value
    return out


def extrapolate_clock(clock: SimClock, info: ScaleInfo) -> SimClock:
    """A new clock whose phases carry paper-scale counters and task counts."""
    out = SimClock()
    for phase in clock.phases:
        out.record(
            PhaseRecord(
                name=phase.name,
                counters=extrapolate_counters(phase.counters, phase.group, info),
                tasks=phase.tasks,  # executed structure is already logical
                group=phase.group,
            )
        )
    return out
