"""Self-validation: cross-system result parity on randomized workloads.

``python -m repro validate`` runs the reproduction's core correctness
premise — the three systems are different implementations of the same
query — against freshly-randomized workloads of every kind pair the
stack supports, comparing each system's output to a brute-force join.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.predicate import INTERSECTS, JoinPredicate, within_distance
from ..data import census_blocks, linear_water, taxi_points, tiger_edges
from ..data.synthetic import DOMAIN_NYC
from ..geometry import geometries_intersect, geometry_distance
from ..systems import ALL_SYSTEMS, RunEnvironment, make_system
from .runner import DEFAULT_SEED

__all__ = ["ValidationCase", "validation_cases", "run_validation"]


@dataclass(frozen=True)
class ValidationCase:
    """One randomized workload to validate."""

    name: str
    left_kind: str
    right_kind: str
    predicate: JoinPredicate
    seed: int
    size: int

    def build(self):
        """Generate the case's (left, right) geometry lists."""
        makers = {
            "points": lambda n, s: taxi_points(n, seed=s),
            "polygons": lambda n, s: census_blocks(max(n // 6, 8), seed=s),
            "edges": lambda n, s: tiger_edges(n, seed=s, domain=DOMAIN_NYC),
            "water": lambda n, s: linear_water(max(n // 3, 8), seed=s,
                                               domain=DOMAIN_NYC),
        }
        left = makers[self.left_kind](self.size, self.seed)
        right = makers[self.right_kind](self.size, self.seed + 1000)
        return left, right


def validation_cases(seed: int = DEFAULT_SEED, size: int = 400) -> list[ValidationCase]:
    """The default validation matrix: every kind pair × both predicates."""
    cases = []
    kind_pairs = [
        ("points", "polygons"),
        ("edges", "water"),
        ("water", "polygons"),
        ("points", "edges"),
    ]
    for i, (left, right) in enumerate(kind_pairs):
        cases.append(
            ValidationCase(
                name=f"{left}-{right}/intersects",
                left_kind=left, right_kind=right,
                predicate=INTERSECTS, seed=seed + i, size=size,
            )
        )
    cases.append(
        ValidationCase(
            name="points-edges/within_distance",
            left_kind="points", right_kind="edges",
            predicate=within_distance(0.003), seed=seed + 50, size=size,
        )
    )
    return cases


def _brute(left, right, predicate: JoinPredicate) -> frozenset:
    if predicate.kind == "intersects":
        return frozenset(
            (i, j)
            for i, a in enumerate(left)
            for j, b in enumerate(right)
            if a.mbr.intersects(b.mbr) and geometries_intersect(a, b)
        )
    return frozenset(
        (i, j)
        for i, a in enumerate(left)
        for j, b in enumerate(right)
        if geometry_distance(a, b) <= predicate.distance
    )


def run_validation(
    seed: int = DEFAULT_SEED, size: int = 400, verbose_print=None
) -> list[tuple[str, str, bool]]:
    """(case, system, passed) for every case × system.

    *verbose_print* receives progress lines (e.g. ``print``); results are
    compared against an independent brute-force join.
    """
    results = []
    for case in validation_cases(seed=seed, size=size):
        left, right = case.build()
        expected = _brute(left, right, case.predicate)
        for name in sorted(ALL_SYSTEMS):
            env = RunEnvironment.create(block_size=1 << 13)
            report = make_system(name).run(env, left, right, case.predicate)
            passed = report.ok and report.pairs == expected
            results.append((case.name, name, passed))
            if verbose_print:
                outcome = "ok" if passed else "MISMATCH"
                verbose_print(
                    f"  {case.name:<36} {name:<15} "
                    f"{len(report.pairs or ()):>6} pairs  {outcome}"
                )
    return results
