"""Regeneration of the paper's tables and figure.

* :func:`table1` — dataset sizes (exact catalog values).
* :func:`table2` — end-to-end runtimes of the full-dataset experiments
  under all four configurations, failures rendered as "-".
* :func:`table3` — IA / IB / DJ / TOT breakdowns of the sample-dataset
  experiments under WS and EC2-10.
* :func:`fig1` — the generalized-framework stage traces of the three
  systems (the content of Fig. 1, as checked text rather than a drawing).
* :func:`headline_comparisons` — the speedup claims from the running
  text, paper vs. reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.framework import compare_traces
from ..data.catalog import table1_rows
from ..systems import ALL_SYSTEMS, RunReport
from .runner import DEFAULT_SEED, run_experiment

__all__ = [
    "table1",
    "Table2Result",
    "table2",
    "Table3Result",
    "table3",
    "fig1",
    "headline_comparisons",
]

SYSTEM_ORDER = ["HadoopGIS", "SpatialHadoop", "SpatialSpark"]
TABLE2_CONFIGS = ["WS", "EC2-10", "EC2-8", "EC2-6"]
TABLE3_CONFIGS = ["WS", "EC2-10"]
TABLE2_EXPERIMENTS = ["taxi-nycb", "edges-linearwater"]
TABLE3_EXPERIMENTS = ["taxi1m-nycb", "edges0.1-linearwater0.1"]

#: Default execution scales (records per dataset); the polyline joins use
#: more records so the candidate-pair statistics are stable.
DEFAULT_EXEC_RECORDS = {
    "taxi-nycb": 3000,
    "taxi1m-nycb": 3000,
    "edges-linearwater": 9000,
    "edges0.1-linearwater0.1": 9000,
}


def table1() -> str:
    """Render Table 1 (dataset record counts and sizes)."""
    lines = [
        "Table 1: Experiment Dataset Sizes and Volumes",
        f"{'Dataset':<16}{'# of Records':>14}  {'Size':>8}",
    ]
    for name, records, size in table1_rows():
        lines.append(f"{name:<16}{records:>14,}  {size:>8}")
    return "\n".join(lines)


@dataclass
class Table2Result:
    """All Table-2 cells: seconds for successes, None for failures."""

    cells: dict[tuple[str, str, str], Optional[float]]
    reports: dict[tuple[str, str, str], RunReport] = field(default_factory=dict)

    def seconds(self, exp: str, system: str, config: str) -> Optional[float]:
        """Simulated seconds of a cell, or None for a failed run."""
        return self.cells[(exp, system, config)]

    def render(self) -> str:
        """Text rendering in the paper's Table-2 layout."""
        lines = [
            "Table 2: End-to-End Runtimes of Experiment Results of Full "
            "Datasets (in seconds)",
            f"{'experiment':<18}{'system':<15}" + "".join(f"{c:>9}" for c in TABLE2_CONFIGS),
        ]
        for exp in TABLE2_EXPERIMENTS:
            for system in SYSTEM_ORDER:
                row = [f"{exp:<18}{system:<15}"]
                for config in TABLE2_CONFIGS:
                    secs = self.cells[(exp, system, config)]
                    row.append(f"{secs:>9,.0f}" if secs is not None else f"{'-':>9}")
                lines.append("".join(row))
        return "\n".join(lines)

    def failure_matrix(self) -> dict[tuple[str, str, str], Optional[str]]:
        """Cell → failure kind ('broken_pipe' / 'oom') or None."""
        return {
            key: (report.failure_kind if not report.ok else None)
            for key, report in self.reports.items()
        }


def table2(
    *, exec_records: Optional[dict] = None, seed: int = DEFAULT_SEED,
    workers: int = 1, backend=None,
) -> Table2Result:
    """Run every Table-2 cell and collect the results."""
    exec_records = {**DEFAULT_EXEC_RECORDS, **(exec_records or {})}
    cells, reports = {}, {}
    for exp in TABLE2_EXPERIMENTS:
        for system in SYSTEM_ORDER:
            for config in TABLE2_CONFIGS:
                report = run_experiment(
                    exp, system, config, exec_records=exec_records[exp],
                    seed=seed, workers=workers, backend=backend,
                )
                key = (exp, system, config)
                reports[key] = report
                cells[key] = report.clock.total_seconds if report.ok else None
    return Table2Result(cells=cells, reports=reports)


@dataclass
class Table3Result:
    """All Table-3 cells: {(exp, system, config): breakdown dict or None}."""

    cells: dict[tuple[str, str, str], Optional[dict]]
    reports: dict[tuple[str, str, str], RunReport] = field(default_factory=dict)

    def render(self) -> str:
        """Text rendering in the paper's Table-3 layout."""
        lines = [
            "Table 3: Breakdown Runtimes of Experiment Results Using Sample "
            "Datasets (in seconds)",
            f"{'experiment':<26}{'system':<15}{'config':<8}"
            + "".join(f"{m:>8}" for m in ("IA", "IB", "DJ", "TOT")),
        ]
        for exp in TABLE3_EXPERIMENTS:
            for system in SYSTEM_ORDER:
                for config in TABLE3_CONFIGS:
                    b = self.cells[(exp, system, config)]
                    row = [f"{exp:<26}{system:<15}{config:<8}"]
                    if b is None:
                        row += [f"{'-':>8}"] * 4
                    elif system == "SpatialSpark":
                        # The paper reports only end-to-end time for
                        # SpatialSpark (async execution blurs the stages).
                        row += [f"{'':>8}"] * 3 + [f"{b['TOT']:>8,.0f}"]
                    else:
                        row += [f"{b[m]:>8,.0f}" for m in ("IA", "IB", "DJ", "TOT")]
                    lines.append("".join(row))
        return "\n".join(lines)


def table3(
    *, exec_records: Optional[dict] = None, seed: int = DEFAULT_SEED,
    workers: int = 1, backend=None,
) -> Table3Result:
    """Run every Table-3 cell and collect IA/IB/DJ/TOT breakdowns."""
    exec_records = {**DEFAULT_EXEC_RECORDS, **(exec_records or {})}
    cells, reports = {}, {}
    for exp in TABLE3_EXPERIMENTS:
        for system in SYSTEM_ORDER:
            for config in TABLE3_CONFIGS:
                report = run_experiment(
                    exp, system, config, exec_records=exec_records[exp],
                    seed=seed, workers=workers, backend=backend,
                )
                key = (exp, system, config)
                reports[key] = report
                cells[key] = report.breakdown_seconds() if report.ok else None
    return Table3Result(cells=cells, reports=reports)


def fig1() -> str:
    """Render the Fig.-1 generalized framework: per-system stage traces."""
    traces = [ALL_SYSTEMS[name]().stage_trace() for name in SYSTEM_ORDER]
    parts = [
        "Fig. 1: Generalized framework for analyzing design choices",
        "",
        compare_traces(traces),
        "",
    ]
    parts += [t.render() + "\n" for t in traces]
    return "\n".join(parts)


#: The running-text claims of Section III, as (label, paper value) plus a
#: function of (Table2Result, Table3Result) computing our value.
def headline_comparisons(t2: Table2Result, t3: Table3Result) -> list[tuple[str, float, Optional[float]]]:
    """(claim, paper ratio, our ratio) rows for EXPERIMENTS.md."""

    def ratio2(exp, config):
        sh = t2.seconds(exp, "SpatialHadoop", config)
        ss = t2.seconds(exp, "SpatialSpark", config)
        return sh / ss if sh and ss else None

    def tot3(exp, system, config):
        cell = t3.cells[(exp, system, config)]
        return cell["TOT"] if cell else None

    def ratio3(exp, config):
        sh = tot3(exp, "SpatialHadoop", config)
        ss = tot3(exp, "SpatialSpark", config)
        return sh / ss if sh and ss else None

    def dj_ratio3(exp, config, a, b):
        ca = t3.cells[(exp, a, config)]
        cb = t3.cells[(exp, b, config)]
        return ca["DJ"] / cb["DJ"] if ca and cb else None

    return [
        ("SpatialSpark over SpatialHadoop, taxi-nycb, EC2-10 (full)", 2.9,
         ratio2("taxi-nycb", "EC2-10")),
        ("SpatialSpark over SpatialHadoop, edges-linearwater, EC2-10 (full)", 5.1,
         ratio2("edges-linearwater", "EC2-10")),
        ("SpatialSpark over SpatialHadoop, taxi-nycb, WS (full)", 1.07,
         ratio2("taxi-nycb", "WS")),
        ("SpatialSpark over SpatialHadoop, edges-linearwater, WS (full)", 3.2,
         ratio2("edges-linearwater", "WS")),
        ("SpatialHadoop over HadoopGIS DJ, taxi1m-nycb, WS", 14.0,
         dj_ratio3("taxi1m-nycb", "WS", "HadoopGIS", "SpatialHadoop")),
        ("SpatialHadoop over HadoopGIS DJ, edges0.1-linearwater0.1, WS", 5.7,
         dj_ratio3("edges0.1-linearwater0.1", "WS", "HadoopGIS", "SpatialHadoop")),
        ("SpatialSpark over SpatialHadoop, taxi1m-nycb, WS (TOT)", 2.2,
         ratio3("taxi1m-nycb", "WS")),
        ("SpatialSpark over SpatialHadoop, taxi1m-nycb, EC2-10 (TOT)", 15.0,
         ratio3("taxi1m-nycb", "EC2-10")),
        ("SpatialSpark over SpatialHadoop, edges0.1-lw0.1, WS (TOT)", 2.0,
         ratio3("edges0.1-linearwater0.1", "WS")),
        ("SpatialSpark over SpatialHadoop, edges0.1-lw0.1, EC2-10 (TOT)", 30.0,
         ratio3("edges0.1-linearwater0.1", "EC2-10")),
    ]
