"""Cost-model sensitivity analysis.

The reproduction's headline conclusions (who wins, by roughly how much)
should not be knife-edge artifacts of the fitted constants.  This module
re-costs an already-executed experiment pair under perturbed constants
and reports how the SpatialSpark-over-SpatialHadoop speedup moves — the
robustness check a reviewer would ask for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..cluster.costmodel import DEFAULT_CPU_COSTS, CostModel, CostParams
from .runner import DEFAULT_SEED, resolve_cluster, run_experiment

__all__ = ["SensitivityRow", "speedup_sensitivity", "render_sensitivity"]

#: Constants worth perturbing: the big CPU terms plus the overheads.
DEFAULT_KNOBS = [
    "parse.bytes",
    "serialize.bytes",
    "deser.records",
    "spark.shuffle_records",
    "geom.pip_tests",
    "geom.seg_pair_tests",
    "mr_task_overhead_s",
    "mr_job_overhead_s",
]


@dataclass(frozen=True)
class SensitivityRow:
    """Speedup under one perturbed constant."""

    knob: str
    factor: float
    speedup: float


def _perturbed_params(knob: str, factor: float) -> CostParams:
    """CostParams with one constant multiplied by *factor*."""
    base = CostParams()
    if knob in DEFAULT_CPU_COSTS:
        cpu = dict(base.cpu_costs)
        cpu[knob] = DEFAULT_CPU_COSTS[knob] * factor
        return replace(base, cpu_costs=cpu)
    value = getattr(base, knob)
    return replace(base, **{knob: value * factor})


def speedup_sensitivity(
    exp_id: str = "taxi-nycb",
    config: str = "EC2-10",
    *,
    exec_records: int = 2000,
    seed: int = DEFAULT_SEED,
    knobs: Optional[list[str]] = None,
    factors: tuple[float, ...] = (0.5, 1.0, 2.0),
) -> list[SensitivityRow]:
    """SpatialSpark-over-SpatialHadoop speedup under perturbed constants.

    Each system executes **once**; only the costing is repeated, so the
    sweep is cheap.  Engine profiles scale with their geometry knobs.
    """
    knobs = knobs if knobs is not None else list(DEFAULT_KNOBS)
    cluster = resolve_cluster(config)
    reports = {
        name: run_experiment(exp_id, name, config,
                             exec_records=exec_records, seed=seed)
        for name in ("SpatialHadoop", "SpatialSpark")
    }
    for report in reports.values():
        if not report.ok:
            raise RuntimeError(f"sensitivity base run failed: {report.failure}")

    rows = []
    for knob in knobs:
        for factor in factors:
            params = _perturbed_params(knob, factor)
            totals = {}
            for name, report in reports.items():
                profile = dict(report.engine_profile)
                if knob in profile:
                    # geometry knobs flow through the engine profile
                    # (keeping the GEOS/JTS ratio intact).
                    profile[knob] = profile[knob] * factor
                CostModel(
                    cluster,
                    params=params,
                    engine_profile=profile,
                    memory_pressure=report.memory_pressure,
                ).cost_clock(report.clock)
                totals[name] = report.clock.total_seconds
            rows.append(
                SensitivityRow(
                    knob=knob,
                    factor=factor,
                    speedup=totals["SpatialHadoop"] / totals["SpatialSpark"],
                )
            )
    # Restore the default costing on the cached clocks.
    for report in reports.values():
        CostModel(
            cluster,
            engine_profile=report.engine_profile,
            memory_pressure=report.memory_pressure,
        ).cost_clock(report.clock)
    return rows


def render_sensitivity(rows: list[SensitivityRow]) -> str:
    """Table of speedups per knob × perturbation factor."""
    factors = sorted({r.factor for r in rows})
    knobs = []
    for r in rows:
        if r.knob not in knobs:
            knobs.append(r.knob)
    lines = [
        f"{'constant':<26}" + "".join(f"x{f:<9g}" for f in factors),
    ]
    by_key = {(r.knob, r.factor): r.speedup for r in rows}
    for knob in knobs:
        cells = "".join(f"{by_key[(knob, f)]:<10.2f}" for f in factors)
        lines.append(f"{knob:<26}{cells}")
    return "\n".join(lines)
