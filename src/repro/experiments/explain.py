"""Cost explanation: decompose a run's simulated seconds per phase.

``explain_report`` answers "where did the time go?" — the question the
paper's Section III keeps asking — by splitting every phase into the cost
model's four components (CPU, disk I/O, shuffle/network, framework
overheads) and listing the dominant counters behind the CPU term.

When the report carries a trace (``report.trace`` from a traced run),
each phase also gets its *measured* wall-clock seconds from the matching
phase span — a real breakdown next to the modelled one, instead of a
reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.costmodel import CostModel
from ..systems.base import RunReport
from .runner import resolve_cluster

__all__ = ["PhaseCost", "explain_report", "render_explanation"]


@dataclass(frozen=True)
class PhaseCost:
    """One phase's cost decomposition (seconds)."""

    name: str
    group: str
    tasks: int
    cpu: float
    io: float
    shuffle: float
    overhead: float
    #: (counter, simulated CPU seconds) pairs, largest first.
    top_cpu_counters: tuple[tuple[str, float], ...]
    #: real wall-clock seconds of the matching trace phase span (None when
    #: the run was not traced).
    measured_seconds: Optional[float] = None

    @property
    def total(self) -> float:
        return self.cpu + self.io + self.shuffle + self.overhead


def explain_report(
    report: RunReport, *, top: int = 3, min_seconds: float = 0.0, params=None
) -> list[PhaseCost]:
    """Decompose every phase of a (possibly failed) run report.

    The report's cluster name selects the cost model; the phases carry
    whatever counters were accumulated, so partial clocks of failed runs
    explain the work done before the failure.  Pass *params* (e.g. a
    calibrated :meth:`repro.plan.CalibrationProfile.cost_params`) to
    re-price the same counters under different constants.
    """
    cluster = resolve_cluster(report.cluster)
    model = CostModel(
        cluster,
        params=params,
        engine_profile=report.engine_profile,
        memory_pressure=report.memory_pressure,
    )
    # Phase spans share their PhaseRecord's name; pair them up in record
    # order (names recur only if the same job ran twice, and then the
    # spans recur in the same order).
    measured: dict[str, list] = {}
    if report.trace is not None:
        for sp in report.trace.walk():
            if sp.kind == "phase":
                measured.setdefault(sp.name, []).append(sp.seconds)
    out = []
    for phase in report.clock.phases:
        comp = model.component_seconds(phase.counters, phase.tasks)
        cpu, io = comp["cpu"], comp["io"]
        shuffle, overhead = comp["shuffle"], comp["overhead"]
        if cpu + io + shuffle + overhead < min_seconds:
            continue
        parallel = cluster.effective_parallelism(phase.tasks)
        divisor = 1e6 * cluster.machine.cpu_speed * parallel / model.gc_penalty()
        per_counter = []
        for key, count in phase.counters.items():
            unit = model.engine_profile.get(key, model.params.cpu_cost(key))
            if unit:
                per_counter.append((key, count * unit / divisor))
        per_counter.sort(key=lambda kv: -kv[1])
        spans = measured.get(phase.name)
        out.append(
            PhaseCost(
                name=phase.name,
                group=phase.group,
                tasks=phase.tasks,
                cpu=cpu,
                io=io,
                shuffle=shuffle,
                overhead=overhead,
                top_cpu_counters=tuple(per_counter[:top]),
                measured_seconds=spans.pop(0) if spans else None,
            )
        )
    return out


def render_explanation(costs: list[PhaseCost], *, min_share: float = 0.01) -> str:
    """Human-readable table of a cost decomposition.

    Traced runs get one extra column: the phase's *measured* wall-clock
    (real execution seconds from the span tree) next to the modelled
    simulated seconds.
    """
    total = sum(c.total for c in costs) or 1.0
    with_measured = any(c.measured_seconds is not None for c in costs)
    header = (
        f"{'phase':<42}{'group':<9}{'tasks':>6}{'cpu':>9}{'io':>8}"
        f"{'shuffle':>9}{'ovh':>8}{'total':>9}"
    )
    if with_measured:
        header += f"{'measured':>11}"
    lines = [header]
    for c in costs:
        if c.total / total < min_share:
            continue
        row = (
            f"{c.name:<42}{c.group:<9}{c.tasks:>6}{c.cpu:>9,.1f}{c.io:>8,.1f}"
            f"{c.shuffle:>9,.1f}{c.overhead:>8,.1f}{c.total:>9,.1f}"
        )
        if with_measured:
            row += (
                f"{c.measured_seconds * 1e3:>9,.1f}ms"
                if c.measured_seconds is not None
                else f"{'-':>11}"
            )
        lines.append(row)
        for key, seconds in c.top_cpu_counters:
            if seconds / total >= min_share:
                lines.append(f"{'':<42}  · {key}: {seconds:,.1f}s")
    lines.append(f"{'TOTAL':<42}{'':<9}{'':>6}{'':>9}{'':>8}{'':>9}{'':>8}{total:>9,.1f}")
    return "\n".join(lines)
