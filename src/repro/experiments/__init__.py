"""Experiment harness: runners, extrapolation, table regeneration."""

from .extrapolate import ScaleInfo, classify_counter, extrapolate_clock, pair_factor
from .runner import (
    DEFAULT_SEED,
    EXPERIMENTS,
    ExperimentSpec,
    full_scale_dims,
    mean_mbr_dims,
    resolve_cluster,
    run_experiment,
)
from .calibration import (
    Observation,
    collect_observations,
    evaluate_fit,
    fit_cost_constants,
)
from .explain import PhaseCost, explain_report, render_explanation
from .report import generate_report
from .sensitivity import SensitivityRow, render_sensitivity, speedup_sensitivity
from .validate import ValidationCase, run_validation, validation_cases
from .tables import (
    Table2Result,
    Table3Result,
    fig1,
    headline_comparisons,
    table1,
    table2,
    table3,
)

__all__ = [
    "DEFAULT_SEED",
    "EXPERIMENTS",
    "ExperimentSpec",
    "run_experiment",
    "ScaleInfo",
    "classify_counter",
    "extrapolate_clock",
    "pair_factor",
    "mean_mbr_dims",
    "full_scale_dims",
    "table1",
    "table2",
    "table3",
    "fig1",
    "Table2Result",
    "Table3Result",
    "headline_comparisons",
    "generate_report",
    "resolve_cluster",
    "explain_report",
    "render_explanation",
    "PhaseCost",
    "run_validation",
    "validation_cases",
    "ValidationCase",
    "speedup_sensitivity",
    "render_sensitivity",
    "SensitivityRow",
    "Observation",
    "collect_observations",
    "fit_cost_constants",
    "evaluate_fit",
]
