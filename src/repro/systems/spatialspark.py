"""SpatialSpark: lightweight spatial join on Spark (You et al., CloudDM 2015).

Reproduces the partition-based spatial join the paper evaluates
(Section II, Fig. 1c):

* **Functional data access** — both datasets are parsed once into RDDs;
  HDFS is touched only to read the inputs.  Everything else happens in
  executor memory.
* **In-memory preprocessing** — only *one* side (the right) is sampled,
  with Spark's built-in ``sample``; the partitioning is built from the
  sample without writing anything to HDFS.
* **Broadcast global join** — an STR tree over the partition MBRs is
  broadcast to all executors; both sides flatMap against it to obtain
  partition ids (multi-assignment over tiling partitions), are grouped
  with ``groupByKey``, and the per-partition item lists are matched with
  the RDD ``join`` on partition id (a hash join on integers; the grouped
  RDDs are co-partitioned so the join itself is narrow).
* **Local join** — indexed nested loop with JTS-like refinement inside a
  ``flatMap``; duplicate pairs from multi-assignment are removed at the
  end.
* **Failure mode** — every materialized RDD and shuffle charges the
  executor-memory ledger; exceeding the cluster's usable memory raises
  the out-of-memory error Table 2 reports for EC2-8/EC2-6.

The earlier *broadcast-based* join of [6] (broadcast the full index of
the right side, no partitioning) is also provided for the ablation the
paper defers to future work (``broadcast_join=True``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.framework import (
    DataAccessModel,
    RunsOn,
    Stage,
    StageStep,
    StageTrace,
)
from ..core.localjoin import LOCAL_JOIN_ALGORITHMS, local_join, refine_candidates
from ..core.partitioning import BSPPartitioner, make_partitioner
from ..core.predicate import INTERSECTS, JoinPredicate
from ..data.loaders import SpatialRecord, from_tsv_line
from ..geometry.batch import GeometryBatch
from ..geometry.engine import JTS_COST_PROFILE, make_engine
from ..geometry.mbr import MBRArray
from ..hdfs.sizeof import estimate_size
from ..index.strtree import STRtree
from ..mapreduce.streaming import parse_charge
from ..pairs import PairBlock, unique_pairs
from ..shuffle import SFilter, resolve_shuffle, split_hot_cells
from ..spark.context import SparkContext
from ..spark.memory import MemoryLedger, SparkOutOfMemoryError
from ..trace.core import annotate, span as trace_span
from .base import RunEnvironment, RunReport, SpatialJoinSystem

__all__ = ["SpatialSpark"]


class SpatialSpark(SpatialJoinSystem):
    """The SpatialSpark pipeline on the simulated substrates."""

    name = "SpatialSpark"
    engine_name = "jts"

    def __init__(
        self,
        *,
        n_partitions: Optional[int] = None,
        sample_fraction: float = 0.05,
        partitioner=None,
        broadcast_join: Optional[bool] = None,
        local_algorithm: Optional[str] = None,
        plan=None,
        shuffle=None,
    ):
        # Resolution order: explicit kwargs > plan fields > legacy
        # defaults — so a caller can take a planner decision and still
        # override one knob of it.
        if plan is not None:
            if plan.system != self.name:
                raise ValueError(
                    f"plan targets {plan.system}, not {self.name}"
                )
            if n_partitions is None and plan.n_partitions:
                n_partitions = plan.n_partitions
            if broadcast_join is None:
                broadcast_join = plan.strategy == "broadcast"
            if partitioner is None:
                partitioner = plan.partitioner
            if local_algorithm is None:
                local_algorithm = plan.local_algorithm
            if shuffle is None:
                shuffle = plan.shuffle == "skew"
        self.shuffle = resolve_shuffle(shuffle)
        self.n_partitions = n_partitions
        self.sample_fraction = sample_fraction
        if isinstance(partitioner, str):
            partitioner = make_partitioner(partitioner)
        self.partitioner = partitioner or BSPPartitioner()
        if not self.partitioner.produces_tiles:
            raise ValueError(
                "SpatialSpark multi-assigns both sides, which requires a "
                "tiling partitioner (grid or bsp)"
            )
        self.broadcast_join = bool(broadcast_join)
        self.local_algorithm = local_algorithm or "indexed_nested_loop"
        if self.local_algorithm not in LOCAL_JOIN_ALGORITHMS:
            raise ValueError(
                f"unknown local join algorithm {self.local_algorithm!r}; "
                f"options: {sorted(LOCAL_JOIN_ALGORITHMS)}"
            )

    # ------------------------------------------------------------------ run
    def run(
        self, env: RunEnvironment, left, right, predicate: JoinPredicate = INTERSECTS
    ) -> RunReport:
        """Execute the full SpatialSpark pipeline (see the module docstring).

        Composed from the prepare and query halves.  SpatialSpark's
        prepare half is ingest only (parse once into a columnar batch,
        stage the text in HDFS): the system keeps no persistent
        partitioning or index — it samples, partitions and joins in
        executor memory per query, exactly the design the paper analyzes.
        """
        prep_a = self.prepare_dataset(env, "a", left)
        prep_b = self.prepare_dataset(env, "b", right)
        return self.join_prepared(env, prep_a, prep_b, predicate)

    # --------------------------------------------------------- query half
    def join_prepared(
        self,
        env: RunEnvironment,
        prep_a,
        prep_b,
        predicate: JoinPredicate = INTERSECTS,
    ) -> RunReport:
        """The query half: everything after ingest — SpatialSpark builds
        its partitions and indexes inside the join job, so broadcast /
        partitioned join selection, index build and refinement all run
        here; OOM comes back as a failed report."""
        left = prep_a.batch
        right = prep_b.batch
        engine = make_engine("jts", env.counters)
        ledger = MemoryLedger(budget_bytes=env.cluster.usable_memory_bytes)

        def scale_for(label: str) -> tuple[float, float]:
            # RDD labels compose, so a lineage keeps its source path; the
            # two sides never mix before the (narrow) final join.
            return env.scale_a if "/input/a" in label else env.scale_b

        sc = SparkContext(
            counters=env.counters,
            clock=env.clock,
            hdfs=env.hdfs,
            ledger=ledger,
            default_parallelism=env.cluster.total_cores,
            num_nodes=env.cluster.num_nodes,
            scale_resolver=scale_for,
            executor=env.executor,
        )
        # Both batches carry parse-time MBRs: the joint extent needs no
        # per-geometry rebuild.
        universe = MBRArray(
            np.vstack([left.mbrs.data, right.mbrs.data])
        ).extent()
        n_parts = self.n_partitions or max(
            4, env.hdfs.num_blocks("/input/a") + env.hdfs.num_blocks("/input/b")
        )
        try:
            if self.broadcast_join:
                pairs = self._run_broadcast(
                    sc, env, engine, predicate, right_records=right, left_records=left
                )
            else:
                pairs = self._run_partition_based(
                    sc, env, engine, left, right, universe, n_parts, predicate
                )
        except SparkOutOfMemoryError as err:
            return self._report(
                env, error=err, engine_profile=JTS_COST_PROFILE, memory_pressure=1.0
            )
        pressure = (
            ledger.peak_bytes / ledger.budget_bytes
            if ledger.budget_bytes not in (0, float("inf"))
            else 0.0
        )
        return self._report(
            env,
            pairs=pairs,
            engine_profile=JTS_COST_PROFILE,
            memory_pressure=pressure,
        )

    # ------------------------------------------------- partition-based join
    def _run_partition_based(
        self,
        sc: SparkContext,
        env: RunEnvironment,
        engine,
        left: GeometryBatch,
        right: GeometryBatch,
        universe,
        n_parts: int,
        predicate: JoinPredicate = INTERSECTS,
    ) -> set:
        counters = env.counters

        def parse(line: str) -> SpatialRecord:
            parse_charge(counters, 1, len(line))
            return from_tsv_line(line)

        # End-to-end: SpatialSpark reports a single runtime (Table 3 shows
        # only TOT), but we still group phases for inspection.
        with sc.record_phase(
            "sspark.load", group="join", tasks=sc.default_parallelism
        ):
            left_rdd = sc.from_hdfs("/input/a").map(parse)
            right_rdd = sc.from_hdfs("/input/b").map(parse)
            right_rdd._partitions()  # force the one-and-only HDFS read
            left_rdd._partitions()

        with sc.record_phase("sspark.partition", group="join", tasks=1):
            # Sample only the right side, in memory, and build partitions.
            sample = right_rdd.sample(self.sample_fraction, seed=env.seed).collect()
            # Parsed rids are positional: sampled MBRs come straight out of
            # the batch's cache (the WKT round trip is float-exact).
            sample_boxes = right.mbrs.take(
                np.fromiter((r.rid for r in sample), dtype=np.int64, count=len(sample))
            )
            counters.add("cpu.ops", max(len(sample), 1))
            partitioning = self.partitioner.partition(sample_boxes, n_parts, universe)
            keep_left = keep_right = None
            if self.shuffle is not None and self.shuffle.repartition:
                # SpatialSpark samples only the right side, but the hot
                # cells usually live on the *left* (probe) side — sample
                # it too (LocationSpark-style) so skew on either input
                # drives the hot-cell detection.
                left_sample = left_rdd.sample(
                    self.sample_fraction, seed=env.seed
                ).collect()
                left_boxes = left.mbrs.take(
                    np.fromiter(
                        (r.rid for r in left_sample),
                        dtype=np.int64,
                        count=len(left_sample),
                    )
                )
                combined = MBRArray(
                    np.vstack([sample_boxes.data, left_boxes.data])
                )
                partitioning, qstats, report = split_hot_cells(
                    partitioning,
                    combined,
                    hot_factor=self.shuffle.hot_factor,
                    max_splits=self.shuffle.max_splits,
                    leaves=self.shuffle.split_leaves,
                )
                if report.hot_cells:
                    counters.add("skew.cells_split", len(report.hot_cells))
                    counters.add("skew.cells_added", report.cells_added)
                annotate(
                    sampled_skew=round(qstats.skew, 4),
                    cells_split=len(report.hot_cells),
                    cells_added=report.cells_added,
                )
            if self.shuffle is not None and self.shuffle.sfilter:
                # One sFilter per side; each side's records are kept only
                # if the *opposite* filter says their MBR may match.  The
                # bitmaps ride the same broadcast as the partition index.
                sf_a = SFilter(left.mbrs, resolution=self.shuffle.resolution)
                sf_b = SFilter(right.mbrs, resolution=self.shuffle.resolution)
                counters.add("shuffle.sfilter_builds", 2)
                sc.broadcast((sf_a, sf_b), nbytes=sf_a.nbytes + sf_b.nbytes)
                margin = predicate.filter_margin
                keep_left = sf_b.contains(left.mbrs, margin=margin)
                keep_right = sf_a.contains(right.mbrs, margin=margin)
                annotate(
                    sfilter_keep_left=int(keep_left.sum()),
                    sfilter_keep_right=int(keep_right.sum()),
                )
            tree = STRtree(partitioning.boxes, counters=counters)
            index_bytes = 40 * len(partitioning.boxes) + 64
            bcast = sc.broadcast(tree, nbytes=index_bytes)

        with sc.record_phase(
            "sspark.global_join", group="join", tasks=sc.default_parallelism
        ):
            def assign_left(rec: SpatialRecord):
                # sFilter prune: a record whose MBR provably matches
                # nothing on the other side never enters the exchange —
                # it is dropped *before* the groupByKey charges
                # shuffle.bytes_mem / spark.shuffle_records for it.
                if keep_left is not None and not keep_left[rec.rid]:
                    counters.add("shuffle.records_pruned", 1)
                    counters.add("shuffle.bytes_pruned", estimate_size(rec))
                    return
                # Distance joins expand the left probe boxes so pairs
                # within the margin are co-partitioned.
                for pid in bcast.value.query(predicate.expand(rec.geometry.mbr)):
                    yield (int(pid), rec)

            def assign_right(rec: SpatialRecord):
                if keep_right is not None and not keep_right[rec.rid]:
                    counters.add("shuffle.records_pruned", 1)
                    counters.add("shuffle.bytes_pruned", estimate_size(rec))
                    return
                for pid in bcast.value.query(rec.geometry.mbr):
                    yield (int(pid), rec)

            n_buckets = max(len(partitioning), 1)
            left_grouped = left_rdd.flatMap(assign_left).groupByKey(n_buckets)
            right_grouped = right_rdd.flatMap(assign_right).groupByKey(n_buckets)
            joined = left_grouped.join(right_grouped, n_buckets)

            def match(kv):
                _pid, (a_recs, b_recs) = kv
                if not a_recs or not b_recs:
                    return
                # One task body matches several partitions; each gets its
                # own partition span under the enclosing task span.
                partition_span = trace_span(
                    "partition", kind="partition", counters=counters,
                    partition=int(_pid),
                )
                partition_span.__enter__()
                # Columnar local join: slice both sides out of the input
                # batches by rid (positional), index and probe with the
                # cached MBRs, and refine on the packed buffers.
                a_rows = np.fromiter(
                    (r.rid for r in a_recs), dtype=np.int64, count=len(a_recs)
                )
                b_rows = np.fromiter(
                    (r.rid for r in b_recs), dtype=np.int64, count=len(b_recs)
                )
                a_batch, b_batch = left.take(a_rows), right.take(b_rows)
                # Plan-selected local algorithm: all three produce the
                # identical refined pair plane; they differ in filter
                # cost, which the counters capture.
                info: dict = {}
                refined = local_join(
                    self.local_algorithm, a_batch, b_batch, engine,
                    counters=counters, predicate=predicate, info=info,
                )
                annotate(
                    a_records=len(a_recs), b_records=len(b_recs),
                    candidates=info.get("candidates", 0),
                    refined=len(refined),
                )
                partition_span.__exit__(None, None, None)
                # Survivors stay columnar: one PairBlock per partition
                # pair, ids gathered in one vectorized step.
                if len(refined):
                    a_ids, b_ids = a_batch.ids, b_batch.ids
                    yield PairBlock(
                        np.stack(
                            [a_ids[refined[:, 0]], b_ids[refined[:, 1]]], axis=1
                        )
                    )

            result = joined.flatMap(match).collect()
            # Multi-assignment duplicates are removed in memory; the sort
            # is charged on the logical pair count, as before.
            n_result = sum(len(block) for block in result)
            counters.add(
                "sort.ops", n_result * max(np.log2(max(n_result, 2)), 1.0)
            )
            pairs = unique_pairs(result)
        return pairs

    # ------------------------------------------------- broadcast-based join
    def _run_broadcast(
        self,
        sc: SparkContext,
        env: RunEnvironment,
        engine,
        predicate: JoinPredicate = INTERSECTS,
        *,
        left_records,
        right_records,
    ) -> set:
        """The early SpatialSpark design of [6]: broadcast the full right
        side (data + index) and join each left item directly against it.

        Scales only while the right side fits in every executor — the
        trade-off the paper defers to future work and our ablation bench
        measures.
        """
        counters = env.counters

        def parse(line: str) -> SpatialRecord:
            parse_charge(counters, 1, len(line))
            return from_tsv_line(line)

        with sc.record_phase("sspark.bcast_join", group="join",
                             tasks=sc.default_parallelism):
            left_rdd = sc.from_hdfs("/input/a").map(parse)
            right = sc.from_hdfs("/input/b").map(parse).collect()
            right_bytes = sum(estimate_size(r) for r in right)
            # Collected parse order is file order, so the cached batch MBRs
            # line up row-for-row with the collected records.
            tree = STRtree(right_records.mbrs, counters=counters)
            # The broadcast payload is the whole right side; its *logical*
            # volume (paper scale) is what lands on every executor, which
            # is exactly this design's memory wall.
            rb, bb = env.scale_b
            logical_payload = int(right_bytes * bb + 40 * len(right) * rb)
            bcast = sc.broadcast((tree, right), nbytes=logical_payload)

            def probe(rec: SpatialRecord):
                btree, brecs = bcast.value
                candidates = [
                    (0, int(j))
                    for j in btree.query(predicate.expand(rec.geometry.mbr))
                ]
                refined = refine_candidates(
                    [rec.geometry],
                    [r.geometry for r in brecs],
                    candidates,
                    engine,
                    predicate,
                )
                for _i, j in refined:
                    yield (rec.rid, brecs[j].rid)

            pairs = set(left_rdd.flatMap(probe).collect())
        return pairs

    # ------------------------------------------------------------ stage map
    def stage_trace(self) -> StageTrace:
        """SpatialSpark's pipeline in Fig.-1 framework terms."""
        P, G, L = Stage.PREPROCESSING, Stage.GLOBAL_JOIN, Stage.LOCAL_JOIN
        return StageTrace(
            system=self.name,
            access_model=DataAccessModel.FUNCTIONAL,
            geometry_library="jts",
            platform="spark",
            steps=[
                StageStep("load both datasets into RDDs (parse once)", P, RunsOn.EXECUTOR, True, False,
                          "the only HDFS interaction in the whole pipeline"),
                StageStep("sample right side in memory (built-in sample)", P, RunsOn.EXECUTOR, False, False),
                StageStep("build partitions + STR tree over partition MBRs", P, RunsOn.MASTER, False, False),
                StageStep("broadcast partition index (no HDFS)", G, RunsOn.MASTER, False, False),
                StageStep("flatMap both sides to partition ids", G, RunsOn.EXECUTOR, False, False),
                StageStep("groupByKey both sides + hash join on partition id", G, RunsOn.EXECUTOR, False, False,
                          "in-memory shuffle; grouped RDDs are co-partitioned"),
                StageStep("indexed nested loop + JTS refinement (flatMap)", L, RunsOn.EXECUTOR, False, False),
            ],
        )


def _default_partitions(n_records: int) -> int:
    return int(np.clip(n_records // 400, 4, 256))
