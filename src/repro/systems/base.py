"""Common machinery of the three spatial-join systems.

Defines the run environment (shared substrates wired together), the
system interface, and the run report consumed by the experiment harness:
per-group simulated seconds (Table 3's IA / IB / DJ / TOT breakdown),
result pairs (verified identical across systems), and failure outcomes
(Table 2's "-" cells).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from ..cluster.costmodel import CostModel, CostParams
from ..cluster.simclock import SimClock
from ..cluster.specs import ClusterConfig, ws_config
from ..core.framework import StageTrace
from ..core.predicate import INTERSECTS, JoinPredicate
from ..data.loaders import SpatialRecord, encode_batch, encode_dataset
from ..exec.backend import ExecutorBackend, resolve_backend
from ..geometry.batch import GeometryBatch
from ..geometry.primitives import Geometry
from ..hdfs.filesystem import SimulatedHDFS
from ..mapreduce.streaming import StreamingPipeError, pipe_capacity_for
from ..metrics import Counters
from ..spark.memory import SparkOutOfMemoryError

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..experiments.extrapolate import ScaleInfo
    from ..trace.core import Span as TraceSpan

__all__ = [
    "RunEnvironment",
    "RunReport",
    "PreparedDataset",
    "SpatialJoinSystem",
    "GROUPS",
    "ROLES",
]

#: Reporting groups matching Table 3's columns.
GROUPS = ("index_a", "index_b", "join")

#: The two join sides.  Role names double as HDFS namespaces
#: (``/input/a``, ``/hgis/b/...``) and feed the sampling seeds
#: (``(env.seed, int.from_bytes(role) & 0xFFFF)``), so they are fixed: a dataset
#: prepared as ``"a"`` serves as the left side of joins, ``"b"`` as the
#: right.
ROLES = ("a", "b")


@dataclass
class RunEnvironment:
    """Everything a system run needs, sharing one counters instance.

    ``record_scale`` / ``byte_scale`` translate executed volumes into
    logical (paper-scale) volumes for the *failure models only* — pipe
    capacities and Spark memory.  Cost extrapolation happens later, in
    the experiment runner, from the measured counters.
    """

    cluster: ClusterConfig
    counters: Counters
    hdfs: SimulatedHDFS
    clock: SimClock
    #: (record_scale, byte_scale) of the left / right dataset: logical
    #: (paper-scale) units per executed unit.
    scale_a: tuple[float, float] = (1.0, 1.0)
    scale_b: tuple[float, float] = (1.0, 1.0)
    seed: int = 0
    block_size: int = field(default=0)  # informational; hdfs owns the real one
    #: optional per-input block sizes (path -> bytes) used when staging,
    #: so each dataset's block count matches its paper-scale structure.
    input_block_sizes: dict = field(default_factory=dict)
    #: task execution backend every substrate in this environment runs
    #: task attempts on; serial by default so behaviour is unchanged.
    executor: ExecutorBackend = field(default_factory=lambda: resolve_backend())

    @classmethod
    def create(
        cls,
        cluster: Optional[ClusterConfig] = None,
        *,
        block_size: int = 1 << 16,
        scale_a: tuple[float, float] = (1.0, 1.0),
        scale_b: tuple[float, float] = (1.0, 1.0),
        seed: int = 0,
        workers: int = 1,
        backend: Union[str, ExecutorBackend, None] = None,
    ) -> "RunEnvironment":
        """Build an environment around one shared counters instance.

        *workers* / *backend* select the task execution backend: with the
        defaults everything runs serially; ``workers>1`` picks a process
        pool when the platform supports it (threads otherwise), and
        *backend* forces ``"serial"`` / ``"thread"`` / ``"process"`` or
        accepts a ready :class:`~repro.exec.ExecutorBackend`.  Results are
        bit-identical across backends by construction.
        """
        cluster = cluster or ws_config()
        counters = Counters()
        hdfs = SimulatedHDFS(block_size=block_size, counters=counters)
        return cls(
            cluster=cluster,
            counters=counters,
            hdfs=hdfs,
            clock=SimClock(),
            scale_a=scale_a,
            scale_b=scale_b,
            seed=seed,
            block_size=block_size,
            executor=resolve_backend(backend, workers),
        )

    def load_input(
        self, path: str, geometries: "Sequence[Geometry] | GeometryBatch"
    ) -> None:
        """Stage a dataset in HDFS as TSV text, outside the timed run.

        The paper's end-to-end times start from data already resident in
        HDFS, so the initial upload is not charged to any phase.  A
        :class:`GeometryBatch` encodes straight from its arrays; the text
        is byte-identical to the object encoder's (ids are positional in
        both cases).
        """
        before = self.counters.snapshot()
        if isinstance(geometries, GeometryBatch):
            lines = list(encode_batch(geometries.with_positional_ids()))
        else:
            lines = list(encode_dataset(geometries))
        self.hdfs.write_file(
            path,
            lines,
            block_size=self.input_block_sizes.get(path),
        )
        # Roll back the upload charges: staging is not part of the run.
        for key, value in self.counters.diff(before).items():
            self.counters[key] -= value

    @property
    def pipe_capacity(self) -> float:
        return pipe_capacity_for(self.cluster)


@dataclass
class RunReport:
    """Outcome of one system × experiment × cluster run."""

    system: str
    cluster: str
    status: str  # "ok" | "failed"
    clock: SimClock
    counters: Counters
    failure: Optional[str] = None
    failure_kind: Optional[str] = None  # "broken_pipe" | "oom" | None
    pairs: Optional[frozenset] = None  # {(left_rid, right_rid)}
    engine_profile: dict = field(default_factory=dict)
    #: peak live executor memory / budget (Spark systems only; drives the
    #: GC-pressure penalty in the cost model).
    memory_pressure: float = 0.0
    #: root of the recorded span tree when the run was traced (see
    #: :mod:`repro.trace`); None otherwise.  Filled in by the caller that
    #: owns the tracing session (``spatial_join`` / ``run_experiment``).
    trace: Optional["TraceSpan"] = None
    #: True when this report was answered from the service result cache
    #: without executing any stage (see :mod:`repro.service`); the payload
    #: (pairs, counters, clock) is the original computation's.
    cache_hit: bool = False
    #: Execution-environment degradation notices (e.g. the process
    #: backend falling back to threads because ``fork`` is unavailable).
    #: Empty on a healthy run; never affects results, only wall-clock.
    warnings: tuple = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def costed(
        self,
        cost_params: Optional[CostParams] = None,
        *,
        cluster: Optional[ClusterConfig] = None,
        scale: Optional["ScaleInfo"] = None,
    ) -> "RunReport":
        """Fill simulated seconds into the clock — the one costing path.

        Without arguments this looks the run's cluster up among the
        paper's named configurations.  *cluster* supplies an explicit
        :class:`ClusterConfig` instead (required for ad-hoc ``EC2-<n>``
        sweeps whose names the paper tables don't know).  *scale*, when
        given, extrapolates the measured per-phase counts to paper scale
        before costing — the experiment runner routes through here rather
        than re-implementing extrapolation + costing itself.
        """
        if cluster is None:
            from ..cluster.specs import PAPER_CONFIGS

            cluster = PAPER_CONFIGS().get(self.cluster)
            if cluster is None:
                raise ValueError(f"unknown cluster {self.cluster!r} for costing")
        if scale is not None:
            from ..experiments.extrapolate import extrapolate_clock

            self.clock = extrapolate_clock(self.clock, scale)
        CostModel(
            cluster,
            params=cost_params,
            engine_profile=self.engine_profile,
            memory_pressure=self.memory_pressure,
        ).cost_clock(self.clock)
        return self

    def breakdown_seconds(self) -> dict[str, float]:
        """IA / IB / DJ / TOT seconds (requires a costed clock)."""
        if not self.clock.costed:
            raise RuntimeError(
                "clock has not been costed; call RunReport.costed() (or "
                "run_experiment, which costs for you) before asking for a "
                "seconds breakdown"
            )
        out = {
            "IA": self.clock.group_seconds("index_a"),
            "IB": self.clock.group_seconds("index_b"),
            "DJ": self.clock.group_seconds("join"),
        }
        out["TOT"] = self.clock.total_seconds
        return out


@dataclass
class PreparedDataset:
    """One dataset after a system's prepare half: staged, partitioned,
    indexed — everything a query needs short of the join itself.

    The payload is immutable by convention: ``batch`` is the parsed
    columnar shard (positional ids matching the staged TSV rids) and
    ``files`` snapshots every HDFS file the prepare stage produced
    (staged text, partitioned/indexed data, ``_master`` partition
    metadata).  Queries install these files by reference into a fresh
    per-query filesystem, so any number of concurrent queries share one
    prepared copy without re-staging.
    """

    #: join side ("a" = left, "b" = right); fixed namespace, see ROLES.
    role: str
    #: system that prepared it (prepared artifacts are system-specific).
    system: str
    #: the parsed columnar dataset with positional ids.
    batch: GeometryBatch
    #: block count of the staged input (drives partition-count defaults).
    num_input_blocks: int
    #: every HDFS file written by ingest + preprocessing, by path.
    files: dict = field(default_factory=dict)
    #: (record_scale, byte_scale) the dataset was prepared under.
    scale: tuple[float, float] = (1.0, 1.0)


class SpatialJoinSystem(ABC):
    """Interface shared by HadoopGIS, SpatialHadoop and SpatialSpark.

    Every pipeline is split into two halves:

    * :meth:`prepare_dataset` — ingest, partition and index ONE dataset
      for one join side, returning a :class:`PreparedDataset`;
    * :meth:`join_prepared` — execute the join stages over two prepared
      datasets, returning a :class:`RunReport`.

    :meth:`run` is exactly the composition ``prepare(a) + prepare(b) +
    join_prepared`` in one environment — the one-shot path and the
    serving path (:mod:`repro.service`) share the same stage code.
    """

    #: the paper's system name
    name: str = "abstract"
    #: geometry library analogue this system links against
    engine_name: str = "jts"

    @abstractmethod
    def run(
        self,
        env: RunEnvironment,
        left: Sequence[SpatialRecord] | Sequence[Geometry] | GeometryBatch,
        right: Sequence[SpatialRecord] | Sequence[Geometry] | GeometryBatch,
        predicate: JoinPredicate = INTERSECTS,
    ) -> RunReport:
        """Execute the full distributed join; never raises for modelled
        failures — they come back as a failed :class:`RunReport`.

        *predicate* selects the join semantics: the paper's *intersects*
        (default) or an ε-distance join (``core.within_distance``)."""

    # ------------------------------------------------- prepare/query halves
    def prepare_dataset(
        self,
        env: RunEnvironment,
        role: str,
        data: Sequence[SpatialRecord] | Sequence[Geometry] | GeometryBatch,
    ) -> PreparedDataset:
        """The prepare half: stage *data* in HDFS and run this system's
        per-dataset preprocessing (sampling, partitioning, indexing) for
        one join side.

        Modelled failures (broken pipes) propagate as exceptions here —
        the caller decides whether that fails a run (:meth:`run`) or a
        service prepare.
        """
        if role not in ROLES:
            raise ValueError(f"role must be one of {ROLES}, got {role!r}")
        batch = self._as_batch(data)
        env.load_input(f"/input/{role}", batch)
        self._prepare_role(env, role, batch)
        files: dict = {}
        for prefix in self._prepare_prefixes(role):
            files.update(env.hdfs.export_files(prefix))
        return PreparedDataset(
            role=role,
            system=self.name,
            batch=batch,
            num_input_blocks=env.hdfs.num_blocks(f"/input/{role}"),
            files=files,
            scale=env.scale_a if role == "a" else env.scale_b,
        )

    def _prepare_role(
        self, env: RunEnvironment, role: str, batch: GeometryBatch
    ) -> None:
        """System-specific preprocessing of one staged dataset (may be a
        no-op: SpatialSpark's prepare is ingest only)."""

    def _prepare_prefixes(self, role: str) -> tuple:
        """HDFS path prefixes holding this system's prepared artifacts."""
        return (f"/input/{role}",)

    @abstractmethod
    def join_prepared(
        self,
        env: RunEnvironment,
        prep_a: PreparedDataset,
        prep_b: PreparedDataset,
        predicate: JoinPredicate = INTERSECTS,
    ) -> RunReport:
        """The query half: join two prepared datasets in *env*.

        *env* must already hold the prepared files (the shared
        environment of a one-shot run, or a fresh per-query filesystem
        populated via :meth:`install_prepared`).  Like :meth:`run`,
        modelled failures come back as a failed report, never raise.
        """

    @staticmethod
    def install_prepared(env: RunEnvironment, *preps: PreparedDataset) -> None:
        """Link prepared datasets' files into a fresh query environment."""
        for prep in preps:
            env.hdfs.install_files(prep.files)

    @abstractmethod
    def stage_trace(self) -> StageTrace:
        """The system's pipeline in the Fig.-1 framework terms."""

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _as_records(items: Sequence) -> list[SpatialRecord]:
        out = []
        for i, item in enumerate(items):
            if isinstance(item, SpatialRecord):
                out.append(item)
            else:
                out.append(SpatialRecord(i, item))
        return out

    @staticmethod
    def _as_batch(items: "Sequence | GeometryBatch") -> GeometryBatch:
        """Coerce any accepted input into a batch with positional ids.

        Positional ids match the rids the pipelines parse out of the
        staged TSV text, so cached ``mbrs`` rows can be looked up by rid
        directly — the dedupe that replaces the per-stage
        ``MBRArray.from_geometries`` rebuilds.
        """
        return GeometryBatch.coerce(items).with_positional_ids()

    def _report(
        self,
        env: RunEnvironment,
        *,
        pairs: "Optional[set | frozenset | np.ndarray]" = None,
        error: Optional[Exception] = None,
        engine_profile: Optional[dict] = None,
        memory_pressure: float = 0.0,
    ) -> RunReport:
        failure_kind = None
        if isinstance(error, StreamingPipeError):
            failure_kind = "broken_pipe"
        elif isinstance(error, SparkOutOfMemoryError):
            failure_kind = "oom"
        profile = dict(engine_profile or {})
        # Per-stage wall-clock of the execution backend rides along for
        # benchmarking; the cost model ignores non-counter keys.
        profile["exec"] = env.executor.profile_summary()
        if isinstance(pairs, np.ndarray):
            # Columnar pair plane -> the documented tuple set, at the
            # API boundary only.
            pairs = frozenset(map(tuple, pairs.tolist()))
        return RunReport(
            system=self.name,
            cluster=env.cluster.name,
            status="ok" if error is None else "failed",
            clock=env.clock,
            counters=env.counters,
            failure=str(error) if error else None,
            failure_kind=failure_kind,
            pairs=frozenset(pairs) if pairs is not None else None,
            engine_profile=profile,
            memory_pressure=memory_pressure,
            warnings=tuple(getattr(env.executor, "warnings", ()) or ()),
        )
