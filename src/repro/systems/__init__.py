"""The three Cloud spatial-join systems the paper compares."""

from .base import GROUPS, RunEnvironment, RunReport, SpatialJoinSystem
from .hadoopgis import HadoopGIS
from .spatialhadoop import SpatialHadoop
from .spatialspark import SpatialSpark

ALL_SYSTEMS = {
    "HadoopGIS": HadoopGIS,
    "SpatialHadoop": SpatialHadoop,
    "SpatialSpark": SpatialSpark,
}


def make_system(name: str, **kwargs) -> SpatialJoinSystem:
    """Instantiate a system by its paper name."""
    try:
        return ALL_SYSTEMS[name](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; options: {sorted(ALL_SYSTEMS)}"
        ) from None


__all__ = [
    "SpatialJoinSystem",
    "RunEnvironment",
    "RunReport",
    "GROUPS",
    "HadoopGIS",
    "SpatialHadoop",
    "SpatialSpark",
    "ALL_SYSTEMS",
    "make_system",
]
