"""HadoopGIS: Hadoop-Streaming-based spatial join (Aji et al., VLDB 2013).

Reproduces the design the paper analyzes (Section II, Fig. 1a):

* **Streaming data access** — every record crosses mapper/reducer
  boundaries as a line of text and is re-parsed at each hop.
* **Six-step preprocessing per dataset** — format conversion, sampling,
  extent computation, sample normalization, a *serial local program*
  generating partitions (with HDFS↔local copies), and a final MR job
  assigning partition ids, whose output is deduplicated by a pipelined
  ``cat | sort | uniq`` over the whole partitioned file.
* **Global join that cannot reuse preprocessing partitions** — samples of
  both datasets are concatenated by another serial local program into a
  *new* partitioning; every map task of the join job re-reads the
  partition file from HDFS and rebuilds a dynamic R-tree
  (libspatialindex analogue) before assigning partition ids again.
* **Local join in reducers** — indexed nested loop with GEOS-like
  (slow, scalar) refinement; duplicate result pairs from multi-assignment
  are removed at the end.
* **Failure mode** — any streaming process whose logical pipe volume
  exceeds capacity raises the broken-pipe error; with full datasets this
  happens even on the 128 GB workstation, exactly as in Table 2.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..cluster.simclock import PhaseRecord
from ..core.framework import (
    DataAccessModel,
    RunsOn,
    Stage,
    StageStep,
    StageTrace,
)
from ..core.localjoin import LOCAL_JOIN_ALGORITHMS, local_join, refine_candidates
from ..core.partitioning import GridPartitioner, SpatialPartitioning, make_partitioner
from ..core.predicate import INTERSECTS, JoinPredicate
from ..data.loaders import from_tsv_line, to_tsv_line
from ..geometry.engine import GEOS_COST_PROFILE, make_engine
from ..geometry.mbr import MBR, MBRArray
from ..index.rtree import RTree
from ..mapreduce.job import MapReduceJob
from ..mapreduce.streaming import (
    PipePolicy,
    StreamingPipeError,
    make_streaming_hook,
    parse_charge,
    serialize_charge,
)
from ..shuffle import SFilter, resolve_shuffle, split_hot_cells
from ..trace.core import annotate, span as trace_span
from .base import RunEnvironment, RunReport, SpatialJoinSystem

__all__ = ["HadoopGIS"]


class HadoopGIS(SpatialJoinSystem):
    """The HadoopGIS pipeline on the simulated substrates."""

    name = "HadoopGIS"
    engine_name = "geos"

    def __init__(
        self,
        *,
        n_partitions: Optional[int] = None,
        sample_fraction: float = 0.05,
        partitioner=None,
        local_algorithm: Optional[str] = None,
        plan=None,
        shuffle=None,
    ):
        # Resolution order: explicit kwargs > plan fields > legacy
        # defaults (grid tiles, dynamic-R-tree nested loop).
        if plan is not None:
            if plan.system != self.name:
                raise ValueError(
                    f"plan targets {plan.system}, not {self.name}"
                )
            if n_partitions is None and plan.n_partitions:
                n_partitions = plan.n_partitions
            if partitioner is None:
                partitioner = plan.partitioner
            if local_algorithm is None:
                local_algorithm = plan.local_algorithm
            if shuffle is None:
                shuffle = plan.shuffle == "skew"
        self.shuffle = resolve_shuffle(shuffle)
        self.n_partitions = n_partitions
        self.sample_fraction = sample_fraction
        if isinstance(partitioner, str):
            partitioner = make_partitioner(partitioner)
        self.partitioner = partitioner or GridPartitioner()
        if not self.partitioner.produces_tiles:
            raise ValueError(
                "HadoopGIS multi-assigns records to tiles, which requires "
                "a tiling partitioner (grid, bsp or quadtree)"
            )
        self.local_algorithm = local_algorithm or "indexed_nested_loop"
        if self.local_algorithm not in LOCAL_JOIN_ALGORITHMS:
            raise ValueError(
                f"unknown local join algorithm {self.local_algorithm!r}; "
                f"options: {sorted(LOCAL_JOIN_ALGORITHMS)}"
            )

    # ------------------------------------------------------------------ run
    def run(
        self, env: RunEnvironment, left, right, predicate: JoinPredicate = INTERSECTS
    ) -> RunReport:
        """Execute the full HadoopGIS pipeline (see the module docstring).

        Exactly the prepare-half composition plus the query half: charge
        totals, per-phase deltas and span structure are identical to the
        historical monolithic pipeline (phase *order* interleaves the two
        datasets' staging, which no accounting observes).
        """
        try:
            prep_a = self.prepare_dataset(env, "a", left)
            prep_b = self.prepare_dataset(env, "b", right)
        except StreamingPipeError as err:
            return self._report(env, error=err, engine_profile=GEOS_COST_PROFILE)
        return self.join_prepared(env, prep_a, prep_b, predicate)

    # ------------------------------------------------------- prepare half
    def _prepare_role(self, env: RunEnvironment, role: str, batch) -> None:
        # Pipe volumes are converted to paper scale with the byte scale of
        # the dataset flowing through the pipe.
        scale = env.scale_a if role == "a" else env.scale_b
        policy = PipePolicy(capacity_bytes=env.pipe_capacity, byte_scale=scale[1])
        group = "index_a" if role == "a" else "index_b"
        with trace_span(f"preprocess:{role}", kind="stage", counters=env.counters):
            self._preprocess(env, policy, role, group=group)

    def _prepare_prefixes(self, role: str) -> tuple:
        return (f"/input/{role}", f"/hgis/{role}")

    # --------------------------------------------------------- query half
    def join_prepared(
        self,
        env: RunEnvironment,
        prep_a,
        prep_b,
        predicate: JoinPredicate = INTERSECTS,
    ) -> RunReport:
        """The query half: global join (sample combination + joint
        partitioning) and the local join MR job over the prepared TSV
        datasets; broken streaming pipes come back as a failed report."""
        engine = make_engine("geos", env.counters)
        # The join job mixes records of both datasets in one task; its
        # tasks track their own logical volumes per side (byte_scale=1).
        policy_join = PipePolicy(capacity_bytes=env.pipe_capacity, byte_scale=1.0)
        # Both batches carry parse-time MBRs: the joint extent needs no
        # per-geometry rebuild.
        universe = MBRArray(
            np.vstack([prep_a.batch.mbrs.data, prep_b.batch.mbrs.data])
        ).extent()
        n_parts = self.n_partitions or max(
            4, prep_a.num_input_blocks + prep_b.num_input_blocks
        )
        try:
            with trace_span("global_join", kind="stage", counters=env.counters):
                partitioning = self._combine_samples(env, universe, n_parts)
                keep_masks = self._build_sfilters(env, prep_a, prep_b, predicate)
            with trace_span("local_join", kind="stage", counters=env.counters):
                pairs = self._distributed_join(
                    env, policy_join, engine, partitioning, predicate,
                    keep_masks=keep_masks,
                )
        except StreamingPipeError as err:
            return self._report(env, error=err, engine_profile=GEOS_COST_PROFILE)
        return self._report(env, pairs=pairs, engine_profile=GEOS_COST_PROFILE)

    # -------------------------------------------------------- preprocessing
    def _preprocess(
        self, env: RunEnvironment, policy: PipePolicy, d: str, *, group: str
    ) -> None:
        """Steps 1-6 of HadoopGIS preprocessing for one dataset."""
        counters, hdfs = env.counters, env.hdfs
        hook = lambda job: make_streaming_hook(counters, policy, job)  # noqa: E731

        # Step 1: map-only conversion to the internal TSV format.
        def convert_map(data):
            for line in data.records:
                rec = from_tsv_line(line)
                parse_charge(counters, 1, len(line))
                out = to_tsv_line(rec)
                serialize_charge(counters, 1, len(out))
                yield out

        MapReduceJob(
            f"hgis.{d}.convert",
            hdfs=hdfs, counters=counters, clock=env.clock,
            inputs=[f"/input/{d}"], map_task=convert_map,
            output_path=f"/hgis/{d}/tsv", group=group, executor=env.executor,
            streaming_hook=hook(f"hgis.{d}.convert"),
        ).run()

        # Step 2: map-only sampling of MBRs.
        # int.from_bytes, not hash(): str hashing is PYTHONHASHSEED-salted,
        # which would make the sample (and any skew split derived from it)
        # differ across processes.
        seed = (env.seed, int.from_bytes(d.encode(), "big") & 0xFFFF)

        def sample_map(data):
            # Sample raw lines first; only sampled records are parsed.
            rng = np.random.default_rng((seed, data.split.parts[0][1]))
            keep = rng.random(len(data.records)) < self.sample_fraction
            for line, k in zip(data.records, keep):
                if k:
                    parse_charge(counters, 1, len(line))
                    m = from_tsv_line(line).geometry.mbr
                    yield f"{m.xmin},{m.ymin},{m.xmax},{m.ymax}"

        MapReduceJob(
            f"hgis.{d}.sample",
            hdfs=hdfs, counters=counters, clock=env.clock,
            inputs=[f"/hgis/{d}/tsv"], map_task=sample_map,
            output_path=f"/hgis/{d}/samples", group=group, executor=env.executor,
            streaming_hook=hook(f"hgis.{d}.sample"),
        ).run()

        # Step 3: MR job computing the extent from samples (single reducer).
        def extent_map(data):
            for line in data.records:
                parse_charge(counters, 1, len(line))
                yield ("extent", line)

        def extent_reduce(_key, values):
            boxes = np.array([[float(v) for v in s.split(",")] for s in values])
            counters.add("cpu.ops", len(values))
            if len(boxes):
                yield f"{boxes[:,0].min()},{boxes[:,1].min()},{boxes[:,2].max()},{boxes[:,3].max()}"

        MapReduceJob(
            f"hgis.{d}.extent",
            hdfs=hdfs, counters=counters, clock=env.clock,
            inputs=[f"/hgis/{d}/samples"], map_task=extent_map,
            reduce_task=extent_reduce, output_path=f"/hgis/{d}/extent",
            num_reducers=1, group=group, executor=env.executor,
            streaming_hook=hook(f"hgis.{d}.extent"),
        ).run()

        # Step 4: map-only normalization of sample MBRs against the extent.
        extent_line = (hdfs.read_all(f"/hgis/{d}/extent") or ["0,0,1,1"])[0]
        ex = [float(v) for v in extent_line.split(",")]
        w = (ex[2] - ex[0]) or 1.0
        h = (ex[3] - ex[1]) or 1.0

        def normalize_map(data):
            for line in data.records:
                parse_charge(counters, 1, len(line))
                m = [float(v) for v in line.split(",")]
                out = (
                    f"{(m[0]-ex[0])/w},{(m[1]-ex[1])/h},"
                    f"{(m[2]-ex[0])/w},{(m[3]-ex[1])/h}"
                )
                serialize_charge(counters, 1, len(out))
                yield out

        MapReduceJob(
            f"hgis.{d}.normalize",
            hdfs=hdfs, counters=counters, clock=env.clock,
            inputs=[f"/hgis/{d}/samples"], map_task=normalize_map,
            output_path=f"/hgis/{d}/samples_norm", group=group, executor=env.executor,
            streaming_hook=hook(f"hgis.{d}.normalize"),
        ).run()

        # Step 5: serial local program generating partitions (HDFS↔local copies).
        with trace_span(
            f"hgis.{d}.gen_partitions", kind="phase", counters=counters,
            group=group,
        ):
            before = counters.snapshot()
            sample_lines = hdfs.copy_to_local(f"/hgis/{d}/samples")
            boxes = _parse_mbr_lines(sample_lines)
            counters.add("cpu.ops", max(len(boxes), 1))
            part = GridPartitioner().partition(
                boxes, max(4, hdfs.num_blocks(f"/hgis/{d}/tsv")), _extent_mbr(ex)
            )
            part_lines = [
                f"{b.xmin},{b.ymin},{b.xmax},{b.ymax}" for b in part.boxes
            ]
            annotate(partitions=len(part))
            hdfs.copy_from_local(f"/hgis/{d}/partitions", part_lines, overwrite=True)
            env.clock.record(
                PhaseRecord(
                    name=f"hgis.{d}.gen_partitions",
                    counters=counters.diff(before),
                    tasks=1,  # serial local program
                    group=group,
                )
            )

        # Step 6: MR job assigning partition ids (most expensive step).
        def assign_map(data):
            # Every map task re-reads the partition file and rebuilds an
            # R-tree from it (the paper's criticized per-task rebuild).
            part_lines_local = hdfs.read_all(f"/hgis/{d}/partitions")
            tree = RTree(counters=counters)
            for pid, line in enumerate(part_lines_local):
                vals = [float(v) for v in line.split(",")]
                tree.insert(MBR(*vals), pid)
            for line in data.records:
                parse_charge(counters, 1, len(line))
                rec = from_tsv_line(line)
                hits = tree.query(rec.geometry.mbr)
                if hits.size == 0:
                    hits = [0]
                for pid in hits:
                    out = f"{int(pid)}\t{line}"
                    serialize_charge(counters, 1, len(out))
                    yield (int(pid), line)

        def assign_reduce(pid, lines):
            for line in lines:
                yield f"{pid}\t{line}"

        MapReduceJob(
            f"hgis.{d}.assign",
            hdfs=hdfs, counters=counters, clock=env.clock,
            inputs=[f"/hgis/{d}/tsv"], map_task=assign_map,
            reduce_task=assign_reduce, output_path=f"/hgis/{d}/partitioned",
            group=group, executor=env.executor, streaming_hook=hook(f"hgis.{d}.assign"),
        ).run()

        # Step 6b: pipelined cat|sort|uniq dedup over the whole partitioned
        # file — one serial streaming process; the paper's broken-pipe site.
        with trace_span(
            f"hgis.{d}.dedup", kind="phase", counters=counters, group=group,
        ):
            before = counters.snapshot()
            lines = hdfs.read_all(f"/hgis/{d}/partitioned")
            volume_in = sum(len(l) + 1 for l in lines)
            counters.add("sort.ops", len(lines) * max(np.log2(max(len(lines), 2)), 1.0))
            deduped = sorted(set(lines))
            volume_out = sum(len(l) + 1 for l in deduped)
            counters.add("streaming.processes")
            counters.add("pipe.bytes", volume_in + volume_out)
            annotate(bytes=volume_in + volume_out, records=len(lines))
            hdfs.write_file(f"/hgis/{d}/partitioned_dedup", deduped, overwrite=True)
            env.clock.record(
                PhaseRecord(
                    name=f"hgis.{d}.dedup",
                    counters=counters.diff(before),
                    tasks=1,
                    group=group,
                )
            )
        policy.check(f"hgis.{d}.dedup", "reduce", volume_in + volume_out)

    # ---------------------------------------------------------- global join
    def _combine_samples(
        self, env: RunEnvironment, universe: MBR, n_parts: int
    ) -> SpatialPartitioning:
        """Serial local step: concatenate both samples, build new partitions.

        The preprocessing partition ids cannot be reused (the two datasets
        were partitioned independently), so HadoopGIS pays this extra
        serial round trip — a design cost the paper highlights.
        """
        counters, hdfs = env.counters, env.hdfs
        with trace_span(
            "hgis.join.combine_samples", kind="phase", counters=counters,
            group="join",
        ):
            before = counters.snapshot()
            lines = hdfs.copy_to_local("/hgis/a/samples") + hdfs.copy_to_local(
                "/hgis/b/samples"
            )
            boxes = _parse_mbr_lines(lines)
            counters.add("cpu.ops", max(len(boxes), 1))
            part = self.partitioner.partition(boxes, n_parts, universe)
            if self.shuffle is not None and self.shuffle.repartition:
                # SATO-style quality stats over the combined sample: hot
                # cells are re-gridded before the partition file ships,
                # so the join job's reducers see the finer granularity.
                part, qstats, report = split_hot_cells(
                    part,
                    boxes,
                    hot_factor=self.shuffle.hot_factor,
                    max_splits=self.shuffle.max_splits,
                    leaves=self.shuffle.split_leaves,
                )
                if report.hot_cells:
                    counters.add("skew.cells_split", len(report.hot_cells))
                    counters.add("skew.cells_added", report.cells_added)
                annotate(
                    sampled_skew=round(qstats.skew, 4),
                    cells_split=len(report.hot_cells),
                    cells_added=report.cells_added,
                )
            part_lines = [f"{b.xmin},{b.ymin},{b.xmax},{b.ymax}" for b in part.boxes]
            annotate(samples=len(lines), partitions=len(part))
            hdfs.copy_from_local("/hgis/join/partitions", part_lines, overwrite=True)
            env.clock.record(
                PhaseRecord(
                    name="hgis.join.combine_samples",
                    counters=counters.diff(before),
                    tasks=1,
                    group="join",
                )
            )
        return part

    def _build_sfilters(
        self, env: RunEnvironment, prep_a, prep_b, predicate: JoinPredicate
    ) -> Optional[dict]:
        """Serial local step: one sFilter per side from the prepared MBRs.

        Returns ``{"A": keep_mask, "B": keep_mask}`` (rid-positional) or
        ``None`` when the feature is off.  A ``False`` entry means the
        record's MBR provably intersects nothing on the opposite side, so
        the join job's mappers drop it before it is serialized into the
        shuffle.
        """
        if self.shuffle is None or not self.shuffle.sfilter:
            return None
        counters = env.counters
        with trace_span(
            "hgis.join.build_sfilter", kind="phase", counters=counters,
            group="join",
        ):
            before = counters.snapshot()
            sf_a = SFilter(prep_a.batch.mbrs, resolution=self.shuffle.resolution)
            sf_b = SFilter(prep_b.batch.mbrs, resolution=self.shuffle.resolution)
            counters.add("shuffle.sfilter_builds", 2)
            counters.add("cpu.ops", len(prep_a.batch.mbrs) + len(prep_b.batch.mbrs))
            margin = predicate.filter_margin
            keep_masks = {
                "A": sf_b.contains(prep_a.batch.mbrs, margin=margin),
                "B": sf_a.contains(prep_b.batch.mbrs, margin=margin),
            }
            annotate(
                sfilter_keep_a=int(keep_masks["A"].sum()),
                sfilter_keep_b=int(keep_masks["B"].sum()),
            )
            env.clock.record(
                PhaseRecord(
                    name="hgis.join.build_sfilter",
                    counters=counters.diff(before),
                    tasks=1,  # serial local program, like gen_partitions
                    group="join",
                )
            )
        return keep_masks

    def _distributed_join(
        self,
        env: RunEnvironment,
        policy: PipePolicy,
        engine,
        partitioning: SpatialPartitioning,
        predicate: JoinPredicate = INTERSECTS,
        *,
        keep_masks: Optional[dict] = None,
    ) -> set[tuple[int, int]]:
        """The final MR job: map assigns new partition ids to *both*
        datasets, reducers perform the local join per partition.

        Pipe-capacity checks happen inside the tasks, which know which
        dataset each record belongs to and convert volumes to paper scale
        per side (*policy* carries byte_scale=1).
        """
        counters, hdfs = env.counters, env.hdfs
        results: set[tuple[int, int]] = set()

        scale_of = {"A": env.scale_a[1], "B": env.scale_b[1]}

        def join_map(data):
            part_lines = hdfs.read_all("/hgis/join/partitions")
            tree = RTree(counters=counters)
            for pid, line in enumerate(part_lines):
                vals = [float(v) for v in line.split(",")]
                tree.insert(MBR(*vals), pid)
            path = data.split.parts[0][0]
            side = "A" if path == "/hgis/a/tsv" else "B"
            logical_volume = 0.0
            for line in data.records:
                parse_charge(counters, 1, len(line))
                logical_volume += (len(line) + 1) * scale_of[side]
                rec = from_tsv_line(line)
                if keep_masks is not None and not keep_masks[side][rec.rid]:
                    # sFilter prune: never serialized, never shuffled —
                    # the record's would-be shuffle bytes are credited to
                    # shuffle.bytes_pruned instead of shuffle.bytes_disk.
                    counters.add("shuffle.records_pruned", 1)
                    counters.add(
                        "shuffle.bytes_pruned",
                        (len(line) + 1) * scale_of[side],
                    )
                    continue
                probe = (
                    predicate.expand(rec.geometry.mbr) if side == "A" else rec.geometry.mbr
                )
                hits = tree.query(probe)
                if hits.size == 0:
                    hits = [0]
                for pid in hits:
                    out = f"{int(pid)}\t{side}\t{line}"
                    serialize_charge(counters, 1, len(out))
                    logical_volume += (len(out) + 1) * scale_of[side]
                    yield (int(pid), f"{side}\t{line}")
            policy.check("hgis.join", "map", logical_volume)

        def join_reduce(_pid, values):
            a_recs, b_recs = [], []
            logical_volume = 0.0
            for value in values:
                side, _, line = value.partition("\t")
                parse_charge(counters, 1, len(value))
                logical_volume += (len(value) + 1) * scale_of[side]
                rec = from_tsv_line(line)
                (a_recs if side == "A" else b_recs).append(rec)
            policy.check("hgis.join", "reduce", logical_volume)
            if not a_recs or not b_recs:
                return
            if self.local_algorithm == "indexed_nested_loop":
                # Local join: dynamic R-tree over the B side, probe with A
                # — HadoopGIS's historical in-reducer join, charge-exact.
                tree = RTree(counters=counters)
                for j, rec in enumerate(b_recs):
                    tree.insert(rec.geometry.mbr, j)
                candidates = []
                for i, rec in enumerate(a_recs):
                    for j in tree.query(predicate.expand(rec.geometry.mbr)):
                        candidates.append((i, int(j)))
                counters.add("join.candidates", len(candidates))
                n_candidates = len(candidates)
                # Each candidate refinement is a separate call from the
                # Python streaming layer into the C++ GEOS library — the
                # per-call overhead, not the geometry math, dominates
                # HadoopGIS's DJ.
                counters.add("streaming.refine_calls", n_candidates)
                refined = refine_candidates(
                    [r.geometry for r in a_recs],
                    [r.geometry for r in b_recs],
                    candidates,
                    engine,
                    predicate,
                )
            else:
                # Plan-selected alternative: same refined pairs, different
                # filter cost; the per-candidate streaming-call tax stays
                # (refinement still crosses the pipe either way).
                info: dict = {}
                refined = local_join(
                    self.local_algorithm,
                    [r.geometry for r in a_recs],
                    [r.geometry for r in b_recs],
                    engine,
                    counters=counters,
                    predicate=predicate,
                    info=info,
                )
                n_candidates = info.get("candidates", 0)
                counters.add("streaming.refine_calls", n_candidates)
            # Lands on the enclosing partition span (from MapReduceJob).
            annotate(
                a_records=len(a_recs), b_records=len(b_recs),
                candidates=n_candidates, refined=len(refined),
            )
            for i, j in refined:
                yield (a_recs[i].rid, b_recs[j].rid)

        job = MapReduceJob(
            "hgis.join",
            hdfs=hdfs, counters=counters, clock=env.clock,
            inputs=["/hgis/a/tsv", "/hgis/b/tsv"],
            map_task=join_map, reduce_task=join_reduce,
            output_path="/hgis/join/results",
            num_reducers=max(len(partitioning), 1),
            group="join", executor=env.executor,
            # Accounting-only hook: failure checks run inside the tasks
            # with per-side logical volumes.
            streaming_hook=make_streaming_hook(counters, PipePolicy(), "hgis.join"),
        )
        job.run()
        # Multi-assignment can emit the same result pair from two partitions;
        # a final dedup pass (sort-unique again) removes them.
        with trace_span(
            "hgis.join.dedup_results", kind="phase", counters=counters,
            group="join",
        ):
            before = counters.snapshot()
            out_pairs = hdfs.read_all("/hgis/join/results")
            counters.add(
                "sort.ops", len(out_pairs) * max(np.log2(max(len(out_pairs), 2)), 1.0)
            )
            results = set(out_pairs)
            annotate(pairs_in=len(out_pairs), pairs_out=len(results))
            env.clock.record(
                PhaseRecord(
                    name="hgis.join.dedup_results",
                    counters=counters.diff(before),
                    tasks=1,
                    group="join",
                )
            )
        return results

    # ------------------------------------------------------------ stage map
    def stage_trace(self) -> StageTrace:
        """HadoopGIS's pipeline in Fig.-1 framework terms."""
        P, G, L = Stage.PREPROCESSING, Stage.GLOBAL_JOIN, Stage.LOCAL_JOIN
        return StageTrace(
            system=self.name,
            access_model=DataAccessModel.STREAMING,
            geometry_library="geos",
            platform="hadoop",
            steps=[
                StageStep("convert to TSV (map-only MR ×2 datasets)", P, RunsOn.MAPPER, True, True),
                StageStep("sample MBRs (map-only MR)", P, RunsOn.MAPPER, True, True),
                StageStep("compute extent (MR, single reducer)", P, RunsOn.REDUCER, True, True),
                StageStep("normalize samples (map-only MR)", P, RunsOn.MAPPER, True, True),
                StageStep("generate partitions (serial, HDFS↔local copies)", P, RunsOn.LOCAL_PROGRAM, True, True),
                StageStep("assign partition ids (MR)", P, RunsOn.MAPPER, True, True),
                StageStep("dedup partitioned data (cat|sort|uniq)", P, RunsOn.LOCAL_PROGRAM, True, True),
                StageStep("combine samples, new partitions (serial)", G, RunsOn.LOCAL_PROGRAM, True, True),
                StageStep("rebuild R-tree per map task; re-assign both datasets", G, RunsOn.MAPPER, True, False,
                          "partition ids from preprocessing cannot be reused"),
                StageStep("shuffle (partition id as key)", G, RunsOn.REDUCER, False, False),
                StageStep("indexed nested loop + GEOS refinement", L, RunsOn.REDUCER, False, True),
            ],
        )


def _default_partitions(n_records: int) -> int:
    return int(np.clip(n_records // 400, 4, 256))


def _parse_mbr_lines(lines: Sequence[str]) -> MBRArray:
    if not lines:
        return MBRArray.empty()
    rows = np.array([[float(v) for v in line.split(",")] for line in lines])
    return MBRArray(rows)


def _extent_mbr(ex: Sequence[float]) -> MBR:
    return MBR(ex[0], ex[1], ex[2], ex[3])
