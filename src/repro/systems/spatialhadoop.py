"""SpatialHadoop: spatial joins tightly integrated into Hadoop (Eldawy &
Mokbel, ICDE 2015).

Reproduces the design the paper analyzes (Section II, Fig. 1b):

* **Random data access** — records live in typed HDFS block files the
  system can address block-by-block; text is parsed exactly once.
* **Two-MR-job indexing per dataset** — job 1 samples and builds the
  partitioning (partition MBRs stored in a ``_master`` file); job 2
  assigns each record to its best partition, shuffles on partition id so
  co-partitioned records land in the same block file, writes a per-block
  STR-tree index at the head of each block ("virtually for free"), and
  expands partition MBRs to their contents.
* **Global join inside getSplits** — the job master reads both
  ``_master`` files and runs a *serial* in-memory spatial join (plane
  sweep) over partition MBRs to emit paired-block splits.
* **Map-only local join** — each map task reads its two blocks and runs
  a plane-sweep (or synchronized R-tree) join with JTS-like refinement.
  No shuffle, no reducers — the design advantage the paper highlights.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.framework import (
    DataAccessModel,
    RunsOn,
    Stage,
    StageStep,
    StageTrace,
)
from ..core.globaljoin import pair_partitions_sweep
from ..core.localjoin import local_join
from ..core.partitioning import STRPartitioner, SpatialPartitioning
from ..core.predicate import INTERSECTS, JoinPredicate
from ..data.loaders import SpatialRecord, from_tsv_line
from ..exec.task import emit
from ..geometry.batch import GeometryBatch
from ..geometry.engine import JTS_COST_PROFILE, make_engine
from ..geometry.mbr import MBRArray
from ..hdfs.filesystem import Block
from ..index.strtree import STRtree
from ..mapreduce.job import InputFormat, MapReduceJob, Split
from ..mapreduce.streaming import parse_charge, serialize_charge
from ..pairs import PairBlock, unique_pairs
from ..shuffle import SFilter, resolve_shuffle, split_hot_cells
from ..trace.core import annotate, span as trace_span
from .base import RunEnvironment, RunReport, SpatialJoinSystem

__all__ = ["SpatialHadoop"]


class _BinarySpatialInputFormat(InputFormat):
    """Pairs blocks of the two indexed files by partition-MBR intersection.

    This is the ``getSplits`` overload of SpatialHadoop's
    ``BinarySpatialInputFormat``: the master reads both ``_master`` files
    (partition MBRs) and runs a serial spatial join to emit one split per
    intersecting block pair.
    """

    def __init__(self, counters, clock, margin: float = 0.0):
        self.counters = counters
        self.clock = clock
        self.margin = margin  # distance-join predicate margin

    def get_splits(self, hdfs, inputs):
        from ..cluster.simclock import PhaseRecord

        left_data, right_data = inputs
        with trace_span(
            "shadoop.getSplits(global join)", kind="phase",
            counters=self.counters, group="join",
        ):
            before = self.counters.snapshot()
            left_mbrs = _read_master(hdfs, left_data + "_master")
            right_mbrs = _read_master(hdfs, right_data + "_master")
            pairs = pair_partitions_sweep(
                left_mbrs, right_mbrs, self.counters, margin=self.margin
            )
            annotate(partitions=(len(left_mbrs), len(right_mbrs)),
                     split_pairs=len(pairs))
            self.clock.record(
                PhaseRecord(
                    name="shadoop.getSplits(global join)",
                    counters=self.counters.diff(before),
                    tasks=1,  # serial, on the job master
                    group="join",
                )
            )
        return [
            Split(parts=[(left_data, i), (right_data, j)], info={"pair": (i, j)})
            for i, j in pairs.tolist()
        ]


class SpatialHadoop(SpatialJoinSystem):
    """The SpatialHadoop pipeline on the simulated substrates."""

    name = "SpatialHadoop"
    engine_name = "jts"

    def __init__(
        self,
        *,
        n_partitions: Optional[int] = None,
        sample_fraction: float = 0.05,
        local_algorithm: Optional[str] = None,
        partitioner=None,
        plan=None,
        shuffle=None,
    ):
        # Resolution order: explicit kwargs > plan fields > legacy
        # defaults (plane sweep over an STR partitioning).
        if plan is not None:
            if plan.system != self.name:
                raise ValueError(
                    f"plan targets {plan.system}, not {self.name}"
                )
            if n_partitions is None and plan.n_partitions:
                n_partitions = plan.n_partitions
            if partitioner is None:
                partitioner = plan.partitioner
            if local_algorithm is None:
                local_algorithm = plan.local_algorithm
            if shuffle is None:
                shuffle = plan.shuffle == "skew"
        self.shuffle = resolve_shuffle(shuffle)
        local_algorithm = local_algorithm or "plane_sweep"
        if local_algorithm not in ("plane_sweep", "sync_rtree"):
            raise ValueError(
                "SpatialHadoop offers plane_sweep or sync_rtree local joins"
            )
        self.n_partitions = n_partitions
        self.sample_fraction = sample_fraction
        self.local_algorithm = local_algorithm
        if isinstance(partitioner, str):
            from ..core.partitioning import make_partitioner

            partitioner = make_partitioner(partitioner)
        self.partitioner = partitioner or STRPartitioner()

    # ------------------------------------------------------------------ run
    def run(
        self, env: RunEnvironment, left, right, predicate: JoinPredicate = INTERSECTS
    ) -> RunReport:
        """Execute the full SpatialHadoop pipeline (see the module docstring).

        Composed from the prepare and query halves; charge totals,
        per-phase deltas and span structure are identical to the
        historical monolithic pipeline.
        """
        prep_a = self.prepare_dataset(env, "a", left)
        prep_b = self.prepare_dataset(env, "b", right)
        return self.join_prepared(env, prep_a, prep_b, predicate)

    # ------------------------------------------------------- prepare half
    def _prepare_role(self, env: RunEnvironment, role: str, batch) -> None:
        # SpatialHadoop sizes partitions to HDFS blocks: one partition per
        # block of the dataset being indexed (scale-stable by design).
        n_parts = self.n_partitions or max(
            2, env.hdfs.num_blocks(f"/input/{role}")
        )
        group = "index_a" if role == "a" else "index_b"
        with trace_span(f"preprocess:{role}", kind="stage", counters=env.counters):
            self._index_dataset(env, role, batch, n_parts, group=group)

    def _prepare_prefixes(self, role: str) -> tuple:
        return (f"/input/{role}", f"/shadoop/{role}")

    # --------------------------------------------------------- query half
    def join_prepared(
        self,
        env: RunEnvironment,
        prep_a,
        prep_b,
        predicate: JoinPredicate = INTERSECTS,
    ) -> RunReport:
        """The query half: the map-only distributed join over the two
        prepared R+-tree indexes (no modelled failures)."""
        engine = make_engine("jts", env.counters)
        with trace_span("join", kind="stage", counters=env.counters):
            pairs = self._distributed_join(env, engine, predicate)
        return self._report(env, pairs=pairs, engine_profile=JTS_COST_PROFILE)

    # --------------------------------------------------------------- indexing
    def _index_dataset(
        self,
        env: RunEnvironment,
        d: str,
        batch: GeometryBatch,
        n_parts: int,
        *,
        group: str,
    ) -> None:
        counters, hdfs = env.counters, env.hdfs
        universe = batch.extent()
        # int.from_bytes, not hash(): str hashing is PYTHONHASHSEED-salted,
        # which would make the sample (and any skew split derived from it)
        # differ across processes.
        seed = (env.seed, int.from_bytes(d.encode(), "big") & 0xFFFF)

        # ---- MR job 1: sample and build the partitioning. -----------------
        def sample_map(data):
            # Lines are sampled *before* parsing: unsampled records flow
            # through untouched (SpatialHadoop samples raw text lines).
            rng = np.random.default_rng((seed, data.split.parts[0][1]))
            keep = rng.random(len(data.records)) < self.sample_fraction
            for line, k in zip(data.records, keep):
                if k:
                    parse_charge(counters, 1, len(line))
                    m = from_tsv_line(line).geometry.mbr
                    yield ("sample", (m.xmin, m.ymin, m.xmax, m.ymax))

        def sample_reduce(_key, values):
            counters.add("cpu.ops", len(values))
            boxes = MBRArray(np.array(values).reshape(len(values), 4))
            part = self.partitioner.partition(boxes, n_parts, universe)
            if self.shuffle is not None and self.shuffle.repartition:
                # SATO-style quality stats over this dataset's sample:
                # hot cells split before the indexed blocks are written,
                # so the map-only join sees the finer block granularity.
                part, qstats, report = split_hot_cells(
                    part,
                    boxes,
                    hot_factor=self.shuffle.hot_factor,
                    max_splits=self.shuffle.max_splits,
                    leaves=self.shuffle.split_leaves,
                )
                if report.hot_cells:
                    counters.add("skew.cells_split", len(report.hot_cells))
                    counters.add("skew.cells_added", report.cells_added)
                annotate(
                    sampled_skew=round(qstats.skew, 4),
                    cells_split=len(report.hot_cells),
                    cells_added=report.cells_added,
                )
            # Reduce tasks may run in another process: the partitioning
            # travels back to the job master on the task side channel.
            emit("part", part)
            for b in part.boxes:
                yield (b.xmin, b.ymin, b.xmax, b.ymax)

        sample_result = MapReduceJob(
            f"shadoop.{d}.sample+partition",
            hdfs=hdfs, counters=counters, clock=env.clock,
            inputs=[f"/input/{d}"], map_task=sample_map,
            reduce_task=sample_reduce, output_path=f"/shadoop/{d}/seed_master",
            num_reducers=1, group=group, executor=env.executor,
        ).run()
        # Last emission wins: a retried attempt re-emits, and only the
        # final (successful) attempt's partitioning is the real one.
        parts_emitted = sample_result.side.get("part", [])
        part = parts_emitted[-1] if parts_emitted else None
        if part is None:  # degenerate: empty sample — one universe partition
            part = SpatialPartitioning(
                boxes=MBRArray(np.array([universe.as_tuple()])), tiles=False
            )

        # ---- MR job 2: assign, shuffle on partition id, write indexed file.
        def assign_map(data):
            # The seed_master file is broadcast via HDFS runtime: each map
            # task reads the small partition list once.
            hdfs.read_all(f"/shadoop/{d}/seed_master")
            for line in data.records:
                parse_charge(counters, 1, len(line))
                rec = from_tsv_line(line)
                pid = part.assign_best(rec.geometry.mbr)
                yield (pid, rec)

        def assign_reduce(pid, recs):
            emit(pid, list(recs))
            return ()

        assign_result = MapReduceJob(
            f"shadoop.{d}.partition",
            hdfs=hdfs, counters=counters, clock=env.clock,
            inputs=[f"/input/{d}"], map_task=assign_map,
            reduce_task=assign_reduce, output_path=None,
            num_reducers=max(min(len(part), 32), 1), group=group,
            executor=env.executor,
        ).run()
        collected: dict[int, list[SpatialRecord]] = {
            pid: values[-1] for pid, values in assign_result.side.items()
        }

        # Write one HDFS block per partition, each headed by its own
        # STR-tree index, and the _master file of expanded partition MBRs.
        from ..cluster.simclock import PhaseRecord

        write_span = trace_span(
            f"shadoop.{d}.write_indexed_blocks", kind="phase",
            counters=counters, group=group, partitions=len(part),
        )
        write_span.__enter__()
        before = counters.snapshot()
        blocks, master_rows = [], []
        # Parsed rids are positional, so they index straight into the
        # staged batch: block sizes, content MBRs and block-local trees
        # all come from the parse-time cache instead of per-record
        # geometry rebuilds (the WKT round trip is float-exact).
        record_sizes = batch.record_sizes()
        for pid in range(len(part)):
            recs = collected.get(pid, [])
            rows = np.fromiter((r.rid for r in recs), dtype=np.int64, count=len(recs))
            nbytes = int(record_sizes[rows].sum())
            # Serializing typed records into the block file costs CPU
            # proportional to their size (vertex encoding).
            serialize_charge(counters, len(recs), nbytes)
            blocks.append(Block(records=batch.take(rows), nbytes=nbytes))
            master_rows.append(batch.mbrs.take(rows).extent().as_tuple())
        hdfs.write_blocks(f"/shadoop/{d}/data", blocks, overwrite=True)
        for pid, block in enumerate(blocks):
            if len(block.records):
                tree = STRtree(block.records.mbrs, counters=counters)
                # The block-local index costs ~36 bytes per tree node on
                # disk — tiny next to the block data, as the paper notes.
                n_nodes = -(-len(block.records) // tree.leaf_capacity) + 1
                hdfs.attach_block_aux(
                    f"/shadoop/{d}/data", pid, tree, nbytes=36 * n_nodes
                )
        hdfs.write_file(
            f"/shadoop/{d}/data_master",
            [",".join(str(v) for v in row) for row in master_rows],
            overwrite=True,
        )
        env.clock.record(
            PhaseRecord(
                name=f"shadoop.{d}.write_indexed_blocks",
                counters=counters.diff(before),
                tasks=max(min(len(part), 32), 1),
                group=group,
            )
        )
        write_span.__exit__(None, None, None)

    # ------------------------------------------------------------- join
    def _distributed_join(
        self, env: RunEnvironment, engine, predicate: JoinPredicate = INTERSECTS
    ) -> np.ndarray:
        counters, hdfs = env.counters, env.hdfs

        def join_map(data):
            a_batch, b_batch = data.part_records
            annotate(
                partition=data.split.info.get("pair"),
                a_records=len(a_batch), b_records=len(b_batch),
            )
            if not len(a_batch) or not len(b_batch):
                return
            if self.shuffle is not None and self.shuffle.sfilter:
                # Per-split sFilters from the block-head MBRs (readable
                # without record deserialization): a record whose MBR
                # provably intersects nothing in the *paired* block is
                # dropped before it pays the Writable-decoding cost —
                # SpatialHadoop has no shuffle, so deser.records is its
                # data-movement ledger and the prune credits it.
                margin = predicate.filter_margin
                sf_a = SFilter(a_batch.mbrs, resolution=self.shuffle.resolution)
                sf_b = SFilter(b_batch.mbrs, resolution=self.shuffle.resolution)
                counters.add("shuffle.sfilter_builds", 2)
                keep_a = sf_b.contains(a_batch.mbrs, margin=margin)
                keep_b = sf_a.contains(b_batch.mbrs, margin=margin)
                n_pruned = int((~keep_a).sum() + (~keep_b).sum())
                if n_pruned:
                    bytes_pruned = int(
                        a_batch.record_sizes()[~keep_a].sum()
                        + b_batch.record_sizes()[~keep_b].sum()
                    )
                    counters.add("shuffle.records_pruned", n_pruned)
                    counters.add("shuffle.bytes_pruned", bytes_pruned)
                    annotate(pruned=n_pruned)
                    a_batch = a_batch.take(np.flatnonzero(keep_a))
                    b_batch = b_batch.take(np.flatnonzero(keep_b))
                    if not len(a_batch) or not len(b_batch):
                        return
            # Binary block deserialization: every record materialized from
            # a block file pays a per-record Writable-decoding cost.
            counters.add("deser.records", len(a_batch) + len(b_batch))
            refined = local_join(
                self.local_algorithm,
                a_batch,
                b_batch,
                engine,
                counters=counters,
                predicate=predicate,
            )
            annotate(refined=len(refined))
            # The (n, 2) row-index survivors map to dataset ids in one
            # gather and stay columnar — one PairBlock per split, which
            # the simulated HDFS accounts as n pair records.
            if len(refined):
                a_ids, b_ids = a_batch.ids, b_batch.ids
                yield PairBlock(
                    np.stack([a_ids[refined[:, 0]], b_ids[refined[:, 1]]], axis=1)
                )

        job = MapReduceJob(
            "shadoop.join",
            hdfs=hdfs, counters=counters, clock=env.clock,
            inputs=["/shadoop/a/data", "/shadoop/b/data"],
            map_task=join_map,
            input_format=_BinarySpatialInputFormat(
                counters, env.clock, margin=predicate.filter_margin
            ),
            output_path="/shadoop/join/results",
            group="join", executor=env.executor,
        )
        job.run()
        return unique_pairs(hdfs.read_all("/shadoop/join/results"))

    # ------------------------------------------------------------ stage map
    def stage_trace(self) -> StageTrace:
        """SpatialHadoop's pipeline in Fig.-1 framework terms."""
        P, G, L = Stage.PREPROCESSING, Stage.GLOBAL_JOIN, Stage.LOCAL_JOIN
        return StageTrace(
            system=self.name,
            access_model=DataAccessModel.RANDOM,
            geometry_library="jts",
            platform="hadoop",
            steps=[
                StageStep("sample + build partitioning (MR job 1)", P, RunsOn.REDUCER, True, True),
                StageStep("assign partition ids, shuffle on pid (MR job 2)", P, RunsOn.MAPPER, True, False),
                StageStep("write indexed block files + _master (MR job 2)", P, RunsOn.REDUCER, False, True,
                          "block-local STR index written at block head, virtually for free"),
                StageStep("pair partition MBRs in getSplits (serial spatial join)", G, RunsOn.MASTER, True, False),
                StageStep("map-only join over paired blocks", L, RunsOn.MAPPER, True, True,
                          "plane-sweep / sync R-tree + JTS refinement; no shuffle"),
            ],
        )


def _default_partitions(n_records: int) -> int:
    return int(np.clip(n_records // 400, 4, 256))


def _read_master(hdfs, path: str) -> MBRArray:
    lines = hdfs.read_all(path)
    if not lines:
        return MBRArray.empty()
    rows = np.array([[float(v) for v in line.split(",")] for line in lines])
    return MBRArray(rows)
