"""Spatial index substrate.

Provides the index structures the three systems rely on:

* :class:`STRtree` — bulk-loaded packed R-tree (JTS STRtree analogue,
  used by SpatialHadoop block indexes and SpatialSpark broadcast/local
  indexes), plus :func:`sync_tree_join` for synchronized-traversal joins.
* :class:`RTree` — dynamic Guttman R-tree (libspatialindex analogue used
  by HadoopGIS map tasks).
* :class:`GridIndex` — uniform grid (SpatialHadoop's grid partitioning).
* :class:`QuadTree` — region quadtree (SATO-style partitioner substrate).
* Hilbert curve helpers for space-filling-curve packing and partitioning.
"""

from .grid import GridIndex
from .hilbert import DEFAULT_ORDER, hilbert_distance, hilbert_sort_order
from .quadtree import QuadTree
from .rtree import RTree
from .strtree import STRtree, str_packing_order, sync_tree_join

__all__ = [
    "STRtree",
    "RTree",
    "GridIndex",
    "QuadTree",
    "str_packing_order",
    "sync_tree_join",
    "hilbert_distance",
    "hilbert_sort_order",
    "DEFAULT_ORDER",
]
