"""Dynamic R-tree with Guttman quadratic split.

Stands in for libspatialindex, which HadoopGIS's mappers rebuild from the
sampled partition MBRs on every task (a design cost the paper calls out).
Unlike :class:`~repro.index.strtree.STRtree` this index supports
incremental insertion, which is how those mappers populate it.

Structure: leaf nodes hold ``(MBR, item_id)`` pairs; internal nodes hold
child nodes directly, and a child's authoritative MBR lives on the child
(``child.mbr``) so there is no duplicated bound to go stale.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..geometry.mbr import EMPTY_MBR, MBR
from ..metrics import Counters

__all__ = ["RTree"]

DEFAULT_MAX_ENTRIES = 16


class _Leaf:
    __slots__ = ("items", "mbr")

    leaf = True

    def __init__(self):
        self.items: list[tuple[MBR, int]] = []
        self.mbr: MBR = EMPTY_MBR

    def __len__(self) -> int:
        return len(self.items)

    def recompute_mbr(self) -> None:
        self.mbr = MBR.union_all(m for m, _ in self.items)


class _Inner:
    __slots__ = ("children", "mbr")

    leaf = False

    def __init__(self):
        self.children: list[Union["_Inner", _Leaf]] = []
        self.mbr: MBR = EMPTY_MBR

    def __len__(self) -> int:
        return len(self.children)

    def recompute_mbr(self) -> None:
        self.mbr = MBR.union_all(c.mbr for c in self.children)


_Node = Union[_Leaf, _Inner]


class RTree:
    """Guttman R-tree (quadratic split) supporting insert and query."""

    def __init__(
        self,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        counters: Optional[Counters] = None,
    ):
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 2)
        self.counters = counters if counters is not None else Counters()
        self._root: _Node = _Leaf()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def extent(self) -> MBR:
        return self._root.mbr

    @property
    def height(self) -> int:
        h, node = 1, self._root
        while not node.leaf:
            node = node.children[0]  # type: ignore[union-attr]
            h += 1
        return h

    # -------------------------------------------------------------- insert
    def insert(self, box: MBR, item_id: int) -> None:
        """Insert one rectangle with its payload id."""
        self.counters.add("index.build_ops")
        path = self._choose_path(box)
        leaf = path[-1]
        assert isinstance(leaf, _Leaf)
        leaf.items.append((box, int(item_id)))
        for node in path:
            node.mbr = node.mbr.union(box)
        self._split_upward(path)
        self._size += 1

    def insert_many(self, boxes, ids=None) -> None:
        """Insert a batch (MBRArray, (n, 4) array, or MBR sequence)."""
        seq = list(boxes)
        ids = range(len(seq)) if ids is None else ids
        for box, item_id in zip(seq, ids):
            if not isinstance(box, MBR):
                box = MBR(float(box[0]), float(box[1]), float(box[2]), float(box[3]))
            self.insert(box, int(item_id))

    def _choose_path(self, box: MBR) -> list[_Node]:
        node: _Node = self._root
        path = [node]
        while not node.leaf:
            self.counters.add("index.node_visits")
            best, best_enl, best_area = None, np.inf, np.inf
            for child in node.children:  # type: ignore[union-attr]
                enl = child.mbr.enlargement(box)
                area = child.mbr.area
                if enl < best_enl or (enl == best_enl and area < best_area):
                    best, best_enl, best_area = child, enl, area
            node = best  # type: ignore[assignment]
            path.append(node)
        return path

    def _split_upward(self, path: list[_Node]) -> None:
        """Split overflowing nodes from the leaf up, growing the root if needed."""
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if len(node) <= self.max_entries:
                break
            sibling = self._quadratic_split(node)
            if depth == 0:
                new_root = _Inner()
                new_root.children = [node, sibling]
                new_root.recompute_mbr()
                self._root = new_root
            else:
                parent = path[depth - 1]
                assert isinstance(parent, _Inner)
                parent.children.append(sibling)
                parent.recompute_mbr()

    def _quadratic_split(self, node: _Node) -> _Node:
        """Split *node* in place; returns the new sibling."""
        self.counters.add("index.splits")
        if node.leaf:
            entries = node.items  # type: ignore[union-attr]
            boxes = [m for m, _ in entries]
        else:
            entries = node.children  # type: ignore[union-attr]
            boxes = [c.mbr for c in entries]

        # Seeds: the pair wasting the most area when grouped together.
        worst, s1, s2 = -np.inf, 0, 1
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                waste = boxes[i].union(boxes[j]).area - boxes[i].area - boxes[j].area
                if waste > worst:
                    worst, s1, s2 = waste, i, j

        group1, group2 = [entries[s1]], [entries[s2]]
        mbr1, mbr2 = boxes[s1], boxes[s2]
        rest = [(boxes[k], entries[k]) for k in range(len(entries)) if k not in (s1, s2)]
        for k, (box, entry) in enumerate(rest):
            remaining = len(rest) - k - 1
            if len(group1) + remaining + 1 == self.min_entries:
                group1.append(entry)
                mbr1 = mbr1.union(box)
                continue
            if len(group2) + remaining + 1 == self.min_entries:
                group2.append(entry)
                mbr2 = mbr2.union(box)
                continue
            d1, d2 = mbr1.enlargement(box), mbr2.enlargement(box)
            if d1 < d2 or (d1 == d2 and mbr1.area <= mbr2.area):
                group1.append(entry)
                mbr1 = mbr1.union(box)
            else:
                group2.append(entry)
                mbr2 = mbr2.union(box)

        sibling: _Node = _Leaf() if node.leaf else _Inner()
        if node.leaf:
            node.items = group1  # type: ignore[union-attr]
            sibling.items = group2  # type: ignore[union-attr]
        else:
            node.children = group1  # type: ignore[union-attr]
            sibling.children = group2  # type: ignore[union-attr]
        node.mbr = mbr1
        sibling.mbr = mbr2
        return sibling

    # --------------------------------------------------------------- query
    def query(self, box: MBR) -> np.ndarray:
        """Sorted item ids of all rectangles intersecting *box*."""
        if box.is_empty or self._size == 0:
            return np.empty(0, dtype=np.int64)
        out: list[int] = []
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            self.counters.add("index.node_visits")
            if node.leaf:
                for item_mbr, item_id in node.items:  # type: ignore[union-attr]
                    if item_mbr.intersects(box):
                        out.append(item_id)
            else:
                for child in node.children:  # type: ignore[union-attr]
                    if child.mbr.intersects(box):
                        stack.append(child)
        return np.array(sorted(out), dtype=np.int64)

    def count_query(self, box: MBR) -> int:
        """Number of items whose MBR intersects *box*."""
        return int(self.query(box).size)

    # ---------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""

        def walk(node: _Node, is_root: bool) -> tuple[int, int]:
            assert len(node) <= self.max_entries, "node overflow"
            if not is_root:
                assert len(node) >= self.min_entries, "node underflow"
            if node.leaf:
                expected = MBR.union_all(m for m, _ in node.items)  # type: ignore[union-attr]
                assert node.mbr == expected, "stale leaf MBR"
                return 1, len(node)
            expected = MBR.union_all(c.mbr for c in node.children)  # type: ignore[union-attr]
            assert node.mbr == expected, "stale inner MBR"
            depths, count = set(), 0
            for child in node.children:  # type: ignore[union-attr]
                assert node.mbr.contains(child.mbr), "child escapes parent"
                d, c = walk(child, False)
                depths.add(d)
                count += c
            assert len(depths) == 1, "unbalanced tree"
            return depths.pop() + 1, count

        if self._size:
            _, count = walk(self._root, True)
            assert count == self._size, "size mismatch"
