"""Uniform grid index.

SpatialHadoop's original partitioner places sampled items into uniform
grid cells; the same structure doubles as a cheap secondary spatial index
(objects are registered in every cell their MBR overlaps, and queries
deduplicate).  Cell assignment is fully vectorized.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry.mbr import MBR, MBRArray
from ..metrics import Counters

__all__ = ["GridIndex"]


class GridIndex:
    """A ``nx × ny`` uniform grid over an extent, indexing MBRs."""

    def __init__(
        self,
        extent: MBR,
        nx: int,
        ny: int,
        *,
        counters: Optional[Counters] = None,
    ):
        if extent.is_empty:
            raise ValueError("GridIndex requires a non-empty extent")
        if nx < 1 or ny < 1:
            raise ValueError("grid dimensions must be >= 1")
        self.extent = extent
        self.nx = nx
        self.ny = ny
        self._cell_w = (extent.width or 1.0) / nx
        self._cell_h = (extent.height or 1.0) / ny
        self.counters = counters if counters is not None else Counters()
        self._cells: dict[int, list[int]] = {}
        self._n_items = 0

    # ------------------------------------------------------------- helpers
    def _col_range(self, xmin: float, xmax: float) -> tuple[int, int]:
        # Clamp both endpoints into the grid: a box touching the extent's
        # max edge floors to column nx, which must land in the last cell
        # (not an empty range) so every inserted item reaches >= 1 cell.
        lo = int(np.floor((xmin - self.extent.xmin) / self._cell_w))
        hi = int(np.floor((xmax - self.extent.xmin) / self._cell_w))
        lo = min(max(lo, 0), self.nx - 1)
        return lo, max(min(hi, self.nx - 1), lo)

    def _row_range(self, ymin: float, ymax: float) -> tuple[int, int]:
        lo = int(np.floor((ymin - self.extent.ymin) / self._cell_h))
        hi = int(np.floor((ymax - self.extent.ymin) / self._cell_h))
        lo = min(max(lo, 0), self.ny - 1)
        return lo, max(min(hi, self.ny - 1), lo)

    def cell_id(self, col: int, row: int) -> int:
        """Row-major id of grid cell (col, row)."""
        return row * self.nx + col

    def cell_mbr(self, cell: int) -> MBR:
        """The rectangle covered by a cell id."""
        row, col = divmod(cell, self.nx)
        return MBR(
            self.extent.xmin + col * self._cell_w,
            self.extent.ymin + row * self._cell_h,
            self.extent.xmin + (col + 1) * self._cell_w,
            self.extent.ymin + (row + 1) * self._cell_h,
        )

    # -------------------------------------------------------------- loading
    def insert(self, box: MBR, item_id: int) -> None:
        """Register *item_id* in every cell its MBR overlaps."""
        if box.is_empty:
            return
        c0, c1 = self._col_range(box.xmin, box.xmax)
        r0, r1 = self._row_range(box.ymin, box.ymax)
        self.counters.add("index.build_ops")
        for row in range(r0, r1 + 1):
            for col in range(c0, c1 + 1):
                self._cells.setdefault(self.cell_id(col, row), []).append(int(item_id))
        self._n_items += 1

    def insert_many(self, mbrs: MBRArray, ids=None) -> None:
        """Insert a batch of rectangles (ids default to positions)."""
        ids = range(len(mbrs)) if ids is None else ids
        for box, item_id in zip(mbrs, ids):
            self.insert(box, item_id)

    def __len__(self) -> int:
        return self._n_items

    @property
    def occupied_cells(self) -> int:
        return len(self._cells)

    # --------------------------------------------------------------- query
    def query(self, box: MBR) -> np.ndarray:
        """Sorted unique item ids registered in cells overlapping *box*.

        Grid candidates are a superset of true MBR hits (cell granularity);
        callers MBR-filter afterwards, as with any filter-phase index.
        """
        if box.is_empty or not self._cells:
            return np.empty(0, dtype=np.int64)
        inter = box.intersection(self.extent)
        if inter.is_empty:
            return np.empty(0, dtype=np.int64)
        c0, c1 = self._col_range(inter.xmin, inter.xmax)
        r0, r1 = self._row_range(inter.ymin, inter.ymax)
        found: set[int] = set()
        for row in range(r0, r1 + 1):
            for col in range(c0, c1 + 1):
                self.counters.add("index.node_visits")
                found.update(self._cells.get(self.cell_id(col, row), ()))
        return np.array(sorted(found), dtype=np.int64)

    def count_query(self, box: MBR) -> int:
        """Number of candidate items for *box* (grid superset)."""
        return int(self.query(box).size)

    def assign_points(self, xy: np.ndarray) -> np.ndarray:
        """Vectorized cell id for each point (clamped into the grid)."""
        xy = np.asarray(xy, dtype=np.float64)
        cols = np.clip(
            ((xy[:, 0] - self.extent.xmin) / self._cell_w).astype(np.int64), 0, self.nx - 1
        )
        rows = np.clip(
            ((xy[:, 1] - self.extent.ymin) / self._cell_h).astype(np.int64), 0, self.ny - 1
        )
        return rows * self.nx + cols
