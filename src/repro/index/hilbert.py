"""Hilbert space-filling curve utilities.

Used for Hilbert-packed R-tree loading and for the Hilbert partitioner in
:mod:`repro.core.partitioning` (one of the SATO-style partitioning
strategies HadoopGIS's framework supports).  The conversion is the
classical iterative rotate/flip construction, vectorized over NumPy arrays.
"""

from __future__ import annotations

import numpy as np

from ..geometry.mbr import MBR

__all__ = ["hilbert_distance", "hilbert_sort_order", "DEFAULT_ORDER"]

#: Default curve order: 2^16 cells per axis is fine-grained enough for the
#: dataset extents used here while keeping distances in int64 range.
DEFAULT_ORDER = 16


def hilbert_distance(x: np.ndarray, y: np.ndarray, order: int = DEFAULT_ORDER) -> np.ndarray:
    """Distance along the Hilbert curve for integer cell coordinates.

    *x*, *y* must already be integer cell coordinates in
    ``[0, 2**order)``.  Returns int64 distances; vectorized.
    """
    x = np.asarray(x, dtype=np.int64).copy()
    y = np.asarray(y, dtype=np.int64).copy()
    if np.any((x < 0) | (x >= 1 << order) | (y < 0) | (y >= 1 << order)):
        raise ValueError(f"cell coordinates out of range for order {order}")
    rx = np.zeros_like(x)
    ry = np.zeros_like(y)
    d = np.zeros_like(x)
    s = np.int64(1) << (order - 1)
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate quadrant.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = x[flip]
        y_f = y[flip]
        x[flip] = s - 1 - x_f
        y[flip] = s - 1 - y_f
        x_s = x[swap].copy()
        x[swap] = y[swap]
        y[swap] = x_s
        s >>= 1
    return d


def hilbert_sort_order(
    centers: np.ndarray, extent: MBR, order: int = DEFAULT_ORDER
) -> np.ndarray:
    """Indices that sort 2-D points by Hilbert distance within *extent*.

    Points are snapped to the ``2**order`` grid over the extent; degenerate
    extents (zero width/height) collapse gracefully to one axis.
    """
    centers = np.asarray(centers, dtype=np.float64)
    n_cells = (1 << order) - 1
    width = extent.width or 1.0
    height = extent.height or 1.0
    cx = np.clip(((centers[:, 0] - extent.xmin) / width * n_cells), 0, n_cells)
    cy = np.clip(((centers[:, 1] - extent.ymin) / height * n_cells), 0, n_cells)
    d = hilbert_distance(cx.astype(np.int64), cy.astype(np.int64), order)
    return np.argsort(d, kind="stable")
