"""Region quadtree index.

One of the partitioning-oriented index structures discussed in the SATO
partitioning framework the paper cites for HadoopGIS; also useful as an
alternative local index in ablations.  Items are stored in leaves they
overlap (an item spanning a split line is registered in several leaves,
and queries deduplicate).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry.mbr import MBR
from ..metrics import Counters

__all__ = ["QuadTree"]

DEFAULT_NODE_CAPACITY = 16
DEFAULT_MAX_DEPTH = 12


class _QNode:
    __slots__ = ("box", "depth", "items", "children")

    def __init__(self, box: MBR, depth: int):
        self.box = box
        self.depth = depth
        self.items: list[tuple[MBR, int]] = []
        self.children: list["_QNode"] | None = None

    def quadrants(self) -> list[MBR]:
        cx, cy = self.box.center
        b = self.box
        return [
            MBR(b.xmin, b.ymin, cx, cy),
            MBR(cx, b.ymin, b.xmax, cy),
            MBR(b.xmin, cy, cx, b.ymax),
            MBR(cx, cy, b.xmax, b.ymax),
        ]


class QuadTree:
    """A region quadtree over a fixed extent."""

    def __init__(
        self,
        extent: MBR,
        *,
        node_capacity: int = DEFAULT_NODE_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
        counters: Optional[Counters] = None,
    ):
        if extent.is_empty:
            raise ValueError("QuadTree requires a non-empty extent")
        if node_capacity < 1:
            raise ValueError("node_capacity must be >= 1")
        self.extent = extent
        self.node_capacity = node_capacity
        self.max_depth = max_depth
        self.counters = counters if counters is not None else Counters()
        self._root = _QNode(extent, 0)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -------------------------------------------------------------- loading
    def insert(self, box: MBR, item_id: int) -> None:
        """Insert a rectangle into every leaf it overlaps."""
        if box.is_empty:
            return
        clipped = box.intersection(self.extent)
        if clipped.is_empty:
            # Outside the indexed region: keep at the root so it is still
            # findable (mirrors how block-partitioned systems keep strays).
            self._root.items.append((box, int(item_id)))
            self._size += 1
            return
        self.counters.add("index.build_ops")
        self._insert(self._root, box, int(item_id))
        self._size += 1

    def _insert(self, node: _QNode, box: MBR, item_id: int) -> None:
        if node.children is not None:
            for child in node.children:
                if child.box.intersects(box):
                    self._insert(child, box, item_id)
            return
        node.items.append((box, item_id))
        if len(node.items) > self.node_capacity and node.depth < self.max_depth:
            self._split(node)

    def _split(self, node: _QNode) -> None:
        self.counters.add("index.splits")
        node.children = [_QNode(q, node.depth + 1) for q in node.quadrants()]
        items, node.items = node.items, []
        for box, item_id in items:
            for child in node.children:
                if child.box.intersects(box):
                    child.items.append((box, item_id))

    def insert_many(self, mbrs, ids=None) -> None:
        """Insert a batch of rectangles (ids default to positions)."""
        seq = list(mbrs)
        ids = range(len(seq)) if ids is None else ids
        for box, item_id in zip(seq, ids):
            self.insert(box, item_id)

    # --------------------------------------------------------------- query
    def query(self, box: MBR) -> np.ndarray:
        """Sorted unique item ids whose MBRs intersect *box*."""
        if box.is_empty or self._size == 0:
            return np.empty(0, dtype=np.int64)
        found: set[int] = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.counters.add("index.node_visits")
            if not node.box.intersects(box) and node is not self._root:
                continue
            for item_mbr, item_id in node.items:
                if item_mbr.intersects(box):
                    found.add(item_id)
            if node.children is not None:
                for child in node.children:
                    if child.box.intersects(box):
                        stack.append(child)
        return np.array(sorted(found), dtype=np.int64)

    def count_query(self, box: MBR) -> int:
        """Number of items whose MBR intersects *box*."""
        return int(self.query(box).size)

    @property
    def depth(self) -> int:
        best = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            best = max(best, node.depth)
            if node.children is not None:
                stack.extend(node.children)
        return best

    def leaf_boxes(self) -> list[MBR]:
        """Bounding boxes of all leaves (used by quadtree partitioners)."""
        out = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.children is None:
                out.append(node.box)
            else:
                stack.extend(node.children)
        return out
