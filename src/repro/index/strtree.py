"""Sort-Tile-Recursive (STR) bulk-loaded R-tree.

This is the workhorse index of the reproduction: SpatialHadoop packs one
per HDFS block in its preprocessing stage, SpatialSpark builds one over
partition MBRs for the broadcast global join and one per partition for the
local indexed nested-loop join.

The tree is stored level-by-level in flat NumPy arrays (struct-of-arrays,
per the HPC guides): each level keeps an ``(m, 4)`` bounds array plus
contiguous child ranges into the level below, so a query touches only
vectorized slice operations — no per-node Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry.mbr import MBR, MBRArray
from ..metrics import Counters

__all__ = ["STRtree", "str_packing_order", "sync_tree_join"]

DEFAULT_LEAF_CAPACITY = 16
DEFAULT_FANOUT = 16


def str_packing_order(bounds: np.ndarray, capacity: int) -> np.ndarray:
    """Return the STR tiling order for an ``(n, 4)`` bounds array.

    Sort-Tile-Recursive: sort by center-x, cut into ``S = ceil(sqrt(n/c))``
    vertical slabs of ``S*c`` entries, sort each slab by center-y.  The
    returned permutation groups spatially-close rectangles into runs of
    *capacity*.
    """
    n = bounds.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    centers_x = (bounds[:, 0] + bounds[:, 2]) / 2.0
    centers_y = (bounds[:, 1] + bounds[:, 3]) / 2.0
    n_groups = -(-n // capacity)
    n_slabs = int(np.ceil(np.sqrt(n_groups)))
    slab_size = -(-n // n_slabs)
    by_x = np.argsort(centers_x, kind="stable")
    order = np.empty(n, dtype=np.int64)
    for s in range(n_slabs):
        slab = by_x[s * slab_size : (s + 1) * slab_size]
        order[s * slab_size : s * slab_size + slab.size] = slab[
            np.argsort(centers_y[slab], kind="stable")
        ]
    return order


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for each (start, count) pair."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.zeros(counts.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)


@dataclass
class _Level:
    """One tree level: node bounds plus contiguous child ranges below."""

    bounds: np.ndarray  # (m, 4)
    starts: np.ndarray  # (m,) start index into the level below (or items)
    ends: np.ndarray  # (m,) end index (exclusive)


def _pack_level(bounds: np.ndarray, fanout: int) -> _Level:
    """Group consecutive runs of *fanout* nodes into parents."""
    m = bounds.shape[0]
    n_parents = -(-m // fanout)
    starts = np.arange(n_parents, dtype=np.int64) * fanout
    ends = np.minimum(starts + fanout, m)
    parent_bounds = np.empty((n_parents, 4), dtype=np.float64)
    for i in range(n_parents):
        chunk = bounds[starts[i] : ends[i]]
        parent_bounds[i, 0] = chunk[:, 0].min()
        parent_bounds[i, 1] = chunk[:, 1].min()
        parent_bounds[i, 2] = chunk[:, 2].max()
        parent_bounds[i, 3] = chunk[:, 3].max()
    return _Level(parent_bounds, starts, ends)


class STRtree:
    """Immutable, bulk-loaded STR-packed R-tree over a batch of MBRs.

    Parameters
    ----------
    mbrs:
        The rectangles to index (``MBRArray`` or ``(n, 4)`` array).
    leaf_capacity, fanout:
        Packing widths for leaves and internal nodes.
    counters:
        Optional shared :class:`~repro.metrics.Counters`; when present,
        every build and query charges ``index.*`` counters used by the
        simulated-time cost model.
    """

    def __init__(
        self,
        mbrs: MBRArray | np.ndarray,
        *,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        fanout: int = DEFAULT_FANOUT,
        counters: Optional[Counters] = None,
    ):
        if isinstance(mbrs, MBRArray):
            bounds = mbrs.data
        else:
            bounds = np.ascontiguousarray(mbrs, dtype=np.float64)
        if leaf_capacity < 2 or fanout < 2:
            raise ValueError("leaf_capacity and fanout must be >= 2")
        self.counters = counters if counters is not None else Counters()
        self._n_items = bounds.shape[0]
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout

        # Leaf level: STR-permute items, then group runs of leaf_capacity.
        order = str_packing_order(bounds, leaf_capacity)
        self.item_ids = order  # position -> original item id
        item_bounds = bounds[order] if order.size else bounds.reshape(0, 4)
        self._item_bounds = np.ascontiguousarray(item_bounds)

        self._levels: list[_Level] = []
        if self._n_items:
            level = _pack_level(self._item_bounds, leaf_capacity)
            self._levels.append(level)
            while level.bounds.shape[0] > 1:
                level = _pack_level(level.bounds, fanout)
                self._levels.append(level)
        # Accounting: every item placement plus every node creation.
        self.counters.add("index.build_ops", self._n_items)
        self.counters.add("index.nodes_built", sum(l.bounds.shape[0] for l in self._levels))

    # ------------------------------------------------------------ metadata
    def __len__(self) -> int:
        return self._n_items

    @property
    def height(self) -> int:
        """Number of levels above the items (0 for an empty tree)."""
        return len(self._levels)

    @property
    def extent(self) -> MBR:
        if not self._levels:
            return MBRArray(self._item_bounds).extent()
        root = self._levels[-1].bounds[0]
        return MBR(root[0], root[1], root[2], root[3])

    # --------------------------------------------------------------- query
    def query(self, box: MBR) -> np.ndarray:
        """Original ids of all items whose MBR intersects *box*."""
        if self._n_items == 0 or box.is_empty:
            return np.empty(0, dtype=np.int64)
        frontier = np.array([0], dtype=np.int64)  # root node index
        qxmin, qymin, qxmax, qymax = box.xmin, box.ymin, box.xmax, box.ymax
        visits = 0
        # Walk top level -> leaf level, keeping node positions whose bounds hit.
        for level in reversed(self._levels):
            if level is not self._levels[-1]:
                b = level.bounds[frontier]
                visits += frontier.size
                hit = (
                    (b[:, 0] <= qxmax)
                    & (qxmin <= b[:, 2])
                    & (b[:, 1] <= qymax)
                    & (qymin <= b[:, 3])
                )
                frontier = frontier[hit]
                if frontier.size == 0:
                    self.counters.add("index.node_visits", visits)
                    return np.empty(0, dtype=np.int64)
            # Expand to children ranges (positions in the level below).
            spans = [
                np.arange(level.starts[i], level.ends[i]) for i in frontier
            ]
            frontier = np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
        # frontier now holds item positions; test item bounds.
        visits += frontier.size
        self.counters.add("index.node_visits", visits)
        b = self._item_bounds[frontier]
        hit = (
            (b[:, 0] <= qxmax)
            & (qxmin <= b[:, 2])
            & (b[:, 1] <= qymax)
            & (qymin <= b[:, 3])
        )
        return self.item_ids[frontier[hit]]

    def query_many(self, boxes: MBRArray) -> list[np.ndarray]:
        """Query every box in one level-synchronous batched traversal.

        Instead of walking the tree once per box, all live (query, node)
        pairs descend together as two flat arrays, so each level is one
        vectorized bounds test over the whole batch.  Results and the
        ``index.node_visits`` total are bit-identical to calling
        :meth:`query` per box: per query the charge is the pre-filter
        frontier size at every level below the root plus the item-level
        frontier size, and within each query item ids keep the same
        (ascending-position) order.
        """
        n_q = len(boxes)
        empty = np.empty(0, dtype=np.int64)
        if self._n_items == 0 or n_q == 0:
            return [empty] * n_q
        data = boxes.data
        # Empty query boxes never traverse (and never charge), as in query().
        active = np.flatnonzero((data[:, 0] <= data[:, 2]) & (data[:, 1] <= data[:, 3]))
        if active.size == 0:
            return [empty] * n_q
        qidx = active  # stays sorted ascending throughout
        node = np.zeros(active.size, dtype=np.int64)  # root position per query
        visits = 0
        for level in reversed(self._levels):
            if level is not self._levels[-1]:
                visits += node.size
                if node.size:
                    b = level.bounds[node]
                    q = data[qidx]
                    hit = (
                        (b[:, 0] <= q[:, 2])
                        & (q[:, 0] <= b[:, 2])
                        & (b[:, 1] <= q[:, 3])
                        & (q[:, 1] <= b[:, 3])
                    )
                    qidx = qidx[hit]
                    node = node[hit]
            starts = level.starts[node]
            counts = level.ends[node] - starts
            qidx = np.repeat(qidx, counts)
            node = _expand_ranges(starts, counts)
        # node now holds item positions; test item bounds.
        visits += node.size
        if node.size:
            b = self._item_bounds[node]
            q = data[qidx]
            hit = (
                (b[:, 0] <= q[:, 2])
                & (q[:, 0] <= b[:, 2])
                & (b[:, 1] <= q[:, 3])
                & (q[:, 1] <= b[:, 3])
            )
            qidx = qidx[hit]
            node = node[hit]
        self.counters.add("index.node_visits", visits)
        ids = self.item_ids[node]
        per_query = np.bincount(qidx, minlength=n_q)
        return np.split(ids, np.cumsum(per_query[:-1]))

    def count_query(self, box: MBR) -> int:
        """Number of items whose MBR intersects *box*."""
        return int(self.query(box).size)


def sync_tree_join(
    a: STRtree, b: STRtree, counters: Optional[Counters] = None
) -> np.ndarray:
    """Synchronized traversal join of two STR trees.

    Descends both trees simultaneously, pruning subtree pairs whose
    bounds are disjoint — the classic R-tree spatial-join of Brinkhoff
    et al. that SpatialHadoop offers as a local-join algorithm.  The
    traversal is an iterative level-synchronous pair-frontier expansion:
    every generation holds all live ``(node_a, node_b)`` pairs (which
    share one ``(level_a, level_b)`` state, since the descend rule is a
    pure function of the levels), expands the deeper side's children in
    one vectorized step and prunes disjoint child pairs in one bounds
    test.  The generation frontier sizes equal the recursive formulation's
    call multiset, so ``index.node_visits`` / ``index.leaf_pair_tests``
    totals are unchanged — they are simply charged once per call.

    Returns a lexsorted ``(n, 2)`` int64 array of (a_id, b_id) pairs
    whose item MBRs intersect.
    """
    empty = np.empty((0, 2), dtype=np.int64)
    if len(a) == 0 or len(b) == 0:
        return empty
    counters = counters if counters is not None else Counters()
    if not a.extent.intersects(b.extent):
        return empty

    level_a = len(a._levels) - 1
    level_b = len(b._levels) - 1
    na = np.zeros(1, dtype=np.int64)  # frontier: node positions in a
    nb = np.zeros(1, dtype=np.int64)  # paired node positions in b
    visits = 0
    while na.size and (level_a >= 0 or level_b >= 0):
        visits += na.size
        # Descend the deeper side (levels are counted from the leaves).
        if level_a >= 0 and (level_b < 0 or level_a >= level_b):
            level = a._levels[level_a]
            starts = level.starts[na]
            counts = level.ends[na] - starts
            children = _expand_ranges(starts, counts)
            partner = np.repeat(nb, counts)
            child_bounds = (
                a._item_bounds[children]
                if level_a == 0
                else a._levels[level_a - 1].bounds[children]
            )
            other = (
                b._item_bounds[partner]
                if level_b < 0
                else b._levels[level_b].bounds[partner]
            )
            na, nb, level_a = children, partner, level_a - 1
        else:
            level = b._levels[level_b]
            starts = level.starts[nb]
            counts = level.ends[nb] - starts
            children = _expand_ranges(starts, counts)
            partner = np.repeat(na, counts)
            child_bounds = (
                b._item_bounds[children]
                if level_b == 0
                else b._levels[level_b - 1].bounds[children]
            )
            other = (
                a._item_bounds[partner]
                if level_a < 0
                else a._levels[level_a].bounds[partner]
            )
            na, nb, level_b = partner, children, level_b - 1
        hit = (
            (child_bounds[:, 0] <= other[:, 2])
            & (other[:, 0] <= child_bounds[:, 2])
            & (child_bounds[:, 1] <= other[:, 3])
            & (other[:, 1] <= child_bounds[:, 3])
        )
        na, nb = na[hit], nb[hit]
    # Leaf generation: na / nb are item positions in both trees.
    visits += na.size
    counters.add("index.node_visits", visits)
    counters.add("index.leaf_pair_tests", na.size)
    if not na.size:
        return empty
    ba = a._item_bounds[na]
    bb = b._item_bounds[nb]
    hit = (
        (ba[:, 0] <= bb[:, 2])
        & (bb[:, 0] <= ba[:, 2])
        & (ba[:, 1] <= bb[:, 3])
        & (bb[:, 1] <= ba[:, 3])
    )
    pairs = np.stack([a.item_ids[na[hit]], b.item_ids[nb[hit]]], axis=1)
    if pairs.shape[0] < 2:
        return pairs
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
