"""Columnar join-result pairs: the ndarray plane's answer record.

The local-join kernels produce survivors as a lexsorted ``(n, 2)`` int64
ndarray.  :class:`PairBlock` wraps such an array so it can flow through
the simulated HDFS / MapReduce / RDD substrates as *one* record that
logically stands for ``n`` of the documented ``(left_id, right_id)``
tuples.  Byte accounting is kept identical to the per-tuple flow: a
block reports ``serialized_size() == n * estimate_size((int, int))``, so
``hdfs.bytes_written`` / ``bytes_read`` totals do not move when a system
switches from yielding tuples to yielding one block.

The array plane stays columnar until the API boundary: systems convert
to the documented tuple set (``RunReport.pairs``) only in ``_report``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["PairBlock", "unique_pairs"]

#: estimate_size((int, int)) in :mod:`repro.hdfs.sizeof`: two 12-byte
#: varint-ish ints plus one separator byte per element.
_PAIR_BYTES = 26


class PairBlock:
    """A block of ``(left_id, right_id)`` join pairs in columnar form."""

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        self.data = np.ascontiguousarray(data, dtype=np.int64).reshape(-1, 2)

    def __len__(self) -> int:
        return self.data.shape[0]

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for i, j in self.data.tolist():
            yield (i, j)

    def __eq__(self, other) -> bool:
        return isinstance(other, PairBlock) and np.array_equal(
            self.data, other.data
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PairBlock(n={self.data.shape[0]})"

    def serialized_size(self) -> int:
        """Simulated wire size: identical to the per-tuple encoding."""
        return _PAIR_BYTES * self.data.shape[0]

    def __reduce__(self):
        # Process-backend outcomes cross the pipe as the raw array.
        return (PairBlock, (self.data,))


def concat_pairs(blocks: Iterable["PairBlock | Sequence[tuple[int, int]]"]) -> np.ndarray:
    """Concatenate pair blocks (or stray tuple lists) into one array."""
    arrays = []
    for block in blocks:
        if isinstance(block, PairBlock):
            if len(block):
                arrays.append(block.data)
        elif isinstance(block, np.ndarray):
            if block.shape[0]:
                arrays.append(block.reshape(-1, 2).astype(np.int64, copy=False))
        else:  # a legacy iterable of tuples
            rows = list(block)
            if rows:
                arrays.append(np.array(rows, dtype=np.int64).reshape(-1, 2))
    if not arrays:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(arrays, axis=0)


def unique_pairs(blocks: Iterable["PairBlock | Sequence[tuple[int, int]]"]) -> np.ndarray:
    """Deduplicated, lexsorted pair array — ndarray analogue of ``set()``."""
    return np.unique(concat_pairs(blocks), axis=0)
