"""Concurrent query dispatch with a deterministic merge.

Queries of one :meth:`~repro.service.SpatialQueryService.execute` batch
fan out over :func:`repro.exec.pool.run_ordered`; each query executes
against its own private environment (fresh filesystem + counters, the
prepared files installed by reference), so worker threads share nothing
mutable.  All *observable* effects are applied afterwards on the calling
thread, in submission order — the same merge discipline the task
executor uses — which is what makes concurrency 1 / 8 / 64 bit-identical:

* results return in submission order;
* each query's counters merge into the service ledger in submission
  order (sums commute, but the discipline keeps span grafting and any
  future order-sensitive bookkeeping aligned with the serial run);
* finished query spans graft under the service-session root in
  submission order;
* cache hit/miss tallies come from the single-flight cache, which makes
  them a function of the submitted multiset, not of thread interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exec.pool import run_ordered
from ..metrics import Counters

__all__ = ["run_queries"]


@dataclass
class _Outcome:
    """What one worker hands back for the ordered merge."""

    result: object
    span: object = None
    counters: Optional[Counters] = None
    cache_hit: bool = False


def run_queries(service, queries, concurrency: int, plans=None) -> list:
    """Execute *queries* for *service*; results in submission order.

    *plans* pairs each query with its resolved plan (None = legacy); the
    service resolves them serially before dispatch so the plan cache and
    its ledger charges stay deterministic under concurrency.
    """
    if plans is None:
        plans = [None] * len(queries)

    def make_runner(q, plan):
        def run() -> _Outcome:
            fingerprint = service._fingerprint(q, plan)
            if service.cache is None:
                result, sp, counters = service._compute(q, plan)
                return _Outcome(result, sp, counters)
            holder = {}

            def compute():
                result, sp, counters = service._compute(q, plan)
                holder["span"] = sp
                holder["counters"] = counters
                return result

            value, was_hit = service.cache.get_or_compute(
                fingerprint, compute
            )
            if was_hit:
                # Nothing executed: no environment, no counters, all
                # stage work skipped.  A lightweight span still marks
                # the query in the service trace.
                with service._maybe_span(
                    f"query:{q.kind}", cache="hit",
                ) as sp:
                    pass
                return _Outcome(
                    service._as_hit(value), sp, None, cache_hit=True
                )
            return _Outcome(
                value, holder.get("span"), holder.get("counters")
            )

        return run

    outcomes = run_ordered(
        [make_runner(q, plan) for q, plan in zip(queries, plans)],
        workers=concurrency,
    )

    # Ordered merge on the calling thread.
    results = []
    with service._lock:
        for out in outcomes:
            results.append(out.result)
            if out.counters is not None:
                service.counters.merge(out.counters)
            service.counters.add("service.queries", 1)
            if service.cache is not None:
                if out.cache_hit:
                    service.counters.add("service.cache.hits", 1)
                else:
                    service.counters.add("service.cache.misses", 1)
            service._graft(out.span)
        if service.cache is not None:
            fresh = service.cache.evictions - service._synced_evictions
            if fresh:
                service.counters.add("service.cache.evictions", fresh)
                service._synced_evictions = service.cache.evictions
    return results
