"""repro.service — prepare-once / query-many spatial serving.

The serving counterpart of the one-shot :func:`repro.spatial_join`:

::

    from repro.service import SpatialQueryService

    with SpatialQueryService(cluster="WS") as svc:
        taxi = svc.prepare(taxi_points(2_000, seed=7), system="SpatialHadoop")
        nycb = svc.prepare(census_blocks(200, seed=8), system="SpatialHadoop")
        report = taxi.join(nycb)                  # prepared path: no re-staging
        report = taxi.join(nycb)                  # served from the result cache
        hits = taxi.range((0.2, 0.2, 0.4, 0.4))   # box query over one handle

See :mod:`repro.service.core` for the lifecycle and determinism
contract, :mod:`repro.service.cache` for fingerprinting and the LRU
single-flight cache, and :mod:`repro.service.dispatch` for the
concurrent front-end's ordered merge.
"""

from typing import Any

__all__ = [
    "SpatialQueryService",
    "DatasetHandle",
    "Query",
    "RangeResult",
    "ResultCache",
    "one_shot_join",
]

#: Lazily-resolved exports (PEP 562), matching the top-level package's
#: idiom so ``import repro.service`` stays cheap for the CLI.
_EXPORTS = {
    "SpatialQueryService": ("repro.service.core", "SpatialQueryService"),
    "DatasetHandle": ("repro.service.core", "DatasetHandle"),
    "Query": ("repro.service.core", "Query"),
    "RangeResult": ("repro.service.core", "RangeResult"),
    "ResultCache": ("repro.service.cache", "ResultCache"),
    "one_shot_join": ("repro.service.core", "one_shot_join"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
