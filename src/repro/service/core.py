"""The spatial query service: prepare once, query many times.

The one-shot :func:`repro.spatial_join` pays the full pipeline on every
call — ingest, partition, index, then join.  The service splits that
lifecycle the way serving systems do (Hecatoncheir's ``prepareDataset →
buildIndex → query* → unload``):

* :meth:`SpatialQueryService.prepare` runs a system's ingest +
  partition + index half **once** per dataset and returns an immutable
  :class:`DatasetHandle` holding the parsed columnar shards and every
  prepared HDFS artifact;
* :meth:`DatasetHandle.join` / :meth:`DatasetHandle.range` serve queries
  against the prepared artifacts without re-staging — each query gets a
  fresh private environment into which the prepared files are installed
  by reference, so any number of concurrent queries share one prepared
  copy;
* :meth:`SpatialQueryService.execute` fans a batch of queries over a
  thread pool with a deterministic merge: results return in submission
  order, per-query counters merge into the service ledger in submission
  order, and query spans graft under the service-session trace root in
  submission order — bit-identical at concurrency 1, 8 or 64;
* results are memoized in a fingerprinted LRU cache (see
  :mod:`repro.service.cache`); a hit returns the cached report with
  ``cache_hit=True`` and executes no stage at all;
* :meth:`DatasetHandle.unload` drops the prepared artifacts from the
  registry.

Handles are immutable by convention: nothing mutates a prepared batch or
file after :meth:`prepare` returns, which is what makes the lock-free
sharing across query threads sound.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

import numpy as np

from ..core.predicate import INTERSECTS, JoinPredicate, resolve_predicate
from ..geometry.engine import make_engine
from ..geometry.mbr import MBR
from ..geometry.primitives import Polygon
from ..metrics import Counters
from ..systems import make_system
from ..systems.base import ROLES, PreparedDataset, RunEnvironment, RunReport
from .cache import ResultCache, canonical_kwargs, compose_key, content_key

__all__ = [
    "SpatialQueryService",
    "DatasetHandle",
    "Query",
    "RangeResult",
    "one_shot_join",
]


@dataclass
class RangeResult:
    """Outcome of a :meth:`DatasetHandle.range` query."""

    #: record ids whose geometry intersects the query box, in row order.
    ids: tuple
    #: work performed by this query (empty on a cache hit).
    counters: Counters
    #: True when answered from the result cache without executing.
    cache_hit: bool = False


@dataclass(frozen=True)
class Query:
    """One query of a :meth:`SpatialQueryService.execute` batch.

    ``plan`` selects the execution layer's knobs for join queries:
    ``"auto"`` (the default) asks the cost-based planner
    (:mod:`repro.plan`) to choose; a frozen
    :class:`~repro.plan.planner.Plan` pins the choice; ``None`` keeps
    the legacy behaviour (whatever the handles' systems were configured
    with at prepare time).
    """

    kind: str  # "join" | "range"
    a: "DatasetHandle"
    b: Optional["DatasetHandle"] = None
    predicate: JoinPredicate = INTERSECTS
    box: Optional[tuple] = None
    plan: object = "auto"

    def __post_init__(self):
        if self.kind not in ("join", "range"):
            raise ValueError(f"unknown query kind {self.kind!r}")
        if self.kind == "join" and self.b is None:
            raise ValueError("join queries need a right-side handle")
        if not (
            self.plan is None
            or (isinstance(self.plan, str) and self.plan == "auto")
            or hasattr(self.plan, "fingerprint")
        ):
            raise ValueError(
                "plan must be 'auto', None, or a repro.plan Plan instance"
            )
        if self.kind == "range":
            if self.box is None:
                raise ValueError("range queries need a box")
            object.__setattr__(
                self, "box", tuple(float(v) for v in self.box)
            )
            if len(self.box) != 4:
                raise ValueError("box must be (xmin, ymin, xmax, ymax)")
        object.__setattr__(
            self, "predicate", resolve_predicate(self.predicate)
        )


class DatasetHandle:
    """An immutable prepared dataset registered with a service.

    Holds, per join side, the parsed columnar batch and every HDFS file
    the system's prepare half produced.  All query methods delegate to
    the owning service (and therefore share its cache and ledger).
    """

    def __init__(
        self,
        service: "SpatialQueryService",
        key: str,
        system_obj,
        system_kwargs: dict,
    ):
        self._service = service
        #: canonical fingerprint of (content, system, kwargs, env params).
        self.key = key
        self._system = system_obj
        self._system_kwargs = system_kwargs
        self.preps: dict[str, PreparedDataset] = {}
        self.alive = True
        #: serializes role preparation for this handle (queries never
        #: take it — prepared entries are immutable once present).
        self._prep_lock = threading.Lock()
        #: memoized per-role DatasetStats (planner input); describe() is
        #: deterministic, so racing fills compute identical values.
        self._stats: dict = {}

    # ------------------------------------------------------------- info
    @property
    def system(self) -> str:
        return self._system.name

    @property
    def roles(self) -> tuple:
        """Join sides this handle has been prepared for."""
        return tuple(r for r in ROLES if r in self.preps)

    def stats(self, role: str):
        """Dataset statistics of a prepared role (memoized planner input)."""
        if role not in self._stats:
            from ..data.stats import describe

            self._stats[role] = describe(self.preps[role].batch)
        return self._stats[role]

    def __len__(self) -> int:
        prep = next(iter(self.preps.values()))
        return len(prep.batch)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatasetHandle({self.system}, roles={self.roles}, "
            f"records={len(self) if self.preps else 0}, "
            f"key={self.key[:12]}…)"
        )

    # ---------------------------------------------------------- queries
    def join(
        self,
        other: "DatasetHandle",
        predicate: Union[JoinPredicate, str] = INTERSECTS,
        *,
        plan: object = "auto",
    ) -> RunReport:
        """Join this handle (left) with *other* (right); costed report.

        *plan* follows :class:`Query` semantics: ``"auto"`` plans
        cost-based, a :class:`~repro.plan.planner.Plan` pins the choice,
        ``None`` keeps the prepare-time configuration.
        """
        return self._service.execute(
            [Query("join", self, other, predicate=predicate, plan=plan)]
        )[0]

    def range(self, box) -> RangeResult:
        """Ids of records intersecting *box* (an MBR or 4-tuple)."""
        if isinstance(box, MBR):
            box = (box.xmin, box.ymin, box.xmax, box.ymax)
        return self._service.execute([Query("range", self, box=box)])[0]

    def unload(self) -> None:
        """Drop this handle's prepared artifacts from the service."""
        self._service._unload(self)


class SpatialQueryService:
    """Registry + query front-end over prepared datasets.

    Parameters mirror :func:`repro.spatial_join` where they overlap;
    they are fixed per service because they are part of every cache
    fingerprint (a service answers queries for ONE simulated cluster
    configuration).  ``cache_entries=0`` disables the result cache —
    determinism tests use that to compare executed paths only.  With
    ``trace=True`` the service opens a long-lived tracing session; every
    prepare and query span grafts under its root, which :meth:`close`
    finalizes into :attr:`trace_root`.
    """

    def __init__(
        self,
        *,
        cluster="WS",
        block_size: int = 1 << 16,
        seed: Optional[int] = None,
        cache_entries: int = 128,
        cost_params=None,
        trace: bool = False,
        workers: int = 1,
        backend: Optional[str] = None,
    ):
        from ..experiments.runner import DEFAULT_SEED, resolve_cluster

        self.cluster = resolve_cluster(cluster)
        self.block_size = block_size
        self.seed = DEFAULT_SEED if seed is None else seed
        self.cost_params = cost_params
        #: intra-query parallelism: every prepare/query environment runs
        #: its stages on this many workers.  With the process backend all
        #: environments share ONE warm pool (forked here, in the calling
        #: thread, never on a dispatcher thread mid-query) so queries pay
        #: no per-query fork cost.
        self.workers = max(1, int(workers))
        self.backend = backend
        self._pool_key: Optional[int] = None
        if self.workers > 1 and backend in (None, "process"):
            from ..exec.backend import ProcessBackend

            if ProcessBackend.available():
                from ..exec import shm_pool

                self._pool_key = shm_pool.reserve_key()
                shm_pool.get_pool(self._pool_key, self.workers)
        #: the service ledger: every prepare's and query's counters merge
        #: here (in submission order), plus the service.* lifecycle keys.
        self.counters = Counters()
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_entries) if cache_entries else None
        )
        self._synced_evictions = 0
        self._handles: dict[str, DatasetHandle] = {}
        #: resolved plans per (left key, right key, predicate); plans are
        #: pure functions of prepared statistics, so entries never expire.
        self._plan_cache: dict[tuple, object] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: finished span tree after close() when tracing was on.
        self.trace_root = None
        self._tracer = None
        self._session = None
        self._root = None
        if trace:
            from ..trace import Tracer

            self._tracer = Tracer()
            self._session = self._tracer.session(
                "service", kind="service", counters=self.counters,
                cluster=self.cluster.name,
            )
            self._root = self._session.__enter__()

    # ------------------------------------------------------- lifecycle
    def __enter__(self) -> "SpatialQueryService":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.close()

    def close(self) -> None:
        """End the service session (idempotent); finalize the trace and
        release the shared warm worker pool."""
        if self._closed:
            return
        self._closed = True
        if self._session is not None:
            self._session.__exit__(None, None, None)
            self.trace_root = self._tracer.root
            self._session = None
            self._root = None
        if self._pool_key is not None:
            import os

            from ..exec import shm_pool

            shm_pool.release_pool(self._pool_key, os.getpid())
            self._pool_key = None

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")

    # --------------------------------------------------------- prepare
    def prepare(
        self,
        data,
        *,
        system: str = "SpatialSpark",
        system_kwargs: Optional[dict] = None,
        roles: Sequence[str] = ROLES,
    ) -> DatasetHandle:
        """Ingest + partition + index *data* once; return its handle.

        Idempotent per content: preparing equal data under the same
        system/kwargs returns the already-registered handle without
        re-running anything.  *roles* selects the join sides to prepare
        (both by default, so the handle can be either side of a join);
        re-preparing an existing handle with an extra role fills in just
        the missing side.  Modelled prepare failures (broken streaming
        pipes) propagate as exceptions — nothing is registered then.
        """
        self._check_open()
        kwargs = dict(system_kwargs) if system_kwargs else {}
        sys_obj = make_system(system, **kwargs)
        batch = sys_obj._as_batch(data)
        for role in roles:
            if role not in ROLES:
                raise ValueError(f"role must be one of {ROLES}, got {role!r}")
        key = compose_key(
            "dataset",
            content_key(batch),
            system=sys_obj.name,
            kwargs=canonical_kwargs(kwargs),
            cluster=self.cluster.name,
            block_size=self.block_size,
            seed=self.seed,
        )
        with self._lock:
            handle = self._handles.get(key)
            if handle is None:
                handle = DatasetHandle(self, key, sys_obj, kwargs)
                self._handles[key] = handle
        with handle._prep_lock:
            for role in roles:
                if role in handle.preps:
                    continue
                env = self._fresh_env()
                span_handle = self._maybe_span(
                    f"prepare:{role}", counters=env.counters,
                    system=sys_obj.name, kind_="prepare",
                )
                with span_handle as sp:
                    prep = sys_obj.prepare_dataset(env, role, batch)
                handle.preps[role] = prep
                with self._lock:
                    self.counters.merge(env.counters)
                    self.counters.add("service.prepares", 1)
                    self._graft(sp)
        return handle

    # --------------------------------------------------------- queries
    def execute(self, queries: Sequence[Query], *, concurrency: int = 1):
        """Run *queries* (possibly concurrently); results in order.

        The deterministic merge discipline of :mod:`repro.exec` applies:
        regardless of *concurrency*, the returned list, the per-query
        reports/counters, the service-ledger totals and the grafted span
        order depend only on the submitted sequence.  (With the cache
        enabled and *identical* in-flight queries, which request reports
        the miss is unspecified — totals still are deterministic.)
        """
        from .dispatch import run_queries

        self._check_open()
        queries = list(queries)
        for q in queries:
            self._validate(q)
        # Plans resolve serially before dispatch: the per-pair plan cache
        # is filled exactly once per distinct key, so the plan.* ledger
        # charges are a function of the submitted sequence, not of
        # thread interleaving.
        plans = [self._resolve_plan(q) for q in queries]
        return run_queries(self, queries, concurrency, plans)

    def _validate(self, q: Query) -> None:
        if not isinstance(q, Query):
            raise TypeError(f"expected a Query, got {type(q).__name__}")
        handles = (q.a, q.b) if q.b is not None else (q.a,)
        for h in handles:
            if not h.alive:
                raise RuntimeError("handle has been unloaded")
            if h._service is not self:
                raise ValueError("handle belongs to a different service")
        if q.kind == "join":
            if q.a.system != q.b.system:
                raise ValueError(
                    "cannot join handles prepared by different systems "
                    f"({q.a.system} vs {q.b.system})"
                )
            if "a" not in q.a.preps:
                raise ValueError("left handle was not prepared for role 'a'")
            if "b" not in q.b.preps:
                raise ValueError("right handle was not prepared for role 'b'")
        elif not q.a.preps:
            raise ValueError("handle has no prepared role")

    # ---------------------------------------------------------- unload
    def _unload(self, handle: DatasetHandle) -> None:
        self._check_open()
        with self._lock:
            if not handle.alive:
                return
            handle.alive = False
            self._handles.pop(handle.key, None)
            handle.preps.clear()
            self.counters.add("service.unloads", 1)

    # ---------------------------------------------------------- innards
    def _fresh_env(
        self,
        prep_a: Optional[PreparedDataset] = None,
        prep_b: Optional[PreparedDataset] = None,
    ) -> RunEnvironment:
        """A private environment, optionally with prepared files
        installed by reference.  Each environment gets its own executor
        (profile rows must not interleave across concurrent queries), but
        process executors share the service's single warm pool through
        its pool key — queries never pay a fork."""
        backend = self.backend
        if self._pool_key is not None:
            from ..exec.backend import ProcessBackend

            backend = ProcessBackend(self.workers, pool_key=self._pool_key)
        env = RunEnvironment.create(
            self.cluster, block_size=self.block_size, seed=self.seed,
            workers=self.workers, backend=backend,
        )
        preps = [p for p in (prep_a, prep_b) if p is not None]
        if preps:
            from ..systems.base import SpatialJoinSystem

            SpatialJoinSystem.install_prepared(env, *preps)
        if prep_a is not None:
            env.scale_a = prep_a.scale
        if prep_b is not None:
            env.scale_b = prep_b.scale
        return env

    def _maybe_span(self, name: str, *, counters=None, kind_="query", **attrs):
        """A detached trace span when the service session is on; no-op
        context otherwise.  Detached even at concurrency 1 so grafting
        is always explicit (and therefore always in submission order)."""
        if self._root is None:
            from contextlib import nullcontext

            return nullcontext(None)
        from ..trace.core import span as trace_span

        return trace_span(
            name, kind=kind_, counters=counters, detach=True, **attrs
        )

    def _graft(self, sp) -> None:
        """Attach a finished detached span under the service root."""
        if self._root is not None and sp is not None:
            self._root.children.append(sp)

    # ---------------------------------------------------------- planning
    def _resolve_plan(self, q: Query):
        """The plan a join query will execute under (None = legacy).

        ``"auto"`` ranks the candidate space against the prepared
        statistics and memoizes the winner per (left, right, predicate)
        key.  Candidates incompatible with what the handles *prepared*
        (SpatialHadoop bakes its partitioning and granularity into the
        indexed files; explicit ``system_kwargs`` always win over plan
        fields) are filtered out so the chosen plan describes the
        execution that actually runs.
        """
        if q.kind != "join" or q.plan is None:
            return None
        if not isinstance(q.plan, str):
            return q.plan
        key = (q.a.key, q.b.key, str(q.predicate))
        with self._lock:
            plan = self._plan_cache.get(key)
        if plan is not None:
            return plan
        from ..plan.planner import fixed_from_system, rank_plans

        ranked = rank_plans(
            q.a.stats("a"), q.b.stats("b"), q.predicate, self.cluster,
            system=q.a.system, block_size=self.block_size,
            params=self.cost_params,
            blocks_l=q.a.preps["a"].num_input_blocks,
            blocks_r=q.b.preps["b"].num_input_blocks,
        )
        fixed = fixed_from_system(q.a._system)
        admissible = [
            pair for pair in ranked if self._admissible(pair[1], q.a, fixed)
        ]
        plan = (admissible or ranked)[0][1]
        with self._lock:
            if key not in self._plan_cache:
                self._plan_cache[key] = plan
                self.counters.add("plan.candidates", len(ranked))
                self.counters.add("plan.cached", 1)
            else:  # lost a race with a concurrent execute() batch
                plan = self._plan_cache[key]
        return plan

    @staticmethod
    def _admissible(plan, handle: DatasetHandle, fixed) -> bool:
        """Can *plan* actually execute against *handle*'s prepared state?"""
        locked = set(handle._system_kwargs)
        if handle.system == "SpatialHadoop":
            # The partitioning and granularity are baked into the indexed
            # block files at prepare time; only the local stage is free.
            # Adaptive repartitioning splits hot cells at index time too,
            # so the shuffle mode is equally frozen into the blocks.
            locked |= {"partitioner", "n_partitions", "shuffle"}
        if "shuffle" in locked and plan.strategy == "partitioned" \
                and plan.shuffle != fixed.shuffle:
            return False
        partitioned = plan.strategy == "partitioned"
        if "partitioner" in locked and partitioned \
                and plan.partitioner != fixed.partitioner:
            return False
        if "n_partitions" in locked and partitioned \
                and plan.n_partitions != fixed.n_partitions:
            return False
        if "local_algorithm" in locked and partitioned \
                and plan.local_algorithm != fixed.local_algorithm:
            return False
        if "broadcast_join" in locked and plan.strategy != fixed.strategy:
            return False
        return True

    def _fingerprint(self, q: Query, plan=None) -> str:
        if q.kind == "join":
            parts = [q.a.key, q.b.key]
            if plan is not None:
                # The plan fingerprint composes into the cache key: a
                # cached result is never served across different plans
                # for the same dataset pair.
                parts.append(plan.fingerprint())
            return compose_key(
                "join", *parts, predicate=str(q.predicate)
            )
        return compose_key(
            "range", q.a.key, box=",".join(map(repr, q.box))
        )

    def _compute(self, q: Query, plan=None):
        """Execute one query in a fresh environment (the cache-miss
        path); returns (result, finished_span_or_None)."""
        if q.kind == "join":
            prep_a, prep_b = q.a.preps["a"], q.b.preps["b"]
            env = self._fresh_env(prep_a, prep_b)
            sys_obj = q.a._system
            attrs = {}
            if plan is not None:
                sys_obj = make_system(
                    q.a.system, plan=plan, **q.a._system_kwargs
                )
                attrs["plan"] = plan.describe()
            with self._maybe_span(
                "query:join", counters=env.counters,
                system=q.a.system, predicate=str(q.predicate), **attrs,
            ) as sp:
                report = sys_obj.join_prepared(
                    env, prep_a, prep_b, q.predicate
                )
            report = report.costed(self.cost_params, cluster=self.cluster)
            return report, sp, env.counters
        return self._compute_range(q)

    def _compute_range(self, q: Query):
        role = "a" if "a" in q.a.preps else q.a.roles[0]
        batch = q.a.preps[role].batch
        counters = Counters()
        with self._maybe_span(
            "query:range", counters=counters, system=q.a.system,
        ) as sp:
            engine = make_engine(q.a._system.engine_name, counters)
            xmin, ymin, xmax, ymax = q.box
            m = batch.mbrs.data
            counters.add("geom.mbr_tests", len(batch))
            cand = np.nonzero(
                (m[:, 0] <= xmax) & (m[:, 2] >= xmin)
                & (m[:, 1] <= ymax) & (m[:, 3] >= ymin)
            )[0]
            box_poly = Polygon(
                [(xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)]
            )
            ids = tuple(
                int(batch.ids[i])
                for i in cand
                if engine.intersects(batch[int(i)], box_poly)
            )
        return RangeResult(ids=ids, counters=counters), sp, counters

    @staticmethod
    def _as_hit(result):
        """The cached payload re-labelled as a hit (shallow copy: pairs,
        counters and clock are the original computation's)."""
        return replace(result, cache_hit=True)


def one_shot_join(
    left,
    right,
    *,
    system: str = "SpatialSpark",
    predicate: Union[JoinPredicate, str] = INTERSECTS,
    cluster="WS",
    workers: int = 1,
    backend=None,
    block_size: int = 1 << 16,
    seed: Optional[int] = None,
    cost_params=None,
    system_kwargs: Optional[dict] = None,
    trace: bool = False,
    plan: object = "auto",
) -> RunReport:
    """The legacy single-call path: prepare both sides and join them in
    ONE shared environment, so the report carries the full pipeline's
    counters and the IA / IB / DJ breakdown.

    This is exactly ``prepare(a) + prepare(b) + join_prepared`` — the
    same halves the serving path runs — composed by each system's
    :meth:`~repro.systems.base.SpatialJoinSystem.run`.  *system_kwargs*
    is copied at this boundary; the caller's dict is never mutated.

    *plan*: ``"auto"`` (default) lets the cost-based planner choose the
    execution knobs within *system* from the inputs' statistics; a
    frozen :class:`~repro.plan.planner.Plan` pins them (and selects its
    own system); ``None`` keeps the legacy fixed defaults.  Explicit
    *system_kwargs* always override plan fields.  Planning never charges
    the run's ledger, and result pairs are plan-invariant by the local
    joins' shared refinement.
    """
    from ..experiments.runner import DEFAULT_SEED, resolve_cluster

    predicate = resolve_predicate(predicate)
    config = resolve_cluster(cluster)
    env = RunEnvironment.create(
        config,
        block_size=block_size,
        seed=DEFAULT_SEED if seed is None else seed,
        workers=workers,
        backend=backend,
    )
    kwargs = dict(system_kwargs or {})
    plan_obj = None
    if isinstance(plan, str) and plan == "auto":
        from ..data.stats import describe
        from ..plan.planner import plan_query
        from ..systems.base import SpatialJoinSystem

        plan_obj = plan_query(
            describe(SpatialJoinSystem._as_batch(left)),
            describe(SpatialJoinSystem._as_batch(right)),
            predicate,
            config,
            system=system,
            block_size=block_size,
            params=cost_params,
        )
    elif plan is not None:
        plan_obj = plan
        system = plan_obj.system
    if plan_obj is not None:
        kwargs["plan"] = plan_obj
    sys_obj = make_system(system, **kwargs)
    if trace:
        from ..trace import Tracer
        from ..trace.core import span as trace_span

        tracer = Tracer()
        attrs = {"plan": plan_obj.describe()} if plan_obj is not None else {}
        with tracer.session(
            "spatial_join", kind="experiment", counters=env.counters,
            system=sys_obj.name, cluster=config.name,
        ):
            with trace_span(
                sys_obj.name, kind="run", counters=env.counters, **attrs
            ):
                report = sys_obj.run(env, left, right, predicate)
        report.trace = tracer.root
    else:
        report = sys_obj.run(env, left, right, predicate)
    return report.costed(cost_params, cluster=config)
