"""Canonical query fingerprints and the LRU result cache.

Cache keys follow the composed-key idiom of query engines (QLever's
``getCacheKeyImpl``): every node of a query canonicalizes *itself* and
embeds the canonical keys of its children, so two queries share a key
exactly when every layer that could change the answer is identical.
Here the leaves are datasets — fingerprinted by *content* (a SHA-256
over the columnar arrays), not by identity, so re-preparing equal data
hits the same cache line — and the inner nodes are operations (join,
range) that append their own parameters.

Excluded from keys on purpose: ``workers`` / ``backend`` (results are
bit-identical across execution backends by the repo's determinism
discipline) and anything timing-related.  Included: system, cluster,
block size, seed and system kwargs — each one changes counters or pairs.

The cache itself is a thread-safe LRU over canonical keys with
*single-flight* de-duplication: when several concurrent queries share a
fingerprint, exactly one computes while the rest wait and read the
cached result, so hit/miss tallies are deterministic at any concurrency
(1 miss + N−1 hits), not a race.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Optional

import numpy as np

__all__ = ["canonical_kwargs", "content_key", "compose_key", "ResultCache"]


def canonical_kwargs(kwargs: Optional[dict]) -> str:
    """A stable, order-insensitive spelling of a kwargs dict."""
    if not kwargs:
        return ""
    return ",".join(f"{k}={kwargs[k]!r}" for k in sorted(kwargs))


def content_key(batch) -> str:
    """SHA-256 of a :class:`~repro.geometry.batch.GeometryBatch`'s arrays.

    Content-addressed: two batches with equal geometry streams hash the
    same regardless of how or when they were constructed.
    """
    h = hashlib.sha256()
    for arr in (
        batch.kinds, batch.coords, batch.ring_offsets, batch.geom_rings,
        batch.ids,
    ):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def compose_key(operation: str, *parts: str, **params) -> str:
    """Compose an operation key from child keys + own parameters.

    ``compose_key("join", key_a, key_b, predicate="intersects")`` — the
    getCacheKeyImpl idiom: the operation name, its parameters in sorted
    order, then the children's canonical keys in positional order.
    """
    h = hashlib.sha256()
    h.update(operation.encode())
    for k in sorted(params):
        h.update(f"|{k}={params[k]}".encode())
    for part in parts:
        h.update(b"|")
        h.update(part.encode())
    return h.hexdigest()


class ResultCache:
    """Thread-safe LRU cache with single-flight computation.

    ``get_or_compute(key, compute)`` returns ``(value, was_hit)``.  The
    first caller for a key runs *compute* outside the lock; concurrent
    callers with the same key block until it lands, then read it as a
    hit.  If *compute* raises, waiters are released and the next caller
    retries (failures are never cached).  Eviction is LRU by last access
    and counted in :attr:`evictions`.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._inflight: dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_compute(self, key: str, compute: Callable[[], object]):
        """Return ``(value, was_hit)`` for *key*, computing on a miss.

        Single-flight: concurrent callers with the same key block on the
        first caller's computation and then read it as a hit."""
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return self._entries[key], True
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
                    self.misses += 1
                    break  # this thread computes
            waiter.wait()
            # Leader landed (or failed); loop to re-check the table.
        try:
            value = compute()
        except BaseException:
            with self._lock:
                self._inflight.pop(key).set()
            raise
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._inflight.pop(key).set()
        return value, False

    def clear(self) -> None:
        """Drop every cached entry (hit/miss/eviction tallies remain)."""
        with self._lock:
            self._entries.clear()
