"""repro — reproduction of "Spatial Join Query Processing in Cloud:
Analyzing Design Choices and Performance Comparisons" (You, Zhang,
Gruenwald, ICPP 2015).

Public API layers:

* :mod:`repro.geometry` — geometry primitives, predicates, engines.
* :mod:`repro.index` — spatial indexes (STR-tree, R-tree, grid, quadtree).
* :mod:`repro.core` — the paper's framework: partitioners, global/local
  joins, join predicates.
* :mod:`repro.systems` — HadoopGIS, SpatialHadoop, SpatialSpark.
* :mod:`repro.experiments` — the experiment harness and table regeneration.

Most users start from::

    from repro.experiments import run_experiment
    report = run_experiment("taxi-nycb", "SpatialSpark", "EC2-10")

or run joins directly::

    from repro.systems import RunEnvironment, SpatialSpark
    report = SpatialSpark().run(RunEnvironment.create(), left, right)

A command-line interface is available via ``python -m repro --help``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
