"""repro — reproduction of "Spatial Join Query Processing in Cloud:
Analyzing Design Choices and Performance Comparisons" (You, Zhang,
Gruenwald, ICPP 2015).

Public API layers:

* :mod:`repro.geometry` — geometry primitives, predicates, engines.
* :mod:`repro.index` — spatial indexes (STR-tree, R-tree, grid, quadtree).
* :mod:`repro.core` — the paper's framework: partitioners, global/local
  joins, join predicates.
* :mod:`repro.systems` — HadoopGIS, SpatialHadoop, SpatialSpark.
* :mod:`repro.experiments` — the experiment harness and table regeneration.

Most users start from the top-level facade::

    from repro import run_experiment, spatial_join

    # a paper experiment cell, extrapolated to paper scale:
    report = run_experiment("taxi-nycb", "SpatialSpark", "EC2-10")

    # or your own data through one system, costed as-is:
    report = spatial_join(points, polygons, system="SpatialSpark",
                          cluster="WS", workers=4)

A command-line interface is available via ``python -m repro --help``.
"""

from typing import Any

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "Calibrator",
    "DatasetHandle",
    "EXPERIMENTS",
    "Plan",
    "RunEnvironment",
    "RunReport",
    "SpatialQueryService",
    "Tracer",
    "make_system",
    "plan_query",
    "render_skew",
    "render_tree",
    "run_experiment",
    "skew_report",
    "spatial_join",
    "write_chrome_trace",
]

#: Lazily-resolved top-level exports (PEP 562), so ``import repro`` stays
#: cheap and the CLI keeps its fast ``--help`` path.
_EXPORTS = {
    "Calibrator": ("repro.plan.calibrate", "Calibrator"),
    "DatasetHandle": ("repro.service.core", "DatasetHandle"),
    "EXPERIMENTS": ("repro.experiments.runner", "EXPERIMENTS"),
    "Plan": ("repro.plan.planner", "Plan"),
    "RunEnvironment": ("repro.systems.base", "RunEnvironment"),
    "RunReport": ("repro.systems.base", "RunReport"),
    "SpatialQueryService": ("repro.service.core", "SpatialQueryService"),
    "Tracer": ("repro.trace", "Tracer"),
    "make_system": ("repro.systems", "make_system"),
    "plan_query": ("repro.plan.planner", "plan_query"),
    "render_skew": ("repro.trace", "render_skew"),
    "render_tree": ("repro.trace", "render_tree"),
    "run_experiment": ("repro.experiments.runner", "run_experiment"),
    "skew_report": ("repro.trace", "skew_report"),
    "spatial_join": ("repro.api", "spatial_join"),
    "write_chrome_trace": ("repro.trace", "write_chrome_trace"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
