"""A tiny shared counters type used by every substrate.

Substrates (geometry engines, the DFS, MapReduce, Spark) *count resources*
— bytes, records, geometry operations — and only the cluster cost model
converts counts into simulated seconds.  Keeping one counters type across
all of them makes per-phase accounting uniform and mergeable.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterable, Mapping

__all__ = ["Counters"]

#: Thread-local charge redirection, keyed by the instance's redirect
#: :attr:`Counters.token`.  The executor backends install a per-task
#: scratch sink here so that task bodies running concurrently charge
#: their own ledger; the scratches are merged back in task-index order,
#: keeping parallel runs bit-identical to serial ones (see
#: :mod:`repro.exec`).  Tokens are allocated from a process-wide monotonic
#: counter and never reused — unlike ``id()``, which the allocator can
#: recycle, so a GC'd-and-reallocated Counters could otherwise silently
#: inherit a stale sink entry.
_REDIRECT = threading.local()
_NEXT_TOKEN = itertools.count(1)
_TOKEN_LOCK = threading.Lock()


class Counters(dict):
    """A ``dict[str, float]`` with merge/scale helpers; missing keys are 0."""

    def __missing__(self, key: str) -> float:
        return 0.0

    @property
    def token(self) -> int:
        """This instance's redirect key: unique for the process lifetime.

        Allocated lazily on first use so plain ledgers never pay for it;
        once allocated it sticks to the instance (and travels with pickles
        only as a stale int — forked workers resolve redirects against the
        token they inherited, which is exactly the instance they share).
        """
        tok = self.__dict__.get("_token")
        if tok is None:
            with _TOKEN_LOCK:  # two threads must not race to different tokens
                tok = self.__dict__.get("_token")
                if tok is None:
                    tok = self.__dict__["_token"] = next(_NEXT_TOKEN)
        return tok

    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment *key* by *amount* (default 1)."""
        sinks = getattr(_REDIRECT, "sinks", None)
        if sinks:
            tok = self.__dict__.get("_token")
            if tok is not None:
                sink = sinks.get(tok)
                if sink is not None:
                    sink[key] = sink.get(key, 0.0) + amount
                    return
        self[key] = self.get(key, 0.0) + amount

    def merge(self, other: Mapping[str, float]) -> "Counters":
        """Add every counter of *other* into self; returns self."""
        for key, value in other.items():
            self.add(key, value)
        return self

    def scaled(self, factors: Mapping[str, float], default: float = 1.0) -> "Counters":
        """Return a copy with each counter multiplied by its factor."""
        out = Counters()
        for key, value in self.items():
            out[key] = value * factors.get(key, default)
        return out

    def snapshot(self) -> "Counters":
        """An independent copy (pair with :meth:`diff` for phase deltas)."""
        return Counters(self)

    def diff(self, earlier: Mapping[str, float]) -> "Counters":
        """Counters accumulated since an earlier snapshot."""
        out = Counters()
        for key in set(self) | set(earlier):
            delta = self.get(key, 0.0) - earlier.get(key, 0.0)
            if delta:
                out[key] = delta
        return out

    @staticmethod
    def total(parts: Iterable[Mapping[str, float]]) -> "Counters":
        out = Counters()
        for part in parts:
            out.merge(part)
        return out
