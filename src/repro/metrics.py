"""A tiny shared counters type used by every substrate.

Substrates (geometry engines, the DFS, MapReduce, Spark) *count resources*
— bytes, records, geometry operations — and only the cluster cost model
converts counts into simulated seconds.  Keeping one counters type across
all of them makes per-phase accounting uniform and mergeable.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterable, Mapping

__all__ = ["Counters", "COUNTER_SCHEMA"]

#: Central registry of every counter key any substrate may charge.
#:
#: The ledger is the repo's unit of account: the cost model prices these
#: keys, the trace subsystem attributes deltas of them to spans, and the
#: golden tests compare them bit-for-bit.  A key that is charged but not
#: registered here is almost always a typo — it would silently open a
#: second ledger entry that the cost model prices at zero — so the
#: ``repro-lint`` CTR001 rule requires every literal key used with
#: ``Counters.add`` / ``[...]`` / ``.get`` to appear in this mapping, and
#: a runtime test asserts the observed key set of a full run of each
#: system is a subset of it.  Register new keys here (with a one-line
#: description) in the same change that first charges them.
COUNTER_SCHEMA: dict[str, str] = {
    # -- geometry engine (CPU, priced per-op by the engine profile) -------
    "geom.mbr_tests": "MBR overlap/containment tests",
    "geom.pip_tests": "point-in-polygon tests (crossing number)",
    "geom.seg_pair_tests": "segment-pair intersection tests",
    "geom.dist_tests": "point/segment distance evaluations",
    "geom.vertex_ops": "vertices touched by geometry predicates",
    # -- spatial indexes --------------------------------------------------
    "index.build_ops": "index construction steps (per item inserted)",
    "index.nodes_built": "tree nodes materialised at build time",
    "index.splits": "node splits during incremental builds",
    "index.node_visits": "nodes touched by queries/traversals",
    "index.leaf_pair_tests": "candidate pair tests at synchronized leaves",
    # -- join framework ---------------------------------------------------
    "join.candidates": "filter-phase candidate pairs produced",
    "join.sweep_ops": "plane-sweep comparison steps",
    # -- parsing / serialization (Streaming's text tax) -------------------
    "parse.records": "text records decoded into objects",
    "parse.bytes": "bytes of text decoded",
    "serialize.records": "objects encoded to text records",
    "serialize.bytes": "bytes of text encoded",
    "deser.records": "binary records deserialized (SpatialHadoop reads)",
    "sort.ops": "comparison ops, charged as n·log2(n) by substrates",
    "cpu.ops": "generic bookkeeping ops",
    # -- Hadoop Streaming's external processes ----------------------------
    "streaming.processes": "external mapper/reducer processes spawned",
    "streaming.refine_calls": "per-candidate refine invocations via pipes",
    "pipe.bytes": "bytes crossing the Streaming stdin/stdout pipes",
    "pipe.records": "records crossing the Streaming pipes",
    # -- distributed/local filesystem I/O ---------------------------------
    "hdfs.bytes_read": "bytes read from the simulated HDFS",
    "hdfs.bytes_written": "bytes written to the simulated HDFS",
    "hdfs.records_read": "records read from the simulated HDFS",
    "hdfs.records_written": "records written to the simulated HDFS",
    "localfs.bytes_read": "bytes read from a single node's local FS",
    "localfs.bytes_written": "bytes written to a single node's local FS",
    # -- shuffle / network ------------------------------------------------
    "shuffle.bytes_disk": "Hadoop-style shuffle bytes (spill+transfer+read)",
    "shuffle.bytes_mem": "Spark in-memory exchange bytes",
    "spark.shuffle_records": "records crossing a Spark shuffle boundary",
    "net.bytes_broadcast": "broadcast payload bytes, replicated per node",
    # -- skew-aware shuffle (repro.shuffle) -------------------------------
    "shuffle.records_pruned": "records dropped by the sFilter pre-shuffle",
    "shuffle.bytes_pruned": "serialized bytes the sFilter kept off the wire",
    "shuffle.sfilter_builds": "sFilter bitmaps built from one side's MBRs",
    "skew.cells_split": "hot partition cells re-gridded at finer granularity",
    "skew.cells_added": "net new cells produced by hot-cell splitting",
    # -- framework overheads (fixed costs per unit) -----------------------
    "mr.jobs": "MapReduce jobs launched",
    "mr.tasks": "map/reduce tasks launched",
    "mr.task_retries": "task attempts retried after failure",
    "mr.combine_in": "records entering a combiner",
    "mr.combine_out": "records leaving a combiner",
    "spark.stages": "Spark stages executed",
    "spark.tasks": "Spark tasks executed",
    "spark.recomputes": "partitions recomputed from lineage after loss",
    # -- query service (repro.service lifecycle ledger) -------------------
    "service.prepares": "datasets prepared (ingest+partition+index runs)",
    "service.queries": "queries served by the prepared path",
    "service.cache.hits": "queries answered from the result cache",
    "service.cache.misses": "queries that had to execute",
    "service.cache.evictions": "cached results evicted by the LRU policy",
    "service.unloads": "dataset handles unloaded from the registry",
    # -- query planner (repro.plan decision + feedback ledger) -------------
    "plan.candidates": "candidate plans priced by the planner",
    "plan.cached": "plans answered from the service's plan cache",
    "plan.observations": "measured phase spans ingested by the calibrator",
    # -- execution backends (repro.exec health ledger) ---------------------
    "exec.backend_fallback": (
        "requested process backend degraded to thread semantics "
        "(fork unavailable on this platform)"
    ),
}

#: Thread-local charge redirection, keyed by the instance's redirect
#: :attr:`Counters.token`.  The executor backends install a per-task
#: scratch sink here so that task bodies running concurrently charge
#: their own ledger; the scratches are merged back in task-index order,
#: keeping parallel runs bit-identical to serial ones (see
#: :mod:`repro.exec`).  Tokens are allocated from a process-wide monotonic
#: counter and never reused — unlike ``id()``, which the allocator can
#: recycle, so a GC'd-and-reallocated Counters could otherwise silently
#: inherit a stale sink entry.
_REDIRECT = threading.local()
_NEXT_TOKEN = itertools.count(1)
_TOKEN_LOCK = threading.Lock()


class Counters(dict):
    """A ``dict[str, float]`` with merge/scale helpers; missing keys are 0."""

    def __missing__(self, key: str) -> float:
        return 0.0

    @property
    def token(self) -> int:
        """This instance's redirect key: unique for the process lifetime.

        Allocated lazily on first use so plain ledgers never pay for it;
        once allocated it sticks to the instance (and travels with pickles
        only as a stale int — forked workers resolve redirects against the
        token they inherited, which is exactly the instance they share).
        """
        tok = self.__dict__.get("_token")
        if tok is None:
            with _TOKEN_LOCK:  # two threads must not race to different tokens
                tok = self.__dict__.get("_token")
                if tok is None:
                    tok = self.__dict__["_token"] = next(_NEXT_TOKEN)
        return tok

    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment *key* by *amount* (default 1)."""
        sinks = getattr(_REDIRECT, "sinks", None)
        if sinks:
            tok = self.__dict__.get("_token")
            if tok is not None:
                sink = sinks.get(tok)
                if sink is not None:
                    sink[key] = sink.get(key, 0.0) + amount
                    return
        self[key] = self.get(key, 0.0) + amount

    def merge(self, other: Mapping[str, float]) -> "Counters":
        """Add every counter of *other* into self; returns self."""
        for key, value in other.items():
            # Forwarding keys that were schema-checked where first charged.
            self.add(key, value)  # repro: noqa[CTR001]
        return self

    def scaled(self, factors: Mapping[str, float], default: float = 1.0) -> "Counters":
        """Return a copy with each counter multiplied by its factor."""
        out = Counters()
        for key, value in self.items():
            out[key] = value * factors.get(key, default)
        return out

    def snapshot(self) -> "Counters":
        """An independent copy (pair with :meth:`diff` for phase deltas)."""
        return Counters(self)

    def diff(self, earlier: Mapping[str, float]) -> "Counters":
        """Counters accumulated since an earlier snapshot.

        Keys are emitted sorted: the result's insertion order feeds
        per-phase exports, and raw set order varies with string-hash
        randomisation across processes.
        """
        out = Counters()
        for key in sorted(set(self) | set(earlier)):
            delta = self.get(key, 0.0) - earlier.get(key, 0.0)
            if delta:
                out[key] = delta
        return out

    @staticmethod
    def total(parts: Iterable[Mapping[str, float]]) -> "Counters":
        out = Counters()
        for part in parts:
            out.merge(part)
        return out
