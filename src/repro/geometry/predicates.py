"""Exact scalar geometry predicates.

These are the reference implementations shared by both geometry engines:
the GEOS-like engine calls them directly per pair (the slow scalar path);
the JTS-like engine uses the batch kernels in
:mod:`repro.geometry.vectorized`, which are tested against these scalars.

All predicates treat boundaries as inclusive ("intersects" in the
DE-9IM sense of sharing at least one point), matching what the paper's
joins compute: point-in-polygon tests for taxi×census-blocks and
polyline-with-polyline intersection for edges×linearwater.
"""

from __future__ import annotations

import math

import numpy as np

from .primitives import Point, PolyLine, Polygon

__all__ = [
    "orientation",
    "on_segment",
    "segments_intersect",
    "point_in_ring",
    "point_on_ring",
    "point_in_polygon",
    "point_segment_distance",
    "point_polyline_distance",
    "segment_segment_distance",
    "polyline_polyline_distance",
    "point_polygon_distance",
    "polyline_polygon_distance",
    "geometry_distance",
    "polyline_intersects_polyline",
    "polygon_contains_point",
    "polyline_intersects_polygon",
    "polygon_intersects_polygon",
    "geometries_intersect",
]


def orientation(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> int:
    """Sign of the cross product (b-a) × (c-a): 1 ccw, -1 cw, 0 collinear."""
    v = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    if v > 0.0:
        return 1
    if v < 0.0:
        return -1
    return 0


def on_segment(ax: float, ay: float, bx: float, by: float, px: float, py: float) -> bool:
    """True if collinear point p lies within segment ab's bounding box."""
    return (
        min(ax, bx) <= px <= max(ax, bx) and min(ay, by) <= py <= max(ay, by)
    )


def segments_intersect(
    ax: float, ay: float, bx: float, by: float,
    cx: float, cy: float, dx: float, dy: float,
) -> bool:
    """True if closed segments ab and cd share at least one point.

    A bounding-box disjointness guard runs first: besides being cheap, it
    protects the orientation tests from false "collinear" verdicts when a
    cross product underflows to zero for nearly-but-not-touching segments.
    """
    if (
        max(cx, dx) < min(ax, bx)
        or min(cx, dx) > max(ax, bx)
        or max(cy, dy) < min(ay, by)
        or min(cy, dy) > max(ay, by)
    ):
        return False
    d1 = orientation(cx, cy, dx, dy, ax, ay)
    d2 = orientation(cx, cy, dx, dy, bx, by)
    d3 = orientation(ax, ay, bx, by, cx, cy)
    d4 = orientation(ax, ay, bx, by, dx, dy)
    if d1 != d2 and d3 != d4:
        return True
    if d1 == 0 and on_segment(cx, cy, dx, dy, ax, ay):
        return True
    if d2 == 0 and on_segment(cx, cy, dx, dy, bx, by):
        return True
    if d3 == 0 and on_segment(ax, ay, bx, by, cx, cy):
        return True
    if d4 == 0 and on_segment(ax, ay, bx, by, dx, dy):
        return True
    return False


def point_on_ring(ring: np.ndarray, x: float, y: float) -> bool:
    """True if (x, y) lies on the boundary of a closed ring."""
    for i in range(ring.shape[0] - 1):
        ax, ay = ring[i, 0], ring[i, 1]
        bx, by = ring[i + 1, 0], ring[i + 1, 1]
        if orientation(ax, ay, bx, by, x, y) == 0 and on_segment(ax, ay, bx, by, x, y):
            return True
    return False


def point_in_ring(ring: np.ndarray, x: float, y: float, *, boundary: bool = True) -> bool:
    """Crossing-number point-in-ring test on a closed ring.

    *boundary* controls whether points exactly on the ring count as inside
    (the joins in the paper use inclusive semantics).
    """
    if point_on_ring(ring, x, y):
        return boundary
    inside = False
    n = ring.shape[0] - 1
    for i in range(n):
        ax, ay = ring[i, 0], ring[i, 1]
        bx, by = ring[i + 1, 0], ring[i + 1, 1]
        # Half-open rule on y avoids double-counting vertex crossings.
        if (ay > y) != (by > y):
            x_cross = ax + (y - ay) * (bx - ax) / (by - ay)
            if x < x_cross:
                inside = not inside
    return inside


def point_in_polygon(poly: Polygon, x: float, y: float) -> bool:
    """Inclusive point-in-polygon test honouring holes.

    A point on a hole boundary is still in the polygon; a point strictly
    inside a hole is not.
    """
    if not poly.mbr.contains_point(x, y):
        return False
    if not point_in_ring(poly.exterior, x, y, boundary=True):
        return False
    for hole in poly.holes:
        if point_on_ring(hole, x, y):
            return True
        if point_in_ring(hole, x, y, boundary=False):
            return False
    return True


def polygon_contains_point(poly: Polygon, pt: Point) -> bool:
    """Alias of :func:`point_in_polygon` taking a :class:`Point`."""
    return point_in_polygon(poly, pt.x, pt.y)


def point_segment_distance(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """Euclidean distance from point p to closed segment ab."""
    dx, dy = bx - ax, by - ay
    seg_len2 = dx * dx + dy * dy
    if seg_len2 == 0.0:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len2
    t = 0.0 if t < 0.0 else (1.0 if t > 1.0 else t)
    return math.hypot(px - (ax + t * dx), py - (ay + t * dy))


def point_polyline_distance(pt: Point, line: PolyLine) -> float:
    """Minimum distance from a point to any segment of a polyline."""
    best = math.inf
    c = line.coords
    for i in range(c.shape[0] - 1):
        d = point_segment_distance(pt.x, pt.y, c[i, 0], c[i, 1], c[i + 1, 0], c[i + 1, 1])
        if d < best:
            best = d
            if best == 0.0:
                break
    return best


def segment_segment_distance(
    ax: float, ay: float, bx: float, by: float,
    cx: float, cy: float, dx: float, dy: float,
) -> float:
    """Euclidean distance between closed segments ab and cd (0 if crossing)."""
    if segments_intersect(ax, ay, bx, by, cx, cy, dx, dy):
        return 0.0
    return min(
        point_segment_distance(ax, ay, cx, cy, dx, dy),
        point_segment_distance(bx, by, cx, cy, dx, dy),
        point_segment_distance(cx, cy, ax, ay, bx, by),
        point_segment_distance(dx, dy, ax, ay, bx, by),
    )


def polyline_polyline_distance(a: PolyLine, b: PolyLine) -> float:
    """Minimum distance between two polylines (0 if they intersect)."""
    ca, cb = a.coords, b.coords
    best = math.inf
    for i in range(ca.shape[0] - 1):
        for j in range(cb.shape[0] - 1):
            d = segment_segment_distance(
                ca[i, 0], ca[i, 1], ca[i + 1, 0], ca[i + 1, 1],
                cb[j, 0], cb[j, 1], cb[j + 1, 0], cb[j + 1, 1],
            )
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
    return best


def point_polygon_distance(pt: Point, poly: Polygon) -> float:
    """Distance from a point to a polygon (0 when inside or on boundary)."""
    if point_in_polygon(poly, pt.x, pt.y):
        return 0.0
    best = math.inf
    for ring in (poly.exterior, *poly.holes):
        for i in range(ring.shape[0] - 1):
            d = point_segment_distance(
                pt.x, pt.y, ring[i, 0], ring[i, 1], ring[i + 1, 0], ring[i + 1, 1]
            )
            if d < best:
                best = d
    return best


def polyline_polygon_distance(line: PolyLine, poly: Polygon) -> float:
    """Distance from a polyline to a polygon (0 when they intersect)."""
    if polyline_intersects_polygon(line, poly):
        return 0.0
    c = line.coords
    best = math.inf
    for ring in (poly.exterior, *poly.holes):
        for i in range(c.shape[0] - 1):
            for j in range(ring.shape[0] - 1):
                d = segment_segment_distance(
                    c[i, 0], c[i, 1], c[i + 1, 0], c[i + 1, 1],
                    ring[j, 0], ring[j, 1], ring[j + 1, 0], ring[j + 1, 1],
                )
                if d < best:
                    best = d
    return best


def _polygon_polygon_distance(a: Polygon, b: Polygon) -> float:
    if polygon_intersects_polygon(a, b):
        return 0.0
    best = math.inf
    for ra in (a.exterior, *a.holes):
        for rb in (b.exterior, *b.holes):
            for i in range(ra.shape[0] - 1):
                for j in range(rb.shape[0] - 1):
                    d = segment_segment_distance(
                        ra[i, 0], ra[i, 1], ra[i + 1, 0], ra[i + 1, 1],
                        rb[j, 0], rb[j, 1], rb[j + 1, 0], rb[j + 1, 1],
                    )
                    if d < best:
                        best = d
    return best


def geometry_distance(a, b) -> float:
    """Minimum Euclidean distance between two geometries (0 on contact).

    The refinement predicate of the paper's motivating distance join
    ("matching taxi pickup locations with road segments through
    point-to-nearest-polyline distance computation").
    """
    if isinstance(a, Point) and isinstance(b, Point):
        return math.hypot(a.x - b.x, a.y - b.y)
    if isinstance(a, Point) and isinstance(b, PolyLine):
        return point_polyline_distance(a, b)
    if isinstance(a, PolyLine) and isinstance(b, Point):
        return point_polyline_distance(b, a)
    if isinstance(a, Point) and isinstance(b, Polygon):
        return point_polygon_distance(a, b)
    if isinstance(a, Polygon) and isinstance(b, Point):
        return point_polygon_distance(b, a)
    if isinstance(a, PolyLine) and isinstance(b, PolyLine):
        return polyline_polyline_distance(a, b)
    if isinstance(a, PolyLine) and isinstance(b, Polygon):
        return polyline_polygon_distance(a, b)
    if isinstance(a, Polygon) and isinstance(b, PolyLine):
        return polyline_polygon_distance(b, a)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return _polygon_polygon_distance(a, b)
    raise TypeError(f"unsupported geometry pair: {type(a).__name__}, {type(b).__name__}")


def polyline_intersects_polyline(a: PolyLine, b: PolyLine) -> bool:
    """True if any segment of *a* intersects any segment of *b*.

    Quadratic in segment counts; callers are expected to MBR-filter first
    (exactly the refinement role this predicate plays in the local join).
    """
    if not a.mbr.intersects(b.mbr):
        return False
    ca, cb = a.coords, b.coords
    for i in range(ca.shape[0] - 1):
        sx0, sy0, sx1, sy1 = ca[i, 0], ca[i, 1], ca[i + 1, 0], ca[i + 1, 1]
        seg_xmin, seg_xmax = min(sx0, sx1), max(sx0, sx1)
        seg_ymin, seg_ymax = min(sy0, sy1), max(sy0, sy1)
        for j in range(cb.shape[0] - 1):
            tx0, ty0, tx1, ty1 = cb[j, 0], cb[j, 1], cb[j + 1, 0], cb[j + 1, 1]
            # Cheap per-segment MBR rejection before the orientation tests.
            if (
                max(tx0, tx1) < seg_xmin
                or min(tx0, tx1) > seg_xmax
                or max(ty0, ty1) < seg_ymin
                or min(ty0, ty1) > seg_ymax
            ):
                continue
            if segments_intersect(sx0, sy0, sx1, sy1, tx0, ty0, tx1, ty1):
                return True
    return False


def polyline_intersects_polygon(line: PolyLine, poly: Polygon) -> bool:
    """True if the polyline touches the polygon's interior or boundary."""
    if not line.mbr.intersects(poly.mbr):
        return False
    # Any vertex inside the polygon suffices.
    for i in range(line.coords.shape[0]):
        if point_in_polygon(poly, line.coords[i, 0], line.coords[i, 1]):
            return True
    # Otherwise an edge must cross the exterior or a hole boundary.
    rings = (poly.exterior, *poly.holes)
    c = line.coords
    for i in range(c.shape[0] - 1):
        for ring in rings:
            for j in range(ring.shape[0] - 1):
                if segments_intersect(
                    c[i, 0], c[i, 1], c[i + 1, 0], c[i + 1, 1],
                    ring[j, 0], ring[j, 1], ring[j + 1, 0], ring[j + 1, 1],
                ):
                    return True
    return False


def polygon_intersects_polygon(a: Polygon, b: Polygon) -> bool:
    """True if two polygons share at least one point."""
    if not a.mbr.intersects(b.mbr):
        return False
    # Vertex containment either way.
    for i in range(a.exterior.shape[0]):
        if point_in_polygon(b, a.exterior[i, 0], a.exterior[i, 1]):
            return True
    for i in range(b.exterior.shape[0]):
        if point_in_polygon(a, b.exterior[i, 0], b.exterior[i, 1]):
            return True
    # Boundary crossings (covers the overlapping-but-no-contained-vertex case).
    rings_a = (a.exterior, *a.holes)
    rings_b = (b.exterior, *b.holes)
    for ra in rings_a:
        for i in range(ra.shape[0] - 1):
            for rb in rings_b:
                for j in range(rb.shape[0] - 1):
                    if segments_intersect(
                        ra[i, 0], ra[i, 1], ra[i + 1, 0], ra[i + 1, 1],
                        rb[j, 0], rb[j, 1], rb[j + 1, 0], rb[j + 1, 1],
                    ):
                        return True
    return False


def geometries_intersect(a, b) -> bool:
    """Generic inclusive intersection dispatch across all geometry kinds."""
    if isinstance(a, Point) and isinstance(b, Point):
        return a.x == b.x and a.y == b.y
    if isinstance(a, Point) and isinstance(b, Polygon):
        return point_in_polygon(b, a.x, a.y)
    if isinstance(a, Polygon) and isinstance(b, Point):
        return point_in_polygon(a, b.x, b.y)
    if isinstance(a, Point) and isinstance(b, PolyLine):
        return point_polyline_distance(a, b) == 0.0
    if isinstance(a, PolyLine) and isinstance(b, Point):
        return point_polyline_distance(b, a) == 0.0
    if isinstance(a, PolyLine) and isinstance(b, PolyLine):
        return polyline_intersects_polyline(a, b)
    if isinstance(a, PolyLine) and isinstance(b, Polygon):
        return polyline_intersects_polygon(a, b)
    if isinstance(a, Polygon) and isinstance(b, PolyLine):
        return polyline_intersects_polygon(b, a)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return polygon_intersects_polygon(a, b)
    raise TypeError(f"unsupported geometry pair: {type(a).__name__}, {type(b).__name__}")
