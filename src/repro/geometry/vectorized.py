"""Vectorized batch geometry kernels (the JTS-like fast path).

Each kernel is the batch equivalent of a scalar predicate in
:mod:`repro.geometry.predicates` and is property-tested against it.  Per
the HPC guides, kernels avoid per-element Python loops and operate on
C-contiguous float64 arrays; matrices that could grow quadratically are
chunked over the point axis to bound memory.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .primitives import PolyLine, Polygon

__all__ = [
    "points_on_ring",
    "points_in_ring",
    "points_in_polygon",
    "segments_intersect_matrix",
    "polylines_intersect",
    "points_segments_min_distance",
]

# Chunk size for (points × segments) intermediate matrices: bounds peak
# memory at ~few MB for typical ring sizes while keeping vector lengths
# long enough to amortize dispatch overhead.
_CHUNK = 8192


def _ring_segments(ring: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a closed ring into per-segment start and end arrays."""
    return ring[:-1], ring[1:]


class _RingPre:
    """Precomputed per-segment arrays of one ring, built once per ring."""

    __slots__ = ("ax", "ay", "bx", "by", "xmin", "xmax", "ymin", "ymax",
                 "safe_dy")

    def __init__(self, ring: np.ndarray):
        a, b = _ring_segments(ring)
        self.ax, self.ay = a[:, 0], a[:, 1]
        self.bx, self.by = b[:, 0], b[:, 1]
        self.xmin, self.xmax = np.minimum(self.ax, self.bx), np.maximum(self.ax, self.bx)
        self.ymin, self.ymax = np.minimum(self.ay, self.by), np.maximum(self.ay, self.by)
        dy = self.by - self.ay
        self.safe_dy = np.where(dy == 0.0, 1.0, dy)


def _polygon_ring_pre(poly: Polygon) -> "list[tuple[np.ndarray, _RingPre]]":
    """Per-ring precomputes of a polygon, cached on the instance.

    Ordered ``[exterior, *holes]``.  ``Polygon`` is immutable, so the
    cache (stashed in the instance ``__dict__`` alongside the
    ``cached_property`` values) never goes stale.
    """
    cached = poly.__dict__.get("_ring_pre")
    if cached is None:
        cached = [(r, _RingPre(r)) for r in (poly.exterior, *poly.holes)]
        poly.__dict__["_ring_pre"] = cached
    return cached


def points_on_ring(
    ring: np.ndarray, xy: np.ndarray, *, pre: "Optional[_RingPre]" = None
) -> np.ndarray:
    """Boolean mask of points lying exactly on a closed ring's boundary."""
    xy = np.asarray(xy, dtype=np.float64)
    n = xy.shape[0]
    out = np.zeros(n, dtype=bool)
    if pre is None:
        pre = _RingPre(ring)
    ax, ay = pre.ax, pre.ay
    bx, by = pre.bx, pre.by
    seg_xmin, seg_xmax = pre.xmin, pre.xmax
    seg_ymin, seg_ymax = pre.ymin, pre.ymax
    for lo in range(0, n, _CHUNK):
        px = xy[lo : lo + _CHUNK, 0][:, None]
        py = xy[lo : lo + _CHUNK, 1][:, None]
        cross = (bx - ax)[None, :] * (py - ay[None, :]) - (by - ay)[None, :] * (
            px - ax[None, :]
        )
        in_box = (
            (seg_xmin[None, :] <= px)
            & (px <= seg_xmax[None, :])
            & (seg_ymin[None, :] <= py)
            & (py <= seg_ymax[None, :])
        )
        out[lo : lo + _CHUNK] = np.any((cross == 0.0) & in_box, axis=1)
    return out


def points_in_ring(
    ring: np.ndarray, xy: np.ndarray, *, boundary: bool = True,
    pre: Optional[_RingPre] = None,
) -> np.ndarray:
    """Vectorized crossing-number test for many points against one ring.

    Matches :func:`repro.geometry.predicates.point_in_ring` exactly,
    including the inclusive-boundary option.
    """
    xy = np.asarray(xy, dtype=np.float64)
    n = xy.shape[0]
    inside = np.zeros(n, dtype=bool)
    if pre is None:
        pre = _RingPre(ring)
    ax, ay = pre.ax, pre.ay
    bx, by = pre.bx, pre.by
    # Horizontal segments never satisfy the half-open rule, so the dummy
    # divisor in safe_dy avoids divide-by-zero warnings without branching.
    safe_dy = pre.safe_dy
    for lo in range(0, n, _CHUNK):
        px = xy[lo : lo + _CHUNK, 0][:, None]
        py = xy[lo : lo + _CHUNK, 1][:, None]
        straddles = (ay[None, :] > py) != (by[None, :] > py)
        x_cross = ax[None, :] + (py - ay[None, :]) * (bx - ax)[None, :] / safe_dy[None, :]
        inside[lo : lo + _CHUNK] = (
            np.sum(straddles & (px < x_cross), axis=1) % 2 == 1
        )
    on_edge = points_on_ring(ring, xy, pre=pre)
    if boundary:
        return inside | on_edge
    return inside & ~on_edge


def points_in_polygon(poly: Polygon, xy: np.ndarray) -> np.ndarray:
    """Inclusive point-in-polygon mask honouring holes (batch form)."""
    xy = np.asarray(xy, dtype=np.float64)
    n = xy.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    box = poly.mbr
    in_box = (
        (box.xmin <= xy[:, 0])
        & (xy[:, 0] <= box.xmax)
        & (box.ymin <= xy[:, 1])
        & (xy[:, 1] <= box.ymax)
    )
    result = np.zeros(n, dtype=bool)
    cand = np.flatnonzero(in_box)
    if cand.size == 0:
        return result
    sub = xy[cand]
    rings = _polygon_ring_pre(poly)
    ext_ring, ext_pre = rings[0]
    mask = points_in_ring(ext_ring, sub, boundary=True, pre=ext_pre)
    for hole, hole_pre in rings[1:]:
        on_hole_edge = points_on_ring(hole, sub, pre=hole_pre)
        strictly_in_hole = points_in_ring(hole, sub, boundary=False, pre=hole_pre)
        mask &= on_hole_edge | ~strictly_in_hole
    result[cand] = mask
    return result


def segments_intersect_matrix(
    a0: np.ndarray, a1: np.ndarray, b0: np.ndarray, b1: np.ndarray
) -> np.ndarray:
    """``(na, nb)`` boolean matrix of closed-segment intersections.

    ``a0/a1`` are ``(na, 2)`` segment endpoints, ``b0/b1`` are ``(nb, 2)``.
    Implements the same orientation/collinearity logic as the scalar
    :func:`repro.geometry.predicates.segments_intersect`.
    """

    def cross_sign(ox, oy, px, py, qx, qy):
        v = (px - ox) * (qy - oy) - (py - oy) * (qx - ox)
        return np.sign(v)

    ax, ay = a0[:, 0][:, None], a0[:, 1][:, None]
    bx, by = a1[:, 0][:, None], a1[:, 1][:, None]
    cx, cy = b0[:, 0][None, :], b0[:, 1][None, :]
    dx, dy = b1[:, 0][None, :], b1[:, 1][None, :]

    d1 = cross_sign(cx, cy, dx, dy, ax, ay)
    d2 = cross_sign(cx, cy, dx, dy, bx, by)
    d3 = cross_sign(ax, ay, bx, by, cx, cy)
    d4 = cross_sign(ax, ay, bx, by, dx, dy)

    proper = (d1 != d2) & (d3 != d4) & (d1 != 0) & (d2 != 0) & (d3 != 0) & (d4 != 0)
    # The strict form above misses touching cases; fold them in with the
    # general rule used by the scalar predicate.
    general = (d1 != d2) & (d3 != d4)

    def on_seg(sx0, sy0, sx1, sy1, px, py):
        return (
            (np.minimum(sx0, sx1) <= px)
            & (px <= np.maximum(sx0, sx1))
            & (np.minimum(sy0, sy1) <= py)
            & (py <= np.maximum(sy0, sy1))
        )

    touch = (
        ((d1 == 0) & on_seg(cx, cy, dx, dy, ax, ay))
        | ((d2 == 0) & on_seg(cx, cy, dx, dy, bx, by))
        | ((d3 == 0) & on_seg(ax, ay, bx, by, cx, cy))
        | ((d4 == 0) & on_seg(ax, ay, bx, by, dx, dy))
    )
    # Bounding-box disjointness guard, mirroring the scalar predicate: it
    # vetoes false "collinear" verdicts caused by cross-product underflow.
    boxes_meet = (
        (np.maximum(cx, dx) >= np.minimum(ax, bx))
        & (np.minimum(cx, dx) <= np.maximum(ax, bx))
        & (np.maximum(cy, dy) >= np.minimum(ay, by))
        & (np.minimum(cy, dy) <= np.maximum(ay, by))
    )
    return (proper | general | touch) & boxes_meet


def polylines_intersect(a: PolyLine, b: PolyLine) -> bool:
    """Batch equivalent of ``polyline_intersects_polyline``."""
    if not a.mbr.intersects(b.mbr):
        return False
    ca, cb = a.coords, b.coords
    return bool(
        segments_intersect_matrix(ca[:-1], ca[1:], cb[:-1], cb[1:]).any()
    )


def _polyline_seg_pre(line: PolyLine) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(a, d, safe_len2)`` segment arrays of a polyline, cached on it."""
    cached = line.__dict__.get("_seg_pre")
    if cached is None:
        c = line.coords
        a, b = c[:-1], c[1:]
        d = b - a
        seg_len2 = (d**2).sum(axis=1)
        safe_len2 = np.where(seg_len2 == 0.0, 1.0, seg_len2)
        cached = (a, d, safe_len2)
        line.__dict__["_seg_pre"] = cached
    return cached


def points_segments_min_distance(xy: np.ndarray, line: PolyLine) -> np.ndarray:
    """Minimum distance from each point to any segment of a polyline."""
    xy = np.asarray(xy, dtype=np.float64)
    n = xy.shape[0]
    a, d, safe_len2 = _polyline_seg_pre(line)
    out = np.empty(n, dtype=np.float64)
    for lo in range(0, n, _CHUNK):
        p = xy[lo : lo + _CHUNK]
        # t: (chunk, nseg) clamped projection parameter per point/segment.
        t = ((p[:, None, :] - a[None, :, :]) * d[None, :, :]).sum(axis=2) / safe_len2[None, :]
        np.clip(t, 0.0, 1.0, out=t)
        proj = a[None, :, :] + t[:, :, None] * d[None, :, :]
        dist2 = ((p[:, None, :] - proj) ** 2).sum(axis=2)
        out[lo : lo + _CHUNK] = np.sqrt(dist2.min(axis=1))
    return out
