"""Geometry substrate: primitives, MBRs, WKT, exact predicates, engines.

This package stands in for the JTS / GEOS geometry libraries the paper's
systems link against.  See :mod:`repro.geometry.engine` for the two
engine variants that reproduce the JTS-vs-GEOS design-choice effect.
"""

from .engine import (
    GEOS_COST_PROFILE,
    JTS_COST_PROFILE,
    GeometryEngine,
    GeosLikeEngine,
    JtsLikeEngine,
    make_engine,
)
from .batch import (
    KIND_CODES,
    KIND_POINT,
    KIND_POLYGON,
    KIND_POLYLINE,
    GeometryBatch,
    as_mbr_array,
)
from .mbr import EMPTY_MBR, MBR, MBRArray
from .predicates import (
    geometries_intersect,
    geometry_distance,
    on_segment,
    orientation,
    point_in_polygon,
    point_in_ring,
    point_on_ring,
    point_polygon_distance,
    point_polyline_distance,
    point_segment_distance,
    polygon_contains_point,
    polygon_intersects_polygon,
    polyline_intersects_polygon,
    polyline_intersects_polyline,
    polyline_polygon_distance,
    polyline_polyline_distance,
    segment_segment_distance,
    segments_intersect,
)
from .vectorized import points_in_ring, points_on_ring, segments_intersect_matrix
from .primitives import Geometry, GeometryLike, Point, PolyLine, Polygon
from .wkt import WktError, from_wkt, to_wkt, wkt_of_parts, wkt_parts

__all__ = [
    "MBR",
    "MBRArray",
    "EMPTY_MBR",
    "GeometryBatch",
    "as_mbr_array",
    "KIND_POINT",
    "KIND_POLYLINE",
    "KIND_POLYGON",
    "KIND_CODES",
    "wkt_parts",
    "wkt_of_parts",
    "Geometry",
    "GeometryLike",
    "Point",
    "PolyLine",
    "Polygon",
    "from_wkt",
    "to_wkt",
    "WktError",
    "GeometryEngine",
    "JtsLikeEngine",
    "GeosLikeEngine",
    "make_engine",
    "JTS_COST_PROFILE",
    "GEOS_COST_PROFILE",
    "geometries_intersect",
    "geometry_distance",
    "segment_segment_distance",
    "point_in_polygon",
    "point_polyline_distance",
    "polyline_intersects_polyline",
    "segments_intersect",
    "orientation",
    "on_segment",
    "point_in_ring",
    "point_on_ring",
    "point_segment_distance",
    "point_polygon_distance",
    "polyline_polyline_distance",
    "polyline_polygon_distance",
    "polygon_contains_point",
    "polyline_intersects_polygon",
    "polygon_intersects_polygon",
    "points_on_ring",
    "points_in_ring",
    "segments_intersect_matrix",
]
