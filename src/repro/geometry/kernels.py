"""CSR-native multi-geometry kernels: all candidate pairs in one pass.

Where :mod:`repro.geometry.vectorized` evaluates many points against
*one* ring or polyline, these kernels evaluate a whole candidate set —
``(point, polygon)`` or ``(point, polyline)`` pairs — directly against a
:class:`~repro.geometry.batch.GeometryBatch`'s packed CSR buffers
(``coords`` / ``ring_offsets`` / ``geom_rings``).  No per-geometry
Python iteration, no ``Polygon``/``PolyLine`` materialisation.

Layout
------
Work is flattened onto a single ``(candidate x segment)`` axis: candidate
``c`` against a geometry with ``s_c`` segments contributes ``s_c``
consecutive flat elements.  ``flat_offsets`` (an exclusive prefix sum of
segment counts) maps flat positions back to candidates, so one
``searchsorted`` per chunk recovers the candidate window, ``bincount``
folds per-segment hits into per-candidate crossing counts, and
``minimum.reduceat`` folds per-segment distances into per-candidate
minima.  Chunking the flat axis bounds peak memory regardless of how
skewed the per-candidate segment counts are.

Bit-parity contract
-------------------
Every elementwise expression here is written with the same operand
order as its per-ring counterpart in ``vectorized.py`` (crossing-number
half-open rule, ``safe_dy`` horizontal-segment guard, exact ``cross ==
0`` boundary test, clamped projection distances).  Crossing parity and
min-distance reductions are exact (integer counts; ``min`` is
order-independent), so the masks are bit-identical to the per-group
path — the engines rely on this to keep the golden-equivalence
guarantee while charging counters in bulk.
"""

from __future__ import annotations

import numpy as np

from .batch import _ranges

__all__ = [
    "points_in_polygons_csr",
    "points_within_polylines_csr",
]

# Chunk size for the flattened (candidate x segment) axis: large enough
# to amortize NumPy dispatch, small enough to keep intermediates in
# cache-friendly territory.
_FLAT_CHUNK = 1 << 16

# Optional override installed by parallel_chunk_scope(): when several
# worker threads run kernel slices concurrently, larger chunks keep each
# thread inside NumPy's GIL-releasing inner loops for longer, so the
# slices genuinely overlap instead of trading the GIL per tiny chunk.
_PARALLEL_CHUNK = None


def _effective_chunk() -> int:
    chunk = _PARALLEL_CHUNK
    return _FLAT_CHUNK if chunk is None else chunk


class parallel_chunk_scope:
    """Scale the kernel chunk size while a parallel stage is in flight.

    Chunk size is *result-invariant* (property-tested: parity folds with
    XOR, distances with min, across any chunking), so the module-global
    override is a pure performance knob; a race between two scopes can
    only pick a different-but-valid chunk size, never change results.
    """

    def __init__(self, workers: int):
        self.chunk = min(_FLAT_CHUNK * max(1, int(workers)), 1 << 20)

    def __enter__(self):
        global _PARALLEL_CHUNK
        self._prev = _PARALLEL_CHUNK
        _PARALLEL_CHUNK = self.chunk
        return self

    def __exit__(self, *exc):
        global _PARALLEL_CHUNK
        _PARALLEL_CHUNK = self._prev
        return False


def _flat_chunks(flat_offsets: np.ndarray, seg_starts: np.ndarray, chunk: int):
    """Iterate the flattened (candidate x segment) axis in bounded chunks.

    Yields ``(c0, c1, rel, seg_idx, bounds)`` per chunk where candidates
    ``c0:c1`` intersect the chunk, ``rel`` maps each flat element to its
    candidate (relative to ``c0``), ``seg_idx`` is the element's segment
    start index into the coords buffer, and ``bounds`` are the reduceat
    boundaries of the per-candidate runs inside the chunk.
    """
    total = int(flat_offsets[-1])
    for lo in range(0, total, chunk):
        hi = min(lo + chunk, total)
        c0 = int(np.searchsorted(flat_offsets, lo, side="right") - 1)
        c1 = int(np.searchsorted(flat_offsets, hi, side="left"))
        clipped = np.clip(flat_offsets[c0 : c1 + 1], lo, hi)
        counts = np.diff(clipped)
        rel = np.repeat(np.arange(c1 - c0, dtype=np.int64), counts)
        seg_idx = np.arange(lo, hi, dtype=np.int64) + np.repeat(
            seg_starts[c0:c1] - flat_offsets[c0:c1], counts
        )
        yield c0, c1, rel, seg_idx, clipped[:-1] - lo


def _rings_parity_edge(
    pts: np.ndarray,
    pair_cand: np.ndarray,
    pair_ring: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    ring_offsets: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per (candidate, ring) pair: crossing parity and exact-edge flag.

    ``cx``/``cy`` are contiguous 1-D coordinate columns.  The
    crossing-number half-open rule and the ``cross == 0`` boundary test
    match ``points_in_ring`` / ``points_on_ring`` expression for
    expression; parity is folded across chunks with XOR (exact — parity
    of a sum is the XOR of partial parities).
    """
    n_cr = pair_ring.shape[0]
    seg_starts = ring_offsets[pair_ring]
    seg_counts = ring_offsets[pair_ring + 1] - seg_starts - 1
    flat_offsets = np.zeros(n_cr + 1, dtype=np.int64)
    np.cumsum(seg_counts, out=flat_offsets[1:])
    parity = np.zeros(n_cr, dtype=bool)
    on_edge = np.zeros(n_cr, dtype=bool)
    pts_x = np.ascontiguousarray(pts[:, 0])
    pts_y = np.ascontiguousarray(pts[:, 1])
    for c0, c1, rel, seg_idx, bounds in _flat_chunks(
        flat_offsets, seg_starts, _effective_chunk()
    ):
        ax, ay = cx[seg_idx], cy[seg_idx]
        bx, by = cx[seg_idx + 1], cy[seg_idx + 1]
        cand = pair_cand[c0 + rel]
        px, py = pts_x[cand], pts_y[cand]
        dy = by - ay
        safe_dy = np.where(dy == 0.0, 1.0, dy)
        straddles = (ay > py) != (by > py)
        x_cross = ax + (py - ay) * (bx - ax) / safe_dy
        hit = straddles & (px < x_cross)
        parity[c0:c1] ^= np.logical_xor.reduceat(hit, bounds)
        cross = (bx - ax) * (py - ay) - (by - ay) * (px - ax)
        on_seg = (
            (np.minimum(ax, bx) <= px)
            & (px <= np.maximum(ax, bx))
            & (np.minimum(ay, by) <= py)
            & (py <= np.maximum(ay, by))
        )
        edge = (cross == 0.0) & on_seg
        on_edge[c0:c1] |= np.logical_or.reduceat(edge, bounds)
    return parity, on_edge


def points_in_polygons_csr(
    xy: np.ndarray,
    rows: np.ndarray,
    coords: np.ndarray,
    ring_offsets: np.ndarray,
    geom_rings: np.ndarray,
    mbr_data: np.ndarray,
    coords_cols: "tuple[np.ndarray, np.ndarray] | None" = None,
) -> np.ndarray:
    """Inclusive point-in-polygon mask for many (point, polygon) pairs.

    ``xy[c]`` is tested against the polygon stored at batch row
    ``rows[c]``; holes are honoured with the same inclusive-boundary
    rule as ``vectorized.points_in_polygon``.  One chunked pass over the
    packed coords buffer, no per-polygon iteration.  Pass the batch's
    cached :meth:`~repro.geometry.batch.GeometryBatch.coords_cols` as
    *coords_cols* to skip re-splitting the coordinate columns.
    """
    xy = np.asarray(xy, dtype=np.float64).reshape(-1, 2)
    rows = np.asarray(rows, dtype=np.int64)
    k = xy.shape[0]
    result = np.zeros(k, dtype=bool)
    if k == 0:
        return result
    boxes = mbr_data[rows]
    in_box = (
        (boxes[:, 0] <= xy[:, 0])
        & (xy[:, 0] <= boxes[:, 2])
        & (boxes[:, 1] <= xy[:, 1])
        & (xy[:, 1] <= boxes[:, 3])
    )
    cand = np.flatnonzero(in_box)
    if cand.size == 0:
        return result
    pts = xy[cand]
    crows = rows[cand]
    # One (candidate, ring) pair per ring of each candidate's polygon,
    # exterior ring first (CSR ring order).
    ring_lo = geom_rings[crows]
    ring_counts = geom_rings[crows + 1] - ring_lo
    n_cr = int(ring_counts.sum())
    cr_ring = _ranges(ring_lo, ring_counts, n_cr)
    cr_cand = np.repeat(np.arange(cand.size, dtype=np.int64), ring_counts)
    if coords_cols is None:
        coords_cols = (
            np.ascontiguousarray(coords[:, 0]),
            np.ascontiguousarray(coords[:, 1]),
        )
    cx, cy = coords_cols
    parity, on_edge = _rings_parity_edge(pts, cr_cand, cr_ring, cx, cy, ring_offsets)
    first = np.zeros(cand.size + 1, dtype=np.int64)
    np.cumsum(ring_counts, out=first[1:])
    first = first[:-1]  # index of each candidate's exterior-ring pair
    is_first = np.zeros(n_cr, dtype=bool)
    is_first[first] = True
    # Exterior: inclusive containment (inside by parity, or on edge).
    mask = parity[first] | on_edge[first]
    # Holes veto a candidate when the point is strictly inside one
    # (inside by parity and not on the hole's edge).
    hole_bad = parity & ~on_edge & ~is_first
    mask &= np.bincount(cr_cand[hole_bad], minlength=cand.size) == 0
    result[cand] = mask
    return result


def points_within_polylines_csr(
    xy: np.ndarray,
    rows: np.ndarray,
    coords: np.ndarray,
    ring_offsets: np.ndarray,
    geom_rings: np.ndarray,
    distance: float,
    coords_cols: "tuple[np.ndarray, np.ndarray] | None" = None,
) -> np.ndarray:
    """Mask of (point, polyline) pairs within *distance* of each other.

    Clamped point-to-segment projection identical to
    ``vectorized.points_segments_min_distance`` (per-component form of
    the same expressions — a 2-element ``.sum(axis=1)`` is exactly
    ``x + y``); the per-candidate minimum is folded across chunks
    (order-independent, exact).
    """
    xy = np.asarray(xy, dtype=np.float64).reshape(-1, 2)
    rows = np.asarray(rows, dtype=np.int64)
    k = xy.shape[0]
    if k == 0:
        return np.zeros(0, dtype=bool)
    ring0 = geom_rings[rows]  # a polyline is stored as one open "ring"
    seg_starts = ring_offsets[ring0]
    seg_counts = ring_offsets[ring0 + 1] - seg_starts - 1
    flat_offsets = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(seg_counts, out=flat_offsets[1:])
    if coords_cols is None:
        coords_cols = (
            np.ascontiguousarray(coords[:, 0]),
            np.ascontiguousarray(coords[:, 1]),
        )
    cx, cy = coords_cols
    pts_x = np.ascontiguousarray(xy[:, 0])
    pts_y = np.ascontiguousarray(xy[:, 1])
    min_d2 = np.full(k, np.inf)
    for c0, c1, rel, seg_idx, bounds in _flat_chunks(
        flat_offsets, seg_starts, _effective_chunk()
    ):
        ax, ay = cx[seg_idx], cy[seg_idx]
        bx, by = cx[seg_idx + 1], cy[seg_idx + 1]
        dx = bx - ax
        dy = by - ay
        seg_len2 = dx * dx + dy * dy
        safe_len2 = np.where(seg_len2 == 0.0, 1.0, seg_len2)
        px, py = pts_x[c0 + rel], pts_y[c0 + rel]
        t = ((px - ax) * dx + (py - ay) * dy) / safe_len2
        np.clip(t, 0.0, 1.0, out=t)
        ex = px - (ax + t * dx)
        ey = py - (ay + t * dy)
        dist2 = ex * ex + ey * ey
        partial = np.minimum.reduceat(dist2, bounds)
        np.minimum(min_d2[c0:c1], partial, out=min_d2[c0:c1])
    return np.sqrt(min_d2) <= distance
