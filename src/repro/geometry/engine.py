"""Geometry engines: the JTS-like and GEOS-like refinement backends.

The paper attributes a large share of HadoopGIS's slowness to its C++
GEOS library being "several times" slower than the Java JTS used by
SpatialHadoop and SpatialSpark (Section II.C, citing [6]).  We reproduce
that *design choice* with two engines that compute identical results
through different execution paths:

* :class:`JtsLikeEngine` — vectorized NumPy kernels (the fast path).
* :class:`GeosLikeEngine` — scalar pure-Python predicates (the slow path),
  plus a larger per-operation cost profile for the simulated-time model.

Both engines count every operation they perform in a shared
:class:`~repro.metrics.Counters`; the cluster cost model multiplies those
counts by the engine's ``cost_profile`` to obtain simulated CPU seconds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional, Sequence

import numpy as np

from ..metrics import Counters
from . import kernels, predicates, vectorized
from .batch import GeometryBatch
from .primitives import Geometry, Point, PolyLine, Polygon

__all__ = [
    "GeometryEngine",
    "JtsLikeEngine",
    "GeosLikeEngine",
    "make_engine",
    "JTS_COST_PROFILE",
    "GEOS_COST_PROFILE",
]

# Simulated cost per counted operation, in microseconds.  The pip / seg /
# vertex entries come from the bounded least-squares fit against the
# paper's runtimes (see repro.experiments.calibration); the GEOS/JTS
# ratio is the paper's "several times faster" observation (we use 4x).
JTS_COST_PROFILE = {
    "geom.pip_tests": 10.5,
    "geom.seg_pair_tests": 0.0226,
    "geom.dist_tests": 0.30,
    "geom.vertex_ops": 1.0,
    "geom.mbr_tests": 0.02,
}
GEOS_COST_PROFILE = {key: 4.0 * value for key, value in JTS_COST_PROFILE.items()}


class GeometryEngine(ABC):
    """Common interface of the refinement backends.

    Engines are stateful only in their counters; predicate results are pure
    functions of their inputs, so the two engines are interchangeable for
    correctness and differ only in speed.
    """

    #: short identifier used in reports ("jts" / "geos")
    name: str = "abstract"

    def __init__(self, counters: Optional[Counters] = None) -> None:
        self.counters = counters if counters is not None else Counters()

    # ---------------------------------------------------------------- costs
    @property
    def cost_profile(self) -> dict[str, float]:
        raise NotImplementedError

    def reset_counters(self) -> None:
        """Replace the counters with a fresh, empty instance."""
        self.counters = Counters()

    # ----------------------------------------------------------- predicates
    @abstractmethod
    def points_in_polygon(self, poly: Polygon, xy: np.ndarray) -> np.ndarray:
        """Inclusive containment mask of an ``(n, 2)`` point batch."""

    @abstractmethod
    def intersects(self, a: Geometry, b: Geometry) -> bool:
        """Exact inclusive intersection test between two geometries."""

    @abstractmethod
    def point_polyline_distance(self, pt: Point, line: PolyLine) -> float:
        """Euclidean distance from a point to a polyline."""

    def within_distance(self, a: Geometry, b: Geometry, distance: float) -> bool:
        """True when the geometries lie within *distance* of each other.

        The refinement predicate of an ε-distance join (the paper's
        motivating taxi-to-nearest-road workload).
        """
        self.counters.add("geom.dist_tests")
        self.counters.add("geom.vertex_ops", a.num_points + b.num_points)
        return predicates.geometry_distance(a, b) <= distance

    def points_within_distance(
        self, line: PolyLine, xy: np.ndarray, distance: float
    ) -> np.ndarray:
        """Mask of points within *distance* of a polyline (batch form)."""
        xy = np.asarray(xy, dtype=np.float64)
        self.counters.add("geom.dist_tests", xy.shape[0])
        self.counters.add("geom.vertex_ops", xy.shape[0] * line.num_points)
        out = np.empty(xy.shape[0], dtype=bool)
        for i in range(xy.shape[0]):
            out[i] = (
                predicates.point_polyline_distance(Point(xy[i, 0], xy[i, 1]), line)
                <= distance
            )
        return out

    # ------------------------------------------------- CSR batch refinement
    def points_in_polygons(
        self, right: GeometryBatch, rows: np.ndarray, xy: np.ndarray
    ) -> np.ndarray:
        """Candidate-set containment: ``xy[c]`` vs polygon ``rows[c]``.

        *rows* must be sorted.  The base implementation walks the
        distinct polygons and dispatches one :meth:`points_in_polygon`
        call per group — identical results *and* identical per-group
        counter charges to the historical grouped refine loop.  Fast
        engines override this with a CSR kernel and bulk charges.
        """
        out = np.empty(rows.shape[0], dtype=bool)
        for start, stop, row in _group_runs(rows):
            out[start:stop] = self.points_in_polygon(right[row], xy[start:stop])
        return out

    def points_within_distances(
        self, right: GeometryBatch, rows: np.ndarray, xy: np.ndarray,
        distance: float,
    ) -> np.ndarray:
        """Candidate-set ε-distance mask: ``xy[c]`` vs polyline ``rows[c]``.

        Grouped scalar fallback; see :meth:`points_in_polygons`.
        """
        out = np.empty(rows.shape[0], dtype=bool)
        for start, stop, row in _group_runs(rows):
            out[start:stop] = self.points_within_distance(
                right[row], xy[start:stop], distance
            )
        return out

    # ---------------------------------------------------------- refinement
    def refine_pairs(
        self,
        left: Sequence[Geometry],
        right: Sequence[Geometry],
        candidates: Iterable[tuple[int, int]],
    ) -> list[tuple[int, int]]:
        """Drop MBR-filter false positives using exact geometry.

        *candidates* are (left_index, right_index) pairs from the spatial
        filter; the result keeps only pairs whose geometries intersect.
        This is the "spatial refinement" step of the local join.
        """
        return [(i, j) for i, j in candidates if self.intersects(left[i], right[j])]

    # ------------------------------------------------------------- helpers
    def _charge_pair(self, a: Geometry, b: Geometry) -> None:
        c = self.counters
        c.add("geom.mbr_tests")
        if isinstance(a, Polygon) or isinstance(b, Polygon):
            poly = a if isinstance(a, Polygon) else b
            other = b if poly is a else a
            if isinstance(other, Point):
                c.add("geom.pip_tests")
                c.add("geom.vertex_ops", poly.num_points)
            else:
                c.add("geom.seg_pair_tests", max(poly.num_points - 1, 1) * max(other.num_points - 1, 1))
                c.add("geom.vertex_ops", poly.num_points + other.num_points)
        elif isinstance(a, PolyLine) and isinstance(b, PolyLine):
            c.add("geom.seg_pair_tests", a.num_segments * b.num_segments)
            c.add("geom.vertex_ops", a.num_points + b.num_points)
        else:
            c.add("geom.dist_tests")


def _group_runs(rows: np.ndarray):
    """Yield ``(start, stop, row)`` runs of a sorted row-index array."""
    if rows.shape[0] == 0:
        return
    _, starts = np.unique(rows, return_index=True)
    ends = np.append(starts[1:], rows.shape[0])
    for start, stop in zip(starts, ends):
        yield int(start), int(stop), int(rows[start])


class JtsLikeEngine(GeometryEngine):
    """Fast engine modelled on JTS: batch-vectorized NumPy kernels."""

    name = "jts"

    @property
    def cost_profile(self) -> dict[str, float]:
        return JTS_COST_PROFILE

    def points_in_polygon(self, poly: Polygon, xy: np.ndarray) -> np.ndarray:
        """Batch point-in-polygon via the vectorized crossing-number kernel."""
        xy = np.asarray(xy, dtype=np.float64)
        self.counters.add("geom.pip_tests", xy.shape[0])
        self.counters.add("geom.vertex_ops", xy.shape[0] * poly.num_points)
        return vectorized.points_in_polygon(poly, xy)

    def intersects(self, a: Geometry, b: Geometry) -> bool:
        """Exact intersection test, batch kernels where available."""
        self._charge_pair(a, b)
        if isinstance(a, PolyLine) and isinstance(b, PolyLine):
            return vectorized.polylines_intersect(a, b)
        if isinstance(a, Point) and isinstance(b, Polygon):
            return bool(vectorized.points_in_polygon(b, np.array([[a.x, a.y]]))[0])
        if isinstance(a, Polygon) and isinstance(b, Point):
            return bool(vectorized.points_in_polygon(a, np.array([[b.x, b.y]]))[0])
        return predicates.geometries_intersect(a, b)

    def point_polyline_distance(self, pt: Point, line: PolyLine) -> float:
        """Point-to-polyline distance via the vectorized segment kernel."""
        self.counters.add("geom.dist_tests")
        self.counters.add("geom.vertex_ops", line.num_points)
        return float(
            vectorized.points_segments_min_distance(np.array([[pt.x, pt.y]]), line)[0]
        )

    def points_within_distance(
        self, line: PolyLine, xy: np.ndarray, distance: float
    ) -> np.ndarray:
        """Batched ε-distance mask via the vectorized segment kernel."""
        xy = np.asarray(xy, dtype=np.float64)
        self.counters.add("geom.dist_tests", xy.shape[0])
        self.counters.add("geom.vertex_ops", xy.shape[0] * line.num_points)
        return vectorized.points_segments_min_distance(xy, line) <= distance

    def points_in_polygons(
        self, right: GeometryBatch, rows: np.ndarray, xy: np.ndarray
    ) -> np.ndarray:
        """All candidates in one CSR kernel pass; counters charged in bulk.

        The charges equal the per-group sums exactly (one ``pip_test``
        per candidate, the polygon's full vertex count per candidate),
        and the kernel mask is bit-identical to the grouped path.
        """
        self.counters.add("geom.pip_tests", rows.shape[0])
        self.counters.add("geom.vertex_ops", int(right.num_points()[rows].sum()))
        return kernels.points_in_polygons_csr(
            xy, rows, right.coords, right.ring_offsets, right.geom_rings,
            right.mbrs.data, coords_cols=right.coords_cols(),
        )

    def points_within_distances(
        self, right: GeometryBatch, rows: np.ndarray, xy: np.ndarray,
        distance: float,
    ) -> np.ndarray:
        """CSR distance kernel over all candidates; bulk counter charges."""
        self.counters.add("geom.dist_tests", rows.shape[0])
        self.counters.add("geom.vertex_ops", int(right.num_points()[rows].sum()))
        return kernels.points_within_polylines_csr(
            xy, rows, right.coords, right.ring_offsets, right.geom_rings,
            distance, coords_cols=right.coords_cols(),
        )


class GeosLikeEngine(GeometryEngine):
    """Slow engine modelled on GEOS: scalar per-pair predicates.

    Results are identical to :class:`JtsLikeEngine`; only the execution
    path (pure-Python loops) and the simulated per-op cost differ.
    """

    name = "geos"

    @property
    def cost_profile(self) -> dict[str, float]:
        return GEOS_COST_PROFILE

    def points_in_polygon(self, poly: Polygon, xy: np.ndarray) -> np.ndarray:
        """Point-by-point scalar loop (the deliberately slow path)."""
        xy = np.asarray(xy, dtype=np.float64)
        self.counters.add("geom.pip_tests", xy.shape[0])
        self.counters.add("geom.vertex_ops", xy.shape[0] * poly.num_points)
        out = np.empty(xy.shape[0], dtype=bool)
        for i in range(xy.shape[0]):
            out[i] = predicates.point_in_polygon(poly, xy[i, 0], xy[i, 1])
        return out

    def intersects(self, a: Geometry, b: Geometry) -> bool:
        """Exact intersection test through the scalar predicates."""
        self._charge_pair(a, b)
        return predicates.geometries_intersect(a, b)

    def point_polyline_distance(self, pt: Point, line: PolyLine) -> float:
        """Point-to-polyline distance through the scalar predicates."""
        self.counters.add("geom.dist_tests")
        self.counters.add("geom.vertex_ops", line.num_points)
        return predicates.point_polyline_distance(pt, line)


_ENGINES = {"jts": JtsLikeEngine, "geos": GeosLikeEngine}


def make_engine(name: str, counters: Optional[Counters] = None) -> GeometryEngine:
    """Instantiate an engine by name ("jts" or "geos").

    When *counters* is given, the engine charges its ops there — used by
    the substrates so geometry work lands in per-phase accounting.
    """
    try:
        return _ENGINES[name](counters)
    except KeyError:
        raise ValueError(f"unknown geometry engine {name!r}; options: {sorted(_ENGINES)}") from None
