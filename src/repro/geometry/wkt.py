"""WKT (Well-Known Text) codec for the supported geometry types.

All three systems in the paper exchange geometries as text — HadoopGIS is
*forced* to (Hadoop Streaming pipes strings), and the TIGER/taxi inputs are
WKT/CSV files.  This codec provides the parse/serialize path whose per-record
cost the paper identifies as a major HadoopGIS overhead; the substrates
charge a parse cost every time a record crosses a text boundary.

Supported: POINT, LINESTRING, POLYGON (with holes), and the matching
MULTI* forms are intentionally out of scope (the paper's workloads do not
use them).
"""

from __future__ import annotations

import re

import numpy as np

from .batch import KIND_POINT, KIND_POLYGON, KIND_POLYLINE
from .primitives import Geometry, Point, PolyLine, Polygon, _coerce_coords

__all__ = ["to_wkt", "from_wkt", "wkt_parts", "wkt_of_parts", "WktError"]


class WktError(ValueError):
    """Raised for malformed WKT input."""


def _fmt(value: float) -> str:
    """Format a coordinate compactly (no trailing zeros, no sci-notation surprises)."""
    return repr(float(value))


def _coords_text(coords: np.ndarray) -> str:
    return ", ".join(f"{_fmt(x)} {_fmt(y)}" for x, y in coords)


def to_wkt(geom: Geometry) -> str:
    """Serialize a geometry to WKT."""
    if isinstance(geom, Point):
        return f"POINT ({_fmt(geom.x)} {_fmt(geom.y)})"
    if isinstance(geom, PolyLine):
        return f"LINESTRING ({_coords_text(geom.coords)})"
    if isinstance(geom, Polygon):
        rings = [f"({_coords_text(geom.exterior)})"]
        rings += [f"({_coords_text(h)})" for h in geom.holes]
        return f"POLYGON ({', '.join(rings)})"
    raise TypeError(f"cannot serialize {type(geom).__name__} to WKT")


_POINT_RE = re.compile(r"^\s*POINT\s*\(\s*(\S+)\s+(\S+)\s*\)\s*$", re.IGNORECASE)
_LINESTRING_RE = re.compile(r"^\s*LINESTRING\s*\((.*)\)\s*$", re.IGNORECASE | re.DOTALL)
_POLYGON_RE = re.compile(r"^\s*POLYGON\s*\((.*)\)\s*$", re.IGNORECASE | re.DOTALL)
_RING_RE = re.compile(r"\(([^()]*)\)")


def _parse_coord_list(text: str, what: str) -> np.ndarray:
    pts = []
    for pair in text.split(","):
        parts = pair.split()
        if len(parts) != 2:
            raise WktError(f"malformed coordinate {pair!r} in {what}")
        try:
            pts.append((float(parts[0]), float(parts[1])))
        except ValueError as exc:
            raise WktError(f"non-numeric coordinate {pair!r} in {what}") from exc
    if not pts:
        raise WktError(f"empty coordinate list in {what}")
    return np.array(pts, dtype=np.float64)


def from_wkt(text: str) -> Geometry:
    """Parse WKT into a geometry object.

    Raises :class:`WktError` on malformed input — the error the substrates
    surface when a corrupted record flows through a streaming pipe.
    """
    if not isinstance(text, str):
        raise WktError(f"WKT must be a string, got {type(text).__name__}")
    m = _POINT_RE.match(text)
    if m:
        try:
            return Point(float(m.group(1)), float(m.group(2)))
        except ValueError as exc:
            raise WktError(f"malformed POINT: {text!r}") from exc
    m = _LINESTRING_RE.match(text)
    if m:
        coords = _parse_coord_list(m.group(1), "LINESTRING")
        if coords.shape[0] < 2:
            raise WktError("LINESTRING requires at least 2 points")
        return PolyLine(coords)
    m = _POLYGON_RE.match(text)
    if m:
        rings = [_parse_coord_list(r.group(1), "POLYGON ring") for r in _RING_RE.finditer(m.group(1))]
        if not rings:
            raise WktError(f"POLYGON with no rings: {text!r}")
        try:
            return Polygon(rings[0], rings[1:])
        except ValueError as exc:
            raise WktError(str(exc)) from exc
    raise WktError(f"unrecognized WKT: {text[:80]!r}")


# --------------------------------------------------------------------------
# Batch (columnar) codec: the same text format, parsed straight into the
# ring arrays a GeometryBatch packs, without materialising Geometry objects.


def _fast_coords(text: str, what: str) -> np.ndarray:
    """One-shot coordinate-list parse (floats identical to ``float()``)."""
    parts = text.replace(",", " ").split()
    if not parts:
        raise WktError(f"empty coordinate list in {what}")
    if len(parts) % 2:
        raise WktError(f"malformed coordinate list in {what}")
    try:
        arr = np.array(parts, dtype=np.float64)
    except ValueError as exc:
        raise WktError(f"non-numeric coordinate in {what}") from exc
    return arr.reshape(-1, 2)


def wkt_parts(text: str) -> tuple[int, list[np.ndarray]]:
    """Parse WKT into ``(kind_code, ring_arrays)`` for batch assembly.

    The returned rings carry exactly the values :func:`from_wkt` would
    store on the equivalent geometry object (same float parsing, same
    ring closing/orientation normalization), so a batch assembled from
    them is bit-identical to one packed from parsed objects.
    """
    if not isinstance(text, str):
        raise WktError(f"WKT must be a string, got {type(text).__name__}")
    m = _POINT_RE.match(text)
    if m:
        try:
            x, y = float(m.group(1)), float(m.group(2))
            if not (np.isfinite(x) and np.isfinite(y)):
                raise ValueError(text)
        except ValueError as exc:
            raise WktError(f"malformed POINT: {text!r}") from exc
        return KIND_POINT, [np.array([[x, y]], dtype=np.float64)]
    m = _LINESTRING_RE.match(text)
    if m:
        coords = _fast_coords(m.group(1), "LINESTRING")
        if coords.shape[0] < 2:
            raise WktError("LINESTRING requires at least 2 points")
        return KIND_POLYLINE, [_coerce_coords(coords, min_points=2, what="PolyLine")]
    m = _POLYGON_RE.match(text)
    if m:
        rings = [_fast_coords(r.group(1), "POLYGON ring") for r in _RING_RE.finditer(m.group(1))]
        if not rings:
            raise WktError(f"POLYGON with no rings: {text!r}")
        try:
            normalized = [
                Polygon._normalize_ring(rings[0], ccw=True, what="Polygon exterior")
            ] + [
                Polygon._normalize_ring(r, ccw=False, what="Polygon hole")
                for r in rings[1:]
            ]
        except ValueError as exc:
            raise WktError(str(exc)) from exc
        return KIND_POLYGON, normalized
    raise WktError(f"unrecognized WKT: {text[:80]!r}")


def wkt_of_parts(kind: int, rings: list[np.ndarray]) -> str:
    """Serialize batch ring arrays to WKT — same text as :func:`to_wkt`."""
    if kind == KIND_POINT:
        return f"POINT ({_fmt(rings[0][0, 0])} {_fmt(rings[0][0, 1])})"
    if kind == KIND_POLYLINE:
        return f"LINESTRING ({_coords_text(rings[0])})"
    if kind == KIND_POLYGON:
        return f"POLYGON ({', '.join(f'({_coords_text(r)})' for r in rings)})"
    raise TypeError(f"unknown kind code {kind!r}")
