"""Minimum bounding rectangles (MBRs) — scalar and vectorized forms.

MBRs drive the *spatial filtering* phase of every join in the paper: both
the global join (pairing partitions whose MBRs intersect) and the local
join (pairing data items whose MBRs intersect) operate purely on MBRs, with
exact geometry reserved for the refinement step.

Two representations are provided:

* :class:`MBR` — an immutable scalar rectangle, convenient for single
  geometries and index nodes.
* :class:`MBRArray` — a struct-of-arrays batch of rectangles backed by one
  C-contiguous ``(n, 4)`` float64 array, used by the vectorized kernels in
  :mod:`repro.geometry.vectorized` and by the bulk index loaders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["MBR", "MBRArray", "EMPTY_MBR"]


@dataclass(frozen=True, slots=True)
class MBR:
    """An immutable axis-aligned minimum bounding rectangle.

    An MBR with ``xmin > xmax`` is *empty*; :data:`EMPTY_MBR` is the
    canonical empty rectangle (the identity for :meth:`union`).
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    # ------------------------------------------------------------- queries
    @property
    def is_empty(self) -> bool:
        return self.xmin > self.xmax or self.ymin > self.ymax

    @property
    def width(self) -> float:
        return 0.0 if self.is_empty else self.xmax - self.xmin

    @property
    def height(self) -> float:
        return 0.0 if self.is_empty else self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half-perimeter, the R*-tree split quality metric."""
        return self.width + self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def intersects(self, other: "MBR") -> bool:
        """True if the two rectangles share at least a boundary point."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def contains(self, other: "MBR") -> bool:
        """True if *other* lies entirely inside (or on the edge of) self."""
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def contains_point(self, x: float, y: float) -> bool:
        """Inclusive containment test for a point."""
        return (not self.is_empty) and (
            self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax
        )

    # ---------------------------------------------------------- combinators
    def union(self, other: "MBR") -> "MBR":
        """Smallest rectangle covering both operands."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return MBR(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersection(self, other: "MBR") -> "MBR":
        """Overlap rectangle (the empty MBR when disjoint)."""
        if not self.intersects(other):
            return EMPTY_MBR
        return MBR(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
        )

    def expanded(self, margin: float) -> "MBR":
        """Return a copy grown by *margin* on every side."""
        if self.is_empty:
            return self
        return MBR(
            self.xmin - margin, self.ymin - margin, self.xmax + margin, self.ymax + margin
        )

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to cover *other* (R-tree insertion metric)."""
        return self.union(other).area - self.area

    # ------------------------------------------------------------ utilities
    def as_tuple(self) -> tuple[float, float, float, float]:
        """(xmin, ymin, xmax, ymax) tuple form."""
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    @staticmethod
    def of_point(x: float, y: float) -> "MBR":
        return MBR(x, y, x, y)

    @staticmethod
    def of_points(xs: Sequence[float], ys: Sequence[float]) -> "MBR":
        if len(xs) == 0:
            return EMPTY_MBR
        return MBR(min(xs), min(ys), max(xs), max(ys))

    @staticmethod
    def union_all(mbrs: Iterable["MBR"]) -> "MBR":
        out = EMPTY_MBR
        for m in mbrs:
            out = out.union(m)
        return out


EMPTY_MBR = MBR(np.inf, np.inf, -np.inf, -np.inf)


class MBRArray:
    """A batch of MBRs stored as one C-contiguous ``(n, 4)`` float64 array.

    Columns are ``xmin, ymin, xmax, ymax``.  All pairwise operations are
    vectorized; per the HPC guides, no per-rectangle Python loops are used
    on this path.
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        arr = np.ascontiguousarray(data, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 4:
            raise ValueError(f"MBRArray requires an (n, 4) array, got {arr.shape}")
        self.data = arr

    # ---------------------------------------------------------- constructors
    @staticmethod
    def empty() -> "MBRArray":
        return MBRArray(np.empty((0, 4), dtype=np.float64))

    @staticmethod
    def from_mbrs(mbrs: Sequence[MBR]) -> "MBRArray":
        if not mbrs:
            return MBRArray.empty()
        return MBRArray(np.array([m.as_tuple() for m in mbrs], dtype=np.float64))

    @staticmethod
    def from_points(xy: np.ndarray) -> "MBRArray":
        """Degenerate MBRs for an ``(n, 2)`` array of points."""
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected an (n, 2) point array, got {xy.shape}")
        return MBRArray(np.hstack([xy, xy]))

    @staticmethod
    def from_geometries(geoms: Sequence) -> "MBRArray":
        """MBRs of any sequence of objects exposing an ``mbr`` attribute."""
        return MBRArray.from_mbrs([g.mbr for g in geoms])

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return self.data.shape[0]

    def __getitem__(self, i: int) -> MBR:
        row = self.data[i]
        return MBR(row[0], row[1], row[2], row[3])

    def __iter__(self) -> Iterator[MBR]:
        for i in range(len(self)):
            yield self[i]

    @property
    def xmin(self) -> np.ndarray:
        return self.data[:, 0]

    @property
    def ymin(self) -> np.ndarray:
        return self.data[:, 1]

    @property
    def xmax(self) -> np.ndarray:
        return self.data[:, 2]

    @property
    def ymax(self) -> np.ndarray:
        return self.data[:, 3]

    @property
    def centers(self) -> np.ndarray:
        """``(n, 2)`` array of rectangle centers."""
        return (self.data[:, :2] + self.data[:, 2:]) / 2.0

    def areas(self) -> np.ndarray:
        """Vector of rectangle areas (0 for empty rows)."""
        w = np.maximum(self.xmax - self.xmin, 0.0)
        h = np.maximum(self.ymax - self.ymin, 0.0)
        return w * h

    def extent(self) -> MBR:
        """The union of every rectangle in the batch."""
        if len(self) == 0:
            return EMPTY_MBR
        return MBR(
            float(self.xmin.min()),
            float(self.ymin.min()),
            float(self.xmax.max()),
            float(self.ymax.max()),
        )

    # ------------------------------------------------------ vectorized tests
    def intersects_one(self, box: MBR) -> np.ndarray:
        """Boolean mask of rectangles intersecting a single query box."""
        if box.is_empty or len(self) == 0:
            return np.zeros(len(self), dtype=bool)
        return (
            (self.xmin <= box.xmax)
            & (box.xmin <= self.xmax)
            & (self.ymin <= box.ymax)
            & (box.ymin <= self.ymax)
        )

    def contains_points(self, xy: np.ndarray) -> np.ndarray:
        """``(n_boxes, n_points)`` boolean matrix of point containment."""
        xy = np.asarray(xy, dtype=np.float64)
        x = xy[:, 0][None, :]
        y = xy[:, 1][None, :]
        return (
            (self.xmin[:, None] <= x)
            & (x <= self.xmax[:, None])
            & (self.ymin[:, None] <= y)
            & (y <= self.ymax[:, None])
        )

    def pairwise_intersects(self, other: "MBRArray") -> np.ndarray:
        """Row-aligned elementwise test: requires ``len(self) == len(other)``."""
        if len(self) != len(other):
            raise ValueError("pairwise_intersects requires equal-length batches")
        a, b = self.data, other.data
        return (
            (a[:, 0] <= b[:, 2])
            & (b[:, 0] <= a[:, 2])
            & (a[:, 1] <= b[:, 3])
            & (b[:, 1] <= a[:, 3])
        )

    def cross_intersects(self, other: "MBRArray") -> np.ndarray:
        """``(len(self), len(other))`` boolean intersection matrix."""
        a, b = self.data, other.data
        return (
            (a[:, 0][:, None] <= b[:, 2][None, :])
            & (b[:, 0][None, :] <= a[:, 2][:, None])
            & (a[:, 1][:, None] <= b[:, 3][None, :])
            & (b[:, 1][None, :] <= a[:, 3][:, None])
        )

    def union_pairs(self, other: "MBRArray") -> "MBRArray":
        """Row-aligned elementwise unions."""
        if len(self) != len(other):
            raise ValueError("union_pairs requires equal-length batches")
        out = np.empty_like(self.data)
        np.minimum(self.data[:, :2], other.data[:, :2], out=out[:, :2])
        np.maximum(self.data[:, 2:], other.data[:, 2:], out=out[:, 2:])
        return MBRArray(out)

    def take(self, idx: np.ndarray) -> "MBRArray":
        """Subset of rows selected by an index array."""
        return MBRArray(self.data[np.asarray(idx)])
