"""Columnar structure-of-arrays geometry batches.

:class:`GeometryBatch` is the columnar counterpart of a ``list`` of
:class:`~repro.geometry.primitives.Geometry` objects.  One batch of *n*
geometries is five flat NumPy arrays instead of *n* Python objects:

* ``kinds`` — ``(n,)`` int8 kind codes (:data:`KIND_POINT`,
  :data:`KIND_POLYLINE`, :data:`KIND_POLYGON`),
* ``coords`` — one packed C-contiguous ``(P, 2)`` float64 buffer holding
  every coordinate of every geometry, ring after ring,
* ``ring_offsets`` — ``(R + 1,)`` int64 offsets into ``coords`` framing
  the *R* rings (a point or polyline is a single "ring"),
* ``geom_rings`` — ``(n + 1,)`` int64 offsets into ``ring_offsets``
  framing each geometry's rings (ring 0 is a polygon's exterior),
* ``ids`` — ``(n,)`` int64 record ids.

``mbrs`` is an :class:`~repro.geometry.mbr.MBRArray` computed **once**
when the batch is built (at parse time on the loader paths) so every
downstream MBR filter slices it with zero recompute.  The values are
bit-identical to the per-object ``Geometry.mbr`` properties — polygon
rows use the exterior ring only, matching :class:`Polygon`.

The batch is the unit the data plane carries end-to-end: TSV/WKT codecs
produce it, simulated-HDFS blocks hold it, the local/global join kernels
filter on ``mbrs`` and refine straight out of ``coords``, and pickling
(:meth:`__reduce__`) ships the handful of array buffers — not thousands
of objects — through the fork/process execution backend.

For incremental migration the object world stays reachable: ``batch[i]``
lazily materialises (and caches) a single :class:`Geometry`, and the
``from_geometries`` / ``to_geometries`` converters round-trip exactly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from .mbr import MBR, MBRArray
from .primitives import Geometry, Point, PolyLine, Polygon

__all__ = [
    "GeometryBatch",
    "KIND_POINT",
    "KIND_POLYLINE",
    "KIND_POLYGON",
    "KIND_CODES",
    "as_mbr_array",
]

#: Kind codes stored in :attr:`GeometryBatch.kinds`.
KIND_POINT = 0
KIND_POLYLINE = 1
KIND_POLYGON = 2

#: ``Geometry.kind`` string -> kind code.
KIND_CODES = {"point": KIND_POINT, "polyline": KIND_POLYLINE, "polygon": KIND_POLYGON}


def _compute_mbrs(kinds, coords, ring_offsets, geom_rings) -> MBRArray:
    """Per-geometry MBRs from the packed buffer, bit-identical to objects.

    ``Geometry.mbr`` reduces over a single coordinate block per geometry:
    the full block for points/polylines and the *exterior ring only* for
    polygons.  In every case that block is ring 0 of the geometry, so one
    ``reduceat`` over the first-ring spans reproduces the object values
    exactly (min/max never round).
    """
    n = len(kinds)
    if n == 0:
        return MBRArray.empty()
    first_ring = geom_rings[:-1]
    # Reduce per *ring* (ring_offsets is strictly increasing: every ring
    # has >= 1 point), then pick each geometry's ring 0.
    ring_mins = np.minimum.reduceat(coords, ring_offsets[:-1], axis=0)
    ring_maxs = np.maximum.reduceat(coords, ring_offsets[:-1], axis=0)
    data = np.empty((n, 4), dtype=np.float64)
    data[:, 0:2] = ring_mins[first_ring]
    data[:, 2:4] = ring_maxs[first_ring]
    return MBRArray(data)


class GeometryBatch:
    """A structure-of-arrays batch of geometries with cached MBRs."""

    __slots__ = (
        "kinds",
        "coords",
        "ring_offsets",
        "geom_rings",
        "ids",
        "mbrs",
        "_objects",
        "_id_rows",
        "_coords_cols",
    )

    def __init__(
        self,
        kinds: np.ndarray,
        coords: np.ndarray,
        ring_offsets: np.ndarray,
        geom_rings: np.ndarray,
        ids: Optional[np.ndarray] = None,
        mbrs: Optional[MBRArray] = None,
    ):
        self.kinds = np.ascontiguousarray(kinds, dtype=np.int8)
        self.coords = np.ascontiguousarray(coords, dtype=np.float64).reshape(-1, 2)
        self.ring_offsets = np.ascontiguousarray(ring_offsets, dtype=np.int64)
        self.geom_rings = np.ascontiguousarray(geom_rings, dtype=np.int64)
        n = self.kinds.shape[0]
        if self.geom_rings.shape[0] != n + 1:
            raise ValueError(
                f"geom_rings must have {n + 1} entries, got {self.geom_rings.shape[0]}"
            )
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        self.ids = np.ascontiguousarray(ids, dtype=np.int64)
        if self.ids.shape[0] != n:
            raise ValueError(f"ids must have {n} entries, got {self.ids.shape[0]}")
        if mbrs is None:
            mbrs = _compute_mbrs(self.kinds, self.coords, self.ring_offsets, self.geom_rings)
        self.mbrs = mbrs
        self._objects: Optional[list] = None  # lazy Geometry cache
        self._id_rows: Optional[dict] = None  # lazy id -> row map
        self._coords_cols: Optional[tuple] = None  # lazy (x, y) columns

    # ----------------------------------------------------------- constructors
    @staticmethod
    def empty() -> "GeometryBatch":
        return GeometryBatch(
            np.empty(0, dtype=np.int8),
            np.empty((0, 2), dtype=np.float64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        )

    @staticmethod
    def from_parts(
        kinds: Sequence[int],
        rings_per_geom: Sequence[Sequence[np.ndarray]],
        ids: Optional[Sequence[int]] = None,
    ) -> "GeometryBatch":
        """Assemble a batch from per-geometry lists of ring arrays.

        Rings must already be validated/normalized ``(k, 2)`` float64
        arrays (closed and oriented for polygons) — this is the shared
        packing step behind the converters and the batch WKT codec.
        """
        n = len(kinds)
        if n == 0:
            return GeometryBatch.empty()
        ring_sizes = [r.shape[0] for rings in rings_per_geom for r in rings]
        ring_offsets = np.zeros(len(ring_sizes) + 1, dtype=np.int64)
        np.cumsum(ring_sizes, out=ring_offsets[1:])
        geom_rings = np.zeros(n + 1, dtype=np.int64)
        np.cumsum([len(rings) for rings in rings_per_geom], out=geom_rings[1:])
        if ring_offsets[-1]:
            coords = np.concatenate(
                [r for rings in rings_per_geom for r in rings], axis=0
            )
        else:  # pragma: no cover - every geometry kind has >= 1 point
            coords = np.empty((0, 2), dtype=np.float64)
        return GeometryBatch(
            np.asarray(kinds, dtype=np.int8), coords, ring_offsets, geom_rings,
            ids=None if ids is None else np.asarray(ids, dtype=np.int64),
        )

    @staticmethod
    def from_geometries(
        geometries: Iterable[Geometry], ids: Optional[Sequence[int]] = None
    ) -> "GeometryBatch":
        """Pack materialised :class:`Geometry` objects into one batch."""
        kinds: list[int] = []
        rings: list[list[np.ndarray]] = []
        for geom in geometries:
            if isinstance(geom, Point):
                kinds.append(KIND_POINT)
                rings.append([np.array([[geom.x, geom.y]], dtype=np.float64)])
            elif isinstance(geom, PolyLine):
                kinds.append(KIND_POLYLINE)
                rings.append([geom.coords])
            elif isinstance(geom, Polygon):
                kinds.append(KIND_POLYGON)
                rings.append([geom.exterior, *geom.holes])
            else:
                raise TypeError(f"not a geometry: {geom!r}")
        return GeometryBatch.from_parts(kinds, rings, ids=ids)

    @staticmethod
    def from_records(records: Sequence) -> "GeometryBatch":
        """Pack ``SpatialRecord``-like objects (``.rid``/``.geometry``)."""
        return GeometryBatch.from_geometries(
            [r.geometry for r in records], ids=[r.rid for r in records]
        )

    @staticmethod
    def from_points(xy: np.ndarray, ids: Optional[Sequence[int]] = None) -> "GeometryBatch":
        """Fast path: a batch of *n* points from an ``(n, 2)`` array."""
        xy = np.ascontiguousarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected an (n, 2) point array, got {xy.shape}")
        if not np.all(np.isfinite(xy)):
            raise ValueError("Point coordinates must be finite")
        n = xy.shape[0]
        offsets = np.arange(n + 1, dtype=np.int64)
        return GeometryBatch(
            np.zeros(n, dtype=np.int8), xy, offsets, offsets,
            ids=None if ids is None else np.asarray(ids, dtype=np.int64),
            mbrs=MBRArray.from_points(xy),
        )

    @staticmethod
    def coerce(items: Union["GeometryBatch", Sequence]) -> "GeometryBatch":
        """Normalise any accepted input shape into a batch.

        Accepts an existing batch (returned as-is), a sequence of
        geometries, or a sequence of ``SpatialRecord``-like objects.
        """
        if isinstance(items, GeometryBatch):
            return items
        seq = list(items)
        if seq and not isinstance(seq[0], Geometry):
            return GeometryBatch.from_records(seq)
        return GeometryBatch.from_geometries(seq)

    @staticmethod
    def concat(batches: Sequence["GeometryBatch"]) -> "GeometryBatch":
        """Concatenate batches into one (ids are carried through)."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return GeometryBatch.empty()
        if len(batches) == 1:
            return batches[0]
        kinds = np.concatenate([b.kinds for b in batches])
        coords = np.concatenate([b.coords for b in batches], axis=0)
        ids = np.concatenate([b.ids for b in batches])
        ring_parts = []
        geom_parts = [np.zeros(1, dtype=np.int64)]
        coord_base = 0
        ring_base = 0
        for b in batches:
            ring_parts.append(b.ring_offsets[:-1] + coord_base if ring_parts else
                              b.ring_offsets[:-1])
            geom_parts.append(b.geom_rings[1:] + ring_base)
            coord_base += b.coords.shape[0]
            ring_base += b.ring_offsets.shape[0] - 1
        ring_parts.append(np.array([coord_base], dtype=np.int64))
        mbrs = MBRArray(np.concatenate([b.mbrs.data for b in batches], axis=0))
        return GeometryBatch(
            kinds, coords, np.concatenate(ring_parts),
            np.concatenate(geom_parts), ids=ids, mbrs=mbrs,
        )

    # -------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return self.kinds.shape[0]

    def __getitem__(self, i: int) -> Geometry:
        """Lazily materialise (and cache) one geometry object."""
        i = int(i)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        if self._objects is None:
            self._objects = [None] * len(self)
        geom = self._objects[i]
        if geom is None:
            geom = self._build_geometry(i)
            self._objects[i] = geom
        return geom

    def _build_geometry(self, i: int) -> Geometry:
        kind = self.kinds[i]
        r0, r1 = self.geom_rings[i], self.geom_rings[i + 1]
        if kind == KIND_POINT:
            s = self.ring_offsets[r0]
            return Point(self.coords[s, 0], self.coords[s, 1])
        rings = [
            self.coords[self.ring_offsets[r] : self.ring_offsets[r + 1]]
            for r in range(r0, r1)
        ]
        if kind == KIND_POLYLINE:
            return PolyLine(rings[0])
        return Polygon(rings[0], rings[1:])

    geometry = __getitem__

    def rings(self, i: int) -> list[np.ndarray]:
        """Ring coordinate views of geometry *i* (no copy, no objects)."""
        r0, r1 = self.geom_rings[i], self.geom_rings[i + 1]
        return [
            self.coords[self.ring_offsets[r] : self.ring_offsets[r + 1]]
            for r in range(r0, r1)
        ]

    def __iter__(self) -> Iterator[Geometry]:
        for i in range(len(self)):
            yield self[i]

    def __repr__(self) -> str:
        return f"GeometryBatch(<{len(self)} geometries, {self.coords.shape[0]} pts>)"

    def to_geometries(self) -> list[Geometry]:
        """Materialise every geometry (fills the object cache)."""
        return [self[i] for i in range(len(self))]

    def to_records(self) -> list:
        """Materialise ``SpatialRecord`` objects (ids carried through)."""
        from ..data.loaders import SpatialRecord

        return [SpatialRecord(int(self.ids[i]), self[i]) for i in range(len(self))]

    def extent(self) -> MBR:
        """Union of all cached MBRs (no recompute)."""
        return self.mbrs.extent()

    # ----------------------------------------------------------- array slices
    def geom_point_spans(self) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, ends)`` coordinate spans of each geometry in ``coords``."""
        return (
            self.ring_offsets[self.geom_rings[:-1]],
            self.ring_offsets[self.geom_rings[1:]],
        )

    def num_points(self) -> np.ndarray:
        """Vector of per-geometry point counts (holes included)."""
        starts, ends = self.geom_point_spans()
        return ends - starts

    def points_xy(self, rows: np.ndarray) -> np.ndarray:
        """``(k, 2)`` coordinates of the given *point* rows.

        Reads straight from the packed buffer — the vectorized refine
        kernels use this instead of per-object ``.x``/``.y`` access.
        Rows must all be :data:`KIND_POINT` geometries.
        """
        starts = self.ring_offsets[self.geom_rings[np.asarray(rows, dtype=np.int64)]]
        return self.coords[starts]

    def coords_cols(self) -> tuple[np.ndarray, np.ndarray]:
        """Contiguous 1-D copies of the x and y coordinate columns.

        Fancy-indexing a contiguous 1-D array is markedly faster than
        indexing a strided column view of the ``(P, 2)`` buffer; the CSR
        refine kernels gather from these heavily.  Built lazily, cached
        for the batch's lifetime (the buffers are immutable).
        """
        if self._coords_cols is None:
            self._coords_cols = (
                np.ascontiguousarray(self.coords[:, 0]),
                np.ascontiguousarray(self.coords[:, 1]),
            )
        return self._coords_cols

    def serialized_sizes(self) -> np.ndarray:
        """Vector of ``Geometry.serialized_size()`` values (20 + 20·points)."""
        return 20 + self.num_points() * 20

    def record_sizes(self) -> np.ndarray:
        """Vector of ``SpatialRecord.serialized_size()`` values.

        Record size = id text width + 1 (tab) + geometry size, matching
        the scalar accounting in :mod:`repro.data.loaders`.
        """
        id_widths = np.char.str_len(self.ids.astype("U21")).astype(np.int64)
        return id_widths + 1 + self.serialized_sizes()

    def serialized_size(self) -> int:
        """Total record bytes — the hook :func:`repro.hdfs.estimate_size` uses."""
        return int(self.record_sizes().sum())

    # ------------------------------------------------------------- reshaping
    def take(self, rows: np.ndarray) -> "GeometryBatch":
        """New batch holding the selected rows (repacks the buffers)."""
        rows = np.asarray(rows, dtype=np.int64)
        ring_lo = self.geom_rings[rows]
        ring_hi = self.geom_rings[rows + 1]
        ring_counts = ring_hi - ring_lo
        n_rings = int(ring_counts.sum())
        ring_idx = _ranges(ring_lo, ring_counts, n_rings)
        sizes = self.ring_offsets[ring_idx + 1] - self.ring_offsets[ring_idx]
        coord_idx = _ranges(self.ring_offsets[ring_idx], sizes, int(sizes.sum()))
        ring_offsets = np.zeros(n_rings + 1, dtype=np.int64)
        np.cumsum(sizes, out=ring_offsets[1:])
        geom_rings = np.zeros(rows.shape[0] + 1, dtype=np.int64)
        np.cumsum(ring_counts, out=geom_rings[1:])
        return GeometryBatch(
            self.kinds[rows], self.coords[coord_idx], ring_offsets, geom_rings,
            ids=self.ids[rows], mbrs=self.mbrs.take(rows),
        )

    def slice(self, start: int, stop: int) -> "GeometryBatch":
        """Contiguous sub-batch sharing the underlying buffers (no copy)."""
        r0, r1 = self.geom_rings[start], self.geom_rings[stop]
        c0 = self.ring_offsets[r0]
        return GeometryBatch(
            self.kinds[start:stop],
            self.coords[self.ring_offsets[r0] : self.ring_offsets[r1]],
            self.ring_offsets[r0 : r1 + 1] - c0,
            self.geom_rings[start : stop + 1] - r0,
            ids=self.ids[start:stop],
            mbrs=MBRArray(self.mbrs.data[start:stop]),
        )

    def with_positional_ids(self) -> "GeometryBatch":
        """The same batch with ids ``0..n-1`` (self if already positional)."""
        n = len(self)
        if np.array_equal(self.ids, np.arange(n, dtype=np.int64)):
            return self
        return GeometryBatch(
            self.kinds, self.coords, self.ring_offsets, self.geom_rings,
            ids=np.arange(n, dtype=np.int64), mbrs=self.mbrs,
        )

    # ------------------------------------------------------------- id lookups
    def rows_for_ids(self, wanted: Sequence[int]) -> np.ndarray:
        """Row indices of the given record ids (fast path: positional ids)."""
        wanted = np.asarray(wanted, dtype=np.int64)
        n = len(self)
        if np.array_equal(self.ids, np.arange(n, dtype=np.int64)):
            return wanted
        if self._id_rows is None:
            self._id_rows = {int(v): i for i, v in enumerate(self.ids)}
        return np.array([self._id_rows[int(v)] for v in wanted], dtype=np.int64)

    def mbrs_of_ids(self, wanted: Sequence[int]) -> MBRArray:
        """Cached MBRs of the given record ids — no geometry recompute."""
        return self.mbrs.take(self.rows_for_ids(wanted))

    # --------------------------------------------------------------- equality
    def equals(self, other: "GeometryBatch") -> bool:
        """Structural equality of the five arrays (test helper)."""
        return (
            isinstance(other, GeometryBatch)
            and np.array_equal(self.kinds, other.kinds)
            and np.array_equal(self.coords, other.coords)
            and np.array_equal(self.ring_offsets, other.ring_offsets)
            and np.array_equal(self.geom_rings, other.geom_rings)
            and np.array_equal(self.ids, other.ids)
            and np.array_equal(self.mbrs.data, other.mbrs.data)
        )

    # --------------------------------------------------------------- pickling
    def __reduce__(self):
        # Array-based pickling: the process backend ships six NumPy
        # buffers per batch instead of thousands of geometry objects.
        return (
            _rebuild_batch,
            (
                self.kinds,
                self.coords,
                self.ring_offsets,
                self.geom_rings,
                self.ids,
                self.mbrs.data,
            ),
        )

    # -------------------------------------------------------- shared memory
    def attach_shared(self, registry) -> tuple:
        """Publish the six array planes through a shared-memory registry.

        *registry* is duck-typed (``share(arr) -> ref | None``; in
        practice :class:`repro.exec.shm.ShmRegistry`) so the geometry
        package never imports the execution layer.  Each plane becomes
        either a segment reference — workers map the bytes instead of
        unpickling them — or, when the registry declines (tiny or
        object-dtype planes), the array itself.  The registry owns the
        segments and their cleanup; batches built from them are views.
        """
        planes = (
            self.kinds,
            self.coords,
            self.ring_offsets,
            self.geom_rings,
            self.ids,
            self.mbrs.data,
        )
        refs = []
        for plane in planes:
            ref = registry.share(plane)
            refs.append(plane if ref is None else ref)
        return tuple(refs)

    @staticmethod
    def from_shared(refs, attach) -> "GeometryBatch":
        """Rebuild a batch from :meth:`attach_shared` plane refs.

        *attach* resolves one ref to an ndarray (mapping the shared
        segment read-only); plain arrays pass through.  The rebuilt
        batch's planes are zero-copy views over the shared segments —
        immutable by construction, matching the batch contract.
        """
        kinds, coords, ring_offsets, geom_rings, ids, mbr_data = (
            attach(ref) for ref in refs
        )
        return _rebuild_batch(
            kinds, coords, ring_offsets, geom_rings, ids, mbr_data
        )


def _rebuild_batch(kinds, coords, ring_offsets, geom_rings, ids, mbr_data):
    return GeometryBatch(
        kinds, coords, ring_offsets, geom_rings, ids=ids, mbrs=MBRArray(mbr_data)
    )


def _ranges(starts: np.ndarray, counts: np.ndarray, total: int) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for each (start, count) pair."""
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.zeros(counts.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)


def as_mbr_array(source) -> MBRArray:
    """The MBRs of a geometry source — cached for batches, built for lists.

    This is the single choke point the join/partitioning layers use to
    accept either representation: a :class:`GeometryBatch` answers from
    its parse-time cache, an :class:`MBRArray` passes through, and a
    plain geometry sequence falls back to the per-object build.
    """
    if isinstance(source, GeometryBatch):
        return source.mbrs
    if isinstance(source, MBRArray):
        return source
    return MBRArray.from_geometries(source)
