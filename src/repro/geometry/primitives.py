"""Geometry primitives: points, polylines and polygons.

These are deliberately simple value types.  Coordinate storage is always a
C-contiguous ``(n, 2)`` float64 NumPy array so the vectorized kernels in
:mod:`repro.geometry.vectorized` can operate on them without copies, and so
serialized sizes (used by the byte-accounting substrates) are predictable.
"""

from __future__ import annotations

from functools import cached_property
from typing import Sequence, Union

import numpy as np

from .mbr import MBR

__all__ = ["Geometry", "Point", "PolyLine", "Polygon", "GeometryLike"]


def _coerce_coords(coords, *, min_points: int, what: str) -> np.ndarray:
    arr = np.ascontiguousarray(coords, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"{what} requires an (n, 2) coordinate array, got {arr.shape}")
    if arr.shape[0] < min_points:
        raise ValueError(f"{what} requires at least {min_points} points, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{what} coordinates must be finite")
    return arr


class Geometry:
    """Common interface for all geometry types."""

    __slots__ = ()

    kind: str = "geometry"

    @property
    def mbr(self) -> MBR:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def num_points(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def serialized_size(self) -> int:
        """Approximate on-disk text size in bytes (WKT-like).

        The paper's cost story hinges on byte volumes crossing HDFS and
        pipes; every record charged to the substrates uses this estimate
        (~2 coordinates of ~9 text chars each, plus separators/tags).
        """
        return 20 + self.num_points * 20


class Point(Geometry):
    """A 2-D point."""

    __slots__ = ("x", "y")

    kind = "point"

    def __init__(self, x: float, y: float):
        self.x = float(x)
        self.y = float(y)
        if not (np.isfinite(self.x) and np.isfinite(self.y)):
            raise ValueError("Point coordinates must be finite")

    @property
    def mbr(self) -> MBR:
        return MBR(self.x, self.y, self.x, self.y)

    @property
    def num_points(self) -> int:
        return 1

    @property
    def xy(self) -> tuple[float, float]:
        return (self.x, self.y)

    def __repr__(self) -> str:
        return f"Point({self.x}, {self.y})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Point) and self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((Point, self.x, self.y))


class PolyLine(Geometry):
    """An open chain of line segments (the paper's "polyline")."""

    __slots__ = ("coords", "__dict__")

    kind = "polyline"

    def __init__(self, coords):
        self.coords = _coerce_coords(coords, min_points=2, what="PolyLine")

    @cached_property
    def mbr(self) -> MBR:
        return MBR(
            float(self.coords[:, 0].min()),
            float(self.coords[:, 1].min()),
            float(self.coords[:, 0].max()),
            float(self.coords[:, 1].max()),
        )

    @property
    def num_points(self) -> int:
        return self.coords.shape[0]

    @property
    def num_segments(self) -> int:
        return self.coords.shape[0] - 1

    @cached_property
    def length(self) -> float:
        deltas = np.diff(self.coords, axis=0)
        return float(np.sqrt((deltas**2).sum(axis=1)).sum())

    def __repr__(self) -> str:
        return f"PolyLine(<{self.num_points} pts>)"

    def __eq__(self, other) -> bool:
        return isinstance(other, PolyLine) and np.array_equal(self.coords, other.coords)

    def __hash__(self) -> int:
        return hash((PolyLine, self.coords.tobytes()))


class Polygon(Geometry):
    """A polygon with one exterior ring and zero or more interior rings.

    Rings are stored *closed* (first point repeated last).  Constructors
    accept open rings and close them.  Exterior orientation is normalized
    to counter-clockwise, holes to clockwise, matching OGC conventions.
    """

    __slots__ = ("exterior", "holes", "__dict__")

    kind = "polygon"

    def __init__(self, exterior, holes: Sequence = ()):
        self.exterior = self._normalize_ring(exterior, ccw=True, what="Polygon exterior")
        self.holes = tuple(
            self._normalize_ring(h, ccw=False, what="Polygon hole") for h in holes
        )

    @staticmethod
    def _normalize_ring(coords, *, ccw: bool, what: str) -> np.ndarray:
        arr = _coerce_coords(coords, min_points=3, what=what)
        if not np.array_equal(arr[0], arr[-1]):
            arr = np.vstack([arr, arr[:1]])
        if arr.shape[0] < 4:  # closed triangle = 4 rows
            raise ValueError(f"{what} requires at least 3 distinct points")
        if Polygon._signed_area(arr) < 0 and ccw or Polygon._signed_area(arr) > 0 and not ccw:
            arr = np.ascontiguousarray(arr[::-1])
        return arr

    @staticmethod
    def _signed_area(ring: np.ndarray) -> float:
        x, y = ring[:, 0], ring[:, 1]
        return float(np.sum(x[:-1] * y[1:] - x[1:] * y[:-1]) / 2.0)

    @cached_property
    def mbr(self) -> MBR:
        return MBR(
            float(self.exterior[:, 0].min()),
            float(self.exterior[:, 1].min()),
            float(self.exterior[:, 0].max()),
            float(self.exterior[:, 1].max()),
        )

    @property
    def num_points(self) -> int:
        return self.exterior.shape[0] + sum(h.shape[0] for h in self.holes)

    @cached_property
    def area(self) -> float:
        area = abs(self._signed_area(self.exterior))
        for h in self.holes:
            area -= abs(self._signed_area(h))
        return area

    def __repr__(self) -> str:
        return f"Polygon(<{self.exterior.shape[0]} pts, {len(self.holes)} holes>)"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Polygon)
            and np.array_equal(self.exterior, other.exterior)
            and len(self.holes) == len(other.holes)
            and all(np.array_equal(a, b) for a, b in zip(self.holes, other.holes))
        )

    def __hash__(self) -> int:
        return hash(
            (Polygon, self.exterior.tobytes(), tuple(h.tobytes() for h in self.holes))
        )


GeometryLike = Union[Point, PolyLine, Polygon]
