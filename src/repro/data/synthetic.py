"""Synthetic stand-ins for the paper's datasets.

The paper's inputs (Section III.A) are not redistributable at size, so we
generate spatially-realistic equivalents whose *record counts*, *byte
volumes* and *spatial character* match Table 1:

* **taxi** — NYC taxi pickup points: hotspot-clustered (Manhattan-heavy
  Gaussian mixture) over the NYC extent; ~40 B/record like the original
  (6.9 GB / 169.7M records).
* **nycb** — census blocks: a jittered-lattice tessellation of the NYC
  extent (valid, non-overlapping polygons sharing corners); ~490 B/record
  (19 MB / 38,839), i.e. ≈23 vertices per block.
* **edges** — TIGER road edges: short polylines along a street-grid-ish
  pattern with urban clustering; ~330 B/record (23.8 GB / 72.7M).
* **linearwater** — rivers/streams: long meandering polylines;
  ~1,430 B/record (8.4 GB / 5.9M), ≈70 vertices each.

All generators take an explicit seed and are deterministic.
"""

from __future__ import annotations

import numpy as np

from ..geometry.batch import GeometryBatch
from ..geometry.mbr import MBR
from ..geometry.primitives import Point, PolyLine, Polygon

__all__ = [
    "DOMAIN_NYC",
    "DOMAIN_US",
    "taxi_points",
    "census_blocks",
    "tiger_edges",
    "linear_water",
    "hotspot_points",
    "taxi_points_batch",
    "census_blocks_batch",
    "tiger_edges_batch",
    "linear_water_batch",
    "hotspot_points_batch",
]

def _quantize(coords: np.ndarray, decimals: int = 6) -> np.ndarray:
    """Round coordinates to ~0.1 m precision, like real GIS exports.

    Keeps WKT text compact (the byte-accounting substrates see realistic
    record sizes) while round-tripping exactly through repr().
    """
    return np.round(coords, decimals)


#: NYC-ish lon/lat extent shared by taxi and nycb.
DOMAIN_NYC = MBR(-74.27, 40.48, -73.68, 40.95)
#: Continental-US-ish extent shared by edges and linearwater.
DOMAIN_US = MBR(-125.0, 24.0, -66.0, 50.0)

# Taxi pickup hotspots: (lon, lat, sigma, weight) — Manhattan dominates,
# with smaller airport/borough clusters, like the real pickup distribution.
_TAXI_HOTSPOTS = np.array(
    [
        (-73.985, 40.755, 0.018, 0.55),  # Midtown Manhattan
        (-74.005, 40.720, 0.012, 0.18),  # Lower Manhattan
        (-73.955, 40.780, 0.015, 0.12),  # Upper East/West Side
        (-73.870, 40.770, 0.008, 0.06),  # LaGuardia
        (-73.790, 40.645, 0.008, 0.05),  # JFK
        (-73.950, 40.680, 0.030, 0.04),  # Brooklyn
    ]
)


def _taxi_xy(n: int, seed: int) -> np.ndarray:
    if n < 0:
        raise ValueError("n must be >= 0")
    rng = np.random.default_rng(seed)
    weights = _TAXI_HOTSPOTS[:, 3] / _TAXI_HOTSPOTS[:, 3].sum()
    choice = rng.choice(len(_TAXI_HOTSPOTS), size=n, p=weights)
    centers = _TAXI_HOTSPOTS[choice, :2]
    sigma = _TAXI_HOTSPOTS[choice, 2][:, None]
    xy = centers + rng.normal(0, 1, size=(n, 2)) * sigma
    xy[:, 0] = np.clip(xy[:, 0], DOMAIN_NYC.xmin, DOMAIN_NYC.xmax)
    xy[:, 1] = np.clip(xy[:, 1], DOMAIN_NYC.ymin, DOMAIN_NYC.ymax)
    return _quantize(xy)


def taxi_points(n: int, seed: int = 0) -> list[Point]:
    """Generate *n* hotspot-clustered taxi pickup points."""
    return [Point(x, y) for x, y in _taxi_xy(n, seed)]


def taxi_points_batch(n: int, seed: int = 0) -> GeometryBatch:
    """Columnar :func:`taxi_points`: same values, no per-point objects.

    The coordinate array goes straight into the batch's packed buffer, so
    generating Table-1-scale point sets never materializes a ``Point``.
    """
    return GeometryBatch.from_points(_taxi_xy(n, seed))


def _hotspot_xy(
    n: int, seed: int, hot_fraction: float, domain: MBR
) -> np.ndarray:
    if n < 0:
        raise ValueError("n must be >= 0")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    hot = int(n * hot_fraction)
    xs = np.concatenate([
        domain.xmin + rng.random(hot) * domain.width * 0.03,
        domain.xmin + rng.random(n - hot) * domain.width,
    ])
    ys = np.concatenate([
        domain.ymin + rng.random(hot) * domain.height * 0.03,
        domain.ymin + rng.random(n - hot) * domain.height,
    ])
    return _quantize(np.column_stack([xs, ys]))


def hotspot_points(
    n: int = 600,
    seed: int = 33,
    *,
    hot_fraction: float = 0.9,
    domain: MBR = DOMAIN_NYC,
) -> list[Point]:
    """Generate *n* points with a deliberate single hot cell.

    *hot_fraction* of the points land in a 3%×3% square at the domain's
    lower-left corner and the rest are uniform — the worst case for any
    equal-area partitioning, and the golden workload of the skew suite
    (``tests/shuffle/``, ``benchmarks/bench_skew.py``): one partition
    cell holds ~90% of the records while its siblings idle.  Same recipe
    as the ``skewed_points`` fixture in ``tests/trace/``.
    """
    return [Point(float(x), float(y)) for x, y in _hotspot_xy(n, seed, hot_fraction, domain)]


def hotspot_points_batch(
    n: int = 600,
    seed: int = 33,
    *,
    hot_fraction: float = 0.9,
    domain: MBR = DOMAIN_NYC,
) -> GeometryBatch:
    """Columnar :func:`hotspot_points` (identical values and RNG draws)."""
    return GeometryBatch.from_points(_hotspot_xy(n, seed, hot_fraction, domain))


def census_blocks(n: int, seed: int = 0, *, domain: MBR = DOMAIN_NYC) -> list[Polygon]:
    """Generate ≈ *n* census-block polygons tiling *domain*.

    A lattice of jittered corner points is built once; each cell becomes a
    quadrilateral through its four (shared) corners, densified with extra
    vertices along the edges to match the real blocks' ~23-vertex average.
    Sharing corners keeps the tessellation gap- and overlap-free, so the
    taxi-nycb join has the all-points-covered character of the original.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    nx = max(1, int(np.round(np.sqrt(n * domain.width / domain.height))))
    ny = max(1, -(-n // nx))
    xs = np.linspace(domain.xmin, domain.xmax, nx + 1)
    ys = np.linspace(domain.ymin, domain.ymax, ny + 1)
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    # Jitter interior lattice points only (boundary stays put → clean tiling).
    jitter_x = rng.uniform(-0.3, 0.3, gx.shape) * (xs[1] - xs[0] if nx > 0 else 0)
    jitter_y = rng.uniform(-0.3, 0.3, gy.shape) * (ys[1] - ys[0] if ny > 0 else 0)
    jitter_x[0, :] = jitter_x[-1, :] = 0
    jitter_x[:, 0] = jitter_x[:, -1] = 0
    jitter_y[0, :] = jitter_y[-1, :] = 0
    jitter_y[:, 0] = jitter_y[:, -1] = 0
    px = gx + jitter_x
    py = gy + jitter_y

    def densify(a: np.ndarray, b: np.ndarray, k: int) -> list[tuple[float, float]]:
        """Points from a to b exclusive of b, with k extra interior vertices."""
        ts = np.linspace(0.0, 1.0, k + 2)[:-1]
        return [(a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1])) for t in ts]

    out: list[Polygon] = []
    for i in range(nx):
        for j in range(ny):
            if len(out) == n:
                break
            corners = [
                np.array([px[i, j], py[i, j]]),
                np.array([px[i + 1, j], py[i + 1, j]]),
                np.array([px[i + 1, j + 1], py[i + 1, j + 1]]),
                np.array([px[i, j + 1], py[i, j + 1]]),
            ]
            k = int(rng.integers(3, 7))  # extra vertices per edge → ~16-28 total
            ring: list[tuple[float, float]] = []
            for c in range(4):
                ring.extend(densify(corners[c], corners[(c + 1) % 4], k))
            out.append(Polygon(_quantize(np.array(ring))))
    return out


#: Fixed metro-area centres shared by the TIGER-like generators: road
#: edges and hydrography cluster around the same urban regions, which is
#: what makes their join selective in the same way at every scale.
_US_METROS = np.array(
    [
        (-74.0, 40.7), (-87.7, 41.9), (-118.2, 34.1), (-95.4, 29.8),
        (-75.2, 39.9), (-112.1, 33.5), (-98.5, 29.4), (-117.2, 32.7),
        (-96.8, 32.8), (-121.9, 37.3), (-122.3, 47.6), (-80.2, 25.8),
    ]
)


def _metros_for(domain: MBR) -> tuple[np.ndarray, float]:
    """(metro centres, cluster sigma) for a domain.

    The default US domain uses the fixed metro list; any other domain gets
    centres derived *deterministically from the domain alone*, so edges
    and linearwater generated for the same custom domain still cluster in
    the same places (their join stays selective).
    """
    if domain is DOMAIN_US or domain.as_tuple() == DOMAIN_US.as_tuple():
        return _US_METROS, 0.5
    rng = np.random.default_rng(
        abs(hash(tuple(round(v, 9) for v in domain.as_tuple()))) % (2**32)
    )
    n = 6
    centres = np.column_stack(
        [
            rng.uniform(domain.xmin + 0.1 * domain.width,
                        domain.xmax - 0.1 * domain.width, n),
            rng.uniform(domain.ymin + 0.1 * domain.height,
                        domain.ymax - 0.1 * domain.height, n),
        ]
    )
    sigma = 0.08 * min(domain.width, domain.height)
    return centres, sigma


def tiger_edges(n: int, seed: int = 0, *, domain: MBR = DOMAIN_US) -> list[PolyLine]:
    """Generate *n* road-edge polylines: short, axis-biased, city-clustered.

    Feature extents are physically realistic (a few hundred metres to a
    few km, i.e. ~0.003-0.05°) and independent of *n*: scaling the record
    count scales the *density*, exactly like sampling real TIGER data.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    rng = np.random.default_rng(seed)
    metros, sigma = _metros_for(domain)
    metro_of = rng.integers(0, len(metros), n)
    urban = rng.random(n) < 0.8
    starts = np.where(
        urban[:, None],
        metros[metro_of] + rng.normal(0, sigma, (n, 2)),
        np.column_stack(
            [rng.uniform(domain.xmin, domain.xmax, n), rng.uniform(domain.ymin, domain.ymax, n)]
        ),
    )
    out: list[PolyLine] = []
    for i in range(n):
        n_pts = int(rng.integers(2, 6)) + (int(rng.integers(16, 51)) if rng.random() < 0.35 else 0)
        # Street-grid bias: mostly axis-aligned steps with small wobble.
        steps = rng.normal(0, 0.00011, size=(n_pts - 1, 2))
        axis = rng.integers(0, 2)
        steps[:, axis] += rng.choice([-1, 1]) * 0.00028
        coords = np.vstack([starts[i], starts[i] + np.cumsum(steps, axis=0)])
        out.append(PolyLine(_quantize(coords)))
    return out


def linear_water(n: int, seed: int = 0, *, domain: MBR = DOMAIN_US) -> list[PolyLine]:
    """Generate *n* hydrography polylines: meandering stream segments.

    Like real TIGER linearwater features these are vertex-dense but
    physically small (a few km, ~0.02-0.08°), partially concentrated
    around the same metro regions as the road edges so the two datasets
    intersect where real roads cross real water.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    rng = np.random.default_rng(seed)
    metros, sigma = _metros_for(domain)
    out: list[PolyLine] = []
    for _ in range(n):
        n_pts = int(rng.integers(40, 101))  # ≈70 vertices on average
        if rng.random() < 0.6:
            metro = metros[rng.integers(0, len(metros))]
            start = metro + rng.normal(0, sigma, 2)
        else:
            start = np.array(
                [rng.uniform(domain.xmin, domain.xmax), rng.uniform(domain.ymin, domain.ymax)]
            )
        heading = rng.uniform(0, 2 * np.pi)
        # Meander: heading random-walks while the stream flows forward.
        headings = heading + np.cumsum(rng.normal(0, 0.25, n_pts - 1))
        step = rng.uniform(0.00007, 0.00022)
        deltas = step * np.column_stack([np.cos(headings), np.sin(headings)])
        coords = np.vstack([start, start + np.cumsum(deltas, axis=0)])
        out.append(PolyLine(_quantize(coords)))
    return out


def census_blocks_batch(
    n: int, seed: int = 0, *, domain: MBR = DOMAIN_NYC
) -> GeometryBatch:
    """Columnar :func:`census_blocks` (identical values and RNG draws)."""
    return GeometryBatch.from_geometries(census_blocks(n, seed, domain=domain))


def tiger_edges_batch(
    n: int, seed: int = 0, *, domain: MBR = DOMAIN_US
) -> GeometryBatch:
    """Columnar :func:`tiger_edges` (identical values and RNG draws)."""
    return GeometryBatch.from_geometries(tiger_edges(n, seed, domain=domain))


def linear_water_batch(
    n: int, seed: int = 0, *, domain: MBR = DOMAIN_US
) -> GeometryBatch:
    """Columnar :func:`linear_water` (identical values and RNG draws)."""
    return GeometryBatch.from_geometries(linear_water(n, seed, domain=domain))
