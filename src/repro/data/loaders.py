"""Text codecs for dataset records (TSV lines of ``id<TAB>WKT``).

All three systems ingest text files; HadoopGIS additionally keeps records
as text *throughout* (Hadoop Streaming).  These helpers are the shared
read/write path, plus the record wrapper used inside the join pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..geometry.batch import GeometryBatch
from ..geometry.primitives import Geometry
from ..geometry.wkt import from_wkt, to_wkt, wkt_of_parts, wkt_parts

__all__ = [
    "SpatialRecord",
    "to_tsv_line",
    "from_tsv_line",
    "encode_dataset",
    "decode_lines",
    "save_tsv",
    "load_tsv",
    "encode_batch",
    "decode_lines_batch",
    "save_tsv_batch",
    "load_tsv_batch",
]


@dataclass(frozen=True)
class SpatialRecord:
    """A dataset record: stable id plus geometry."""

    rid: int
    geometry: Geometry

    def serialized_size(self) -> int:
        """On-disk text size: id field, tab, geometry text."""
        return len(str(self.rid)) + 1 + self.geometry.serialized_size()


def to_tsv_line(record: SpatialRecord) -> str:
    """Serialize a record to its on-disk TSV form."""
    return f"{record.rid}\t{to_wkt(record.geometry)}"


def from_tsv_line(line: str) -> SpatialRecord:
    """Parse an ``id<TAB>WKT`` line.

    Raises ValueError (or WktError) on malformed lines — surfaced when a
    corrupt record flows through a streaming pipeline.
    """
    rid_text, _, wkt = line.partition("\t")
    if not wkt:
        raise ValueError(f"malformed TSV record (no tab): {line[:60]!r}")
    return SpatialRecord(rid=int(rid_text), geometry=from_wkt(wkt))


def encode_dataset(geometries: Sequence[Geometry]) -> Iterator[str]:
    """TSV lines for a whole dataset, ids assigned by position."""
    for rid, geom in enumerate(geometries):
        yield to_tsv_line(SpatialRecord(rid, geom))


def decode_lines(lines: Iterable[str]) -> Iterator[SpatialRecord]:
    """Parse many TSV lines."""
    for line in lines:
        yield from_tsv_line(line)


def save_tsv(path, geometries: Sequence[Geometry]) -> int:
    """Write a dataset to a real TSV file on disk; returns bytes written."""
    total = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in encode_dataset(geometries):
            fh.write(line)
            fh.write("\n")
            total += len(line) + 1
    return total


def load_tsv(path) -> list[SpatialRecord]:
    """Read a TSV dataset from disk (skipping blank lines)."""
    out = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if line:
                out.append(from_tsv_line(line))
    return out


# --------------------------------------------------------------------------
# Columnar codec: the same ``id<TAB>WKT`` text, but encoded from / decoded
# into a GeometryBatch without materialising per-record Python objects.


def encode_batch(batch: GeometryBatch) -> Iterator[str]:
    """TSV lines for a batch — byte-identical to the scalar encoder."""
    ids = batch.ids
    kinds = batch.kinds
    for i in range(len(batch)):
        yield f"{ids[i]}\t{wkt_of_parts(kinds[i], batch.rings(i))}"


def decode_lines_batch(lines: Iterable[str]) -> GeometryBatch:
    """Parse many TSV lines straight into a batch.

    The batch arrays (coordinates, normalized rings, parse-time MBRs)
    are bit-identical to packing the records :func:`decode_lines` would
    produce; malformed lines raise the same errors.
    """
    ids: list[int] = []
    kinds: list[int] = []
    rings: list[list] = []
    for line in lines:
        rid_text, _, wkt = line.partition("\t")
        if not wkt:
            raise ValueError(f"malformed TSV record (no tab): {line[:60]!r}")
        kind, geom_rings = wkt_parts(wkt)
        ids.append(int(rid_text))
        kinds.append(kind)
        rings.append(geom_rings)
    return GeometryBatch.from_parts(kinds, rings, ids=ids)


def save_tsv_batch(path, batch: GeometryBatch) -> int:
    """Write a batch to a real TSV file on disk; returns bytes written."""
    total = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in encode_batch(batch):
            fh.write(line)
            fh.write("\n")
            total += len(line) + 1
    return total


def load_tsv_batch(path) -> GeometryBatch:
    """Read a TSV dataset from disk as one batch (skipping blank lines)."""
    with open(path, "r", encoding="utf-8") as fh:
        return decode_lines_batch(
            line for line in (raw.rstrip("\n") for raw in fh) if line
        )
