"""Dataset statistics and join-selectivity estimation.

Tools for characterizing a spatial workload the way the extrapolation
machinery sees it: extents, per-record size distributions, spatial-skew
measures, and the analytic MBR-join candidate estimator whose scaling law
drives the paper-scale extrapolation (``repro.experiments.extrapolate``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry.batch import KIND_CODES, GeometryBatch, as_mbr_array
from ..geometry.mbr import MBR, MBRArray
from ..geometry.primitives import Geometry
from ..hdfs.sizeof import estimate_size

#: kind-code -> kind-name lookup (inverse of :data:`KIND_CODES`)
_KIND_NAMES = {code: name for name, code in KIND_CODES.items()}


__all__ = [
    "DatasetStats",
    "describe",
    "density_grid",
    "skew_ratio",
    "estimate_join_candidates",
]


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of a geometry collection."""

    count: int
    extent: MBR
    total_bytes: int
    mean_bytes: float
    mean_points: float
    mean_width: float
    mean_height: float
    kinds: tuple[tuple[str, int], ...]  # (kind, count), most common first

    def render(self) -> str:
        """Human-readable one-block summary."""
        kinds = ", ".join(f"{k}×{c}" for k, c in self.kinds)
        return (
            f"records: {self.count:,} ({kinds})\n"
            f"extent:  ({self.extent.xmin:.4f}, {self.extent.ymin:.4f}) – "
            f"({self.extent.xmax:.4f}, {self.extent.ymax:.4f})\n"
            f"bytes:   {self.total_bytes:,} total, {self.mean_bytes:.1f}/record\n"
            f"shape:   {self.mean_points:.1f} vertices/record, mean MBR "
            f"{self.mean_width:.5f} × {self.mean_height:.5f}"
        )


def describe(geometries: "Sequence[Geometry] | GeometryBatch") -> DatasetStats:
    """Compute :class:`DatasetStats` for a geometry collection.

    A :class:`GeometryBatch` is summarized entirely from its arrays —
    cached MBRs, packed point counts, kind codes — without materializing
    a single geometry object; the numbers are identical either way.
    """
    if not len(geometries):
        return DatasetStats(0, MBR(np.inf, np.inf, -np.inf, -np.inf), 0, 0.0,
                            0.0, 0.0, 0.0, ())
    boxes = as_mbr_array(geometries)
    if isinstance(geometries, GeometryBatch):
        sizes = geometries.serialized_sizes()
        num_points = geometries.num_points()
        codes, code_counts = np.unique(geometries.kinds, return_counts=True)
        kind_counts = {
            _KIND_NAMES[int(code)]: int(n) for code, n in zip(codes, code_counts)
        }
    else:
        sizes = np.array([estimate_size(g) for g in geometries])
        num_points = np.array([g.num_points for g in geometries])
        kind_counts = {}
        for g in geometries:
            kind_counts[g.kind] = kind_counts.get(g.kind, 0) + 1
    widths = boxes.xmax - boxes.xmin
    heights = boxes.ymax - boxes.ymin
    return DatasetStats(
        count=len(geometries),
        extent=boxes.extent(),
        total_bytes=int(sizes.sum()),
        mean_bytes=float(np.mean(sizes)),
        mean_points=float(np.mean(num_points)),
        mean_width=float(widths.mean()),
        mean_height=float(heights.mean()),
        kinds=tuple(sorted(kind_counts.items(), key=lambda kv: -kv[1])),
    )


def density_grid(
    geometries: "Sequence[Geometry] | GeometryBatch", nx: int = 16, ny: int = 16,
    extent: MBR | None = None,
) -> np.ndarray:
    """``(ny, nx)`` counts of geometry centers per grid cell.

    The raw material for skew analysis (and a quick text heat map of a
    workload's hotspots).
    """
    if not len(geometries):
        return np.zeros((ny, nx), dtype=np.int64)
    boxes = as_mbr_array(geometries)
    extent = extent or boxes.extent()
    centers = boxes.centers
    w = extent.width or 1.0
    h = extent.height or 1.0
    cols = np.clip(((centers[:, 0] - extent.xmin) / w * nx).astype(int), 0, nx - 1)
    rows = np.clip(((centers[:, 1] - extent.ymin) / h * ny).astype(int), 0, ny - 1)
    grid = np.zeros((ny, nx), dtype=np.int64)
    np.add.at(grid, (rows, cols), 1)
    return grid


def skew_ratio(
    geometries: "Sequence[Geometry] | GeometryBatch", nx: int = 16, ny: int = 16
) -> float:
    """Max/mean cell density: 1 = perfectly uniform, large = hotspots.

    The taxi dataset's Manhattan concentration shows up here — and is why
    the paper's sampling-based partitioners exist at all.
    """
    grid = density_grid(geometries, nx, ny)
    mean = grid.mean()
    return float(grid.max() / mean) if mean else 0.0


def estimate_join_candidates(
    left: "Sequence[Geometry] | GeometryBatch",
    right: "Sequence[Geometry] | GeometryBatch",
    margin: float = 0.0,
) -> float:
    """Analytic expected MBR-join candidate count (uniform-placement model).

    ``E ≈ n_l · n_r · (w̄_l + w̄_r + 2m)(h̄_l + h̄_r + 2m) / Area`` over the
    union extent — the same model whose *ratio across scales* extrapolates
    the pair-driven counters.  Clustered data exceeds the estimate (the
    model is a lower-bound sanity check, not a predictor of skew).
    """
    if not len(left) or not len(right):
        return 0.0
    lstats = describe(left)
    rstats = describe(right)
    universe = lstats.extent.union(rstats.extent)
    area = universe.area
    if area <= 0:
        return float(len(left) * len(right))
    p = (
        (lstats.mean_width + rstats.mean_width + 2 * margin)
        * (lstats.mean_height + rstats.mean_height + 2 * margin)
        / area
    )
    return float(len(left) * len(right) * min(p, 1.0))
