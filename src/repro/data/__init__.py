"""Synthetic datasets, the Table-1 catalog, and text codecs."""

from .catalog import CATALOG, TABLE1_ORDER, DatasetSpec, GeneratedDataset, dataset, table1_rows
from .loaders import (
    SpatialRecord,
    decode_lines,
    encode_dataset,
    from_tsv_line,
    load_tsv,
    save_tsv,
    to_tsv_line,
)
from .stats import (
    DatasetStats,
    describe,
    density_grid,
    estimate_join_candidates,
    skew_ratio,
)
from .synthetic import (
    DOMAIN_NYC,
    DOMAIN_US,
    census_blocks,
    linear_water,
    taxi_points,
    tiger_edges,
)

__all__ = [
    "CATALOG",
    "TABLE1_ORDER",
    "DatasetSpec",
    "GeneratedDataset",
    "dataset",
    "table1_rows",
    "SpatialRecord",
    "to_tsv_line",
    "from_tsv_line",
    "encode_dataset",
    "decode_lines",
    "save_tsv",
    "load_tsv",
    "DOMAIN_NYC",
    "DOMAIN_US",
    "taxi_points",
    "census_blocks",
    "tiger_edges",
    "linear_water",
    "DatasetStats",
    "describe",
    "density_grid",
    "skew_ratio",
    "estimate_join_candidates",
]
