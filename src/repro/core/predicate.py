"""Join predicates: intersects and ε-within-distance.

The paper's experiments use the *intersects* predicate; its introduction
motivates a *distance* join ("matching taxi pickup/drop-off locations
with road segments through point-to-nearest-polyline distance
computation").  A :class:`JoinPredicate` carries both cases through the
whole stack: the MBR filter expands candidate boxes by the predicate's
margin, and refinement evaluates the exact test via the geometry engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry.engine import GeometryEngine
from ..geometry.mbr import MBR
from ..geometry.primitives import Geometry

__all__ = ["JoinPredicate", "INTERSECTS", "within_distance", "resolve_predicate"]


@dataclass(frozen=True)
class JoinPredicate:
    """What "a matches b" means in a spatial join."""

    kind: str  # "intersects" | "within_distance"
    distance: float = 0.0

    def __post_init__(self):
        if self.kind not in ("intersects", "within_distance"):
            raise ValueError(f"unknown predicate kind {self.kind!r}")
        if self.distance < 0:
            raise ValueError("distance must be >= 0")
        if self.kind == "intersects" and self.distance:
            raise ValueError("intersects takes no distance")

    @property
    def filter_margin(self) -> float:
        """How far the MBR filter must expand candidate boxes."""
        return self.distance

    def expand(self, box: MBR) -> MBR:
        """Grow *box* by the filter margin (identity for intersects)."""
        return box.expanded(self.distance) if self.distance else box

    def evaluate(self, engine: GeometryEngine, a: Geometry, b: Geometry) -> bool:
        """Exact refinement test via the engine (counts ops there)."""
        if self.kind == "intersects":
            return engine.intersects(a, b)
        return engine.within_distance(a, b, self.distance)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == "intersects":
            return "intersects"
        return f"within_distance({self.distance})"


#: The default predicate of all the paper's experiments.
INTERSECTS = JoinPredicate("intersects")


def within_distance(distance: float) -> JoinPredicate:
    """An ε-distance join predicate."""
    return JoinPredicate("within_distance", float(distance))


def resolve_predicate(spec) -> JoinPredicate:
    """Coerce *spec* into a :class:`JoinPredicate`.

    Accepts a :class:`JoinPredicate` (returned unchanged) or a string
    spelling: ``"intersects"``, or ``"within_distance:<d>"`` with a
    non-negative distance after the colon (``"within_distance:500"``).
    """
    if isinstance(spec, JoinPredicate):
        return spec
    if isinstance(spec, str):
        name, _, arg = spec.partition(":")
        name = name.strip()
        if name == "intersects":
            if arg:
                raise ValueError("intersects takes no parameter")
            return INTERSECTS
        if name == "within_distance":
            if not arg:
                raise ValueError(
                    "within_distance needs a distance: 'within_distance:<d>'"
                )
            try:
                dist = float(arg)
            except ValueError:
                raise ValueError(
                    f"bad within_distance distance {arg!r}"
                ) from None
            return within_distance(dist)
        raise ValueError(f"unknown predicate {spec!r}")
    raise TypeError(
        f"predicate must be a JoinPredicate or str, got {type(spec).__name__}"
    )
