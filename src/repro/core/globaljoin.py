"""Global join: pairing up partitions of the two input datasets.

The global join is "a distributed extension to spatial filtering"
(Section II.B): given the MBRs of dataset A's partitions and dataset B's
partitions, find every pair that spatially intersects.  The partition
lists are small, so each system runs this serially — SpatialHadoop on the
job master inside ``getSplits``, HadoopGIS inside a local program — while
SpatialSpark sidesteps it entirely by sharing one partitioning and
hash-joining on partition ids.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry.batch import GeometryBatch, as_mbr_array
from ..geometry.mbr import MBRArray
from ..index.strtree import STRtree, sync_tree_join
from ..metrics import Counters

__all__ = [
    "pair_partitions_nested",
    "pair_partitions_sweep",
    "pair_partitions_indexed",
    "pair_partitions",
]

#: All strategies return a lexsorted ``(n, 2)`` int64 ndarray of
#: (a_index, b_index) partition pairs — the columnar pair plane.
_EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)


def _expand(a: MBRArray, margin: float) -> MBRArray:
    if not margin:
        return a
    return MBRArray(a.data + np.array([-1.0, -1.0, 1.0, 1.0]) * margin)


def pair_partitions_nested(
    a: "MBRArray | GeometryBatch", b: "MBRArray | GeometryBatch", counters: Optional[Counters] = None,
    *, margin: float = 0.0,
) -> np.ndarray:
    """Brute-force all-pairs MBR test (fine for small partition counts).

    *margin* expands the left boxes — distance joins must pair partitions
    whose contents could be within the predicate's distance.
    """
    counters = counters if counters is not None else Counters()
    a, b = as_mbr_array(a), as_mbr_array(b)
    if len(a) == 0 or len(b) == 0:
        return _EMPTY_PAIRS
    a = _expand(a, margin)
    counters.add("geom.mbr_tests", len(a) * len(b))
    counters.add("cpu.ops", len(a) * len(b))
    mat = a.cross_intersects(b)
    ii, jj = np.nonzero(mat)  # row-major: already lexsorted
    return np.stack([ii, jj], axis=1).astype(np.int64, copy=False)


def pair_partitions_sweep(
    a: "MBRArray | GeometryBatch", b: "MBRArray | GeometryBatch", counters: Optional[Counters] = None,
    *, margin: float = 0.0,
) -> np.ndarray:
    """Plane-sweep pairing — "any in-memory spatial join technique" works."""
    counters = counters if counters is not None else Counters()
    a, b = as_mbr_array(a), as_mbr_array(b)
    if len(a) == 0 or len(b) == 0:
        return _EMPTY_PAIRS
    a = _expand(a, margin)
    ao = np.argsort(a.xmin, kind="stable")
    bo = np.argsort(b.xmin, kind="stable")
    out: list[tuple[int, int]] = []
    ai = bi = 0
    active_a: list[int] = []
    active_b: list[int] = []
    cpu_ops = 0  # accumulated locally, charged once below
    while ai < len(ao) or bi < len(bo):
        take_a = bi >= len(bo) or (ai < len(ao) and a.xmin[ao[ai]] <= b.xmin[bo[bi]])
        if take_a:
            i = int(ao[ai])
            ai += 1
            x = a.xmin[i]
            active_b = [j for j in active_b if b.xmax[j] >= x]
            cpu_ops += len(active_b) + 1
            for j in active_b:
                if a.ymin[i] <= b.ymax[j] and b.ymin[j] <= a.ymax[i]:
                    out.append((i, j))
            active_a.append(i)
        else:
            j = int(bo[bi])
            bi += 1
            x = b.xmin[j]
            active_a = [i for i in active_a if a.xmax[i] >= x]
            cpu_ops += len(active_a) + 1
            for i in active_a:
                if a.ymin[i] <= b.ymax[j] and b.ymin[j] <= a.ymax[i]:
                    out.append((i, j))
            active_b.append(j)
    counters.add("cpu.ops", cpu_ops)
    if not out:
        return _EMPTY_PAIRS
    return np.array(sorted(out), dtype=np.int64)


def pair_partitions_indexed(
    a: "MBRArray | GeometryBatch", b: "MBRArray | GeometryBatch", counters: Optional[Counters] = None,
    *, margin: float = 0.0,
) -> np.ndarray:
    """Synchronized STR-tree traversal pairing."""
    counters = counters if counters is not None else Counters()
    a, b = as_mbr_array(a), as_mbr_array(b)
    if len(a) == 0 or len(b) == 0:
        return _EMPTY_PAIRS
    a = _expand(a, margin)
    ta = STRtree(a, counters=counters)
    tb = STRtree(b, counters=counters)
    return sync_tree_join(ta, tb, counters)  # already lexsorted


_STRATEGIES = {
    "nested": pair_partitions_nested,
    "sweep": pair_partitions_sweep,
    "indexed": pair_partitions_indexed,
}


def pair_partitions(
    strategy: str, a: "MBRArray | GeometryBatch", b: "MBRArray | GeometryBatch", counters: Optional[Counters] = None,
    *, margin: float = 0.0,
) -> np.ndarray:
    """Dispatch a pairing strategy by name."""
    try:
        fn = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown pairing strategy {strategy!r}; options: {sorted(_STRATEGIES)}"
        ) from None
    return fn(a, b, counters, margin=margin)
