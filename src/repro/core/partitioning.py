"""Sampling-based spatial partitioners (the SATO-style family).

All three systems create partitions from a *sample* of the data
(Section II.A).  A partitioner turns sampled MBRs into a set of partition
boxes; data items are then assigned to partitions either by

* **multi-assignment** — every partition the item's MBR intersects
  (HadoopGIS and SpatialSpark share one partitioning across both join
  sides; duplicate result pairs are removed later), or
* **best-assignment** — the single partition with maximal overlap
  (SpatialHadoop assigns once and *expands* partition MBRs to cover their
  contents, pairing the expanded MBRs in its global join).

Multi-assignment is only correct if the partition boxes tile the whole
universe (no gaps where two items could meet unseen); tiling partitioners
(grid, BSP) expand their boundary cells to the universe box.  Non-tiling
partitioners (STR, Hilbert) are restricted to best-assignment use.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..geometry.batch import GeometryBatch, as_mbr_array
from ..geometry.mbr import MBR, MBRArray
from ..index.hilbert import hilbert_sort_order
from ..index.quadtree import QuadTree
from ..index.strtree import STRtree, str_packing_order
from ..metrics import Counters

__all__ = [
    "SpatialPartitioning",
    "Partitioner",
    "GridPartitioner",
    "BSPPartitioner",
    "QuadTreePartitioner",
    "STRPartitioner",
    "HilbertPartitioner",
    "make_partitioner",
]

#: How far boundary tiles are stretched so the tiling covers any stray
#: geometry outside the sampled extent.
_UNIVERSE_MARGIN = 1e9


@dataclass
class SpatialPartitioning:
    """A set of partition boxes plus assignment machinery."""

    boxes: MBRArray
    #: True when the boxes tile the plane without gaps (multi-assignment safe).
    tiles: bool
    counters: Counters = field(default_factory=Counters)
    _index: Optional[STRtree] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.boxes)

    @property
    def index(self) -> STRtree:
        """STR tree over the partition boxes (built on demand)."""
        if self._index is None:
            self._index = STRtree(self.boxes, counters=self.counters)
        return self._index

    # ------------------------------------------------------------ assignment
    def assign_multi(self, box: MBR) -> np.ndarray:
        """All partition ids whose boxes intersect *box* (multi-assignment)."""
        if not self.tiles:
            raise ValueError(
                "multi-assignment requires a tiling partitioning (grid/BSP)"
            )
        hits = self.index.query(box)
        if hits.size == 0:
            raise ValueError(f"partitioning does not cover {box}")
        return np.sort(hits)

    def assign_best(self, box: MBR) -> int:
        """The partition with maximal overlap area (ties → lowest id).

        Falls back to the nearest box center for items outside every box —
        safe here because best-assignment users re-expand partition MBRs
        to cover their contents afterwards.
        """
        hits = self.index.query(box)
        if hits.size == 0:
            centers = self.boxes.centers
            cx, cy = box.center
            d2 = (centers[:, 0] - cx) ** 2 + (centers[:, 1] - cy) ** 2
            return int(np.argmin(d2))
        if hits.size == 1:
            return int(hits[0])
        best, best_overlap = int(hits[0]), -1.0
        for pid in np.sort(hits):
            overlap = self.boxes[int(pid)].intersection(box).area
            if overlap > best_overlap:
                best, best_overlap = int(pid), overlap
        return best

    def assign_points(self, xy: np.ndarray) -> np.ndarray:
        """Vectorized single-assignment of points (a point meets one tile).

        Points exactly on shared tile edges go to the lowest-id tile, which
        both sides of a join apply consistently.
        """
        xy = np.asarray(xy, dtype=np.float64)
        out = np.full(xy.shape[0], -1, dtype=np.int64)
        # Few boxes (hundreds at most): loop boxes, vectorize over points.
        data = self.boxes.data
        for pid in range(len(self.boxes)):
            need = out == -1
            if not need.any():
                break
            b = data[pid]
            inside = (
                need
                & (b[0] <= xy[:, 0])
                & (xy[:, 0] <= b[2])
                & (b[1] <= xy[:, 1])
                & (xy[:, 1] <= b[3])
            )
            out[inside] = pid
        if (out == -1).any():
            if self.tiles:
                raise ValueError("tiling does not cover all points")
            centers = self.boxes.centers
            for i in np.flatnonzero(out == -1):
                d2 = (centers[:, 0] - xy[i, 0]) ** 2 + (centers[:, 1] - xy[i, 1]) ** 2
                out[i] = int(np.argmin(d2))
        return out

    def expanded_to_contents(self, content_boxes: list[MBR]) -> "SpatialPartitioning":
        """Partition MBRs recomputed as the union of assigned contents.

        *content_boxes[pid]* is the union MBR of partition *pid*'s items
        (empty MBR for empty partitions).  SpatialHadoop stores these in
        its ``_master`` file and pairs them in the global join.
        """
        if len(content_boxes) != len(self.boxes):
            raise ValueError("need one content MBR per partition")
        rows = np.array(
            [
                (b.xmin, b.ymin, b.xmax, b.ymax)
                for b in content_boxes
            ],
            dtype=np.float64,
        ).reshape(len(content_boxes), 4)
        return SpatialPartitioning(boxes=MBRArray(rows), tiles=False)


class Partitioner(ABC):
    """Builds a :class:`SpatialPartitioning` from sampled MBRs."""

    name: str = "abstract"
    produces_tiles: bool = False

    @abstractmethod
    def partition(
        self, sample: "MBRArray | GeometryBatch", n_partitions: int, universe: MBR
    ) -> SpatialPartitioning:
        """Create ≈ *n_partitions* partitions covering *universe*."""

    @staticmethod
    def _validate(
        sample: "MBRArray | GeometryBatch", n_partitions: int, universe: MBR
    ) -> MBRArray:
        """Check arguments and coerce the sample to its MBRs.

        Samples may arrive as an :class:`MBRArray`, a
        :class:`~repro.geometry.batch.GeometryBatch` (cached MBRs, no
        recompute), or a plain geometry sequence.
        """
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if universe.is_empty:
            raise ValueError("universe extent must be non-empty")
        return as_mbr_array(sample)


def _stretch_boundary(tiles: np.ndarray, universe: MBR) -> np.ndarray:
    """Expand tiles touching the universe border far outward (gap safety)."""
    out = tiles.copy()
    eps = 1e-9 * max(universe.width, universe.height, 1.0)
    lo = universe.xmin + eps
    out[out[:, 0] <= lo, 0] = universe.xmin - _UNIVERSE_MARGIN
    out[out[:, 1] <= universe.ymin + eps, 1] = universe.ymin - _UNIVERSE_MARGIN
    out[out[:, 2] >= universe.xmax - eps, 2] = universe.xmax + _UNIVERSE_MARGIN
    out[out[:, 3] >= universe.ymax - eps, 3] = universe.ymax + _UNIVERSE_MARGIN
    return out


class GridPartitioner(Partitioner):
    """Uniform grid over the universe (SpatialHadoop's default scheme)."""

    name = "grid"
    produces_tiles = True

    def partition(
        self, sample: MBRArray, n_partitions: int, universe: MBR
    ) -> SpatialPartitioning:
        """Uniform nx×ny tiles over the universe."""
        sample = self._validate(sample, n_partitions, universe)
        nx = max(1, int(np.round(np.sqrt(n_partitions))))
        ny = max(1, -(-n_partitions // nx))
        xs = np.linspace(universe.xmin, universe.xmax, nx + 1)
        ys = np.linspace(universe.ymin, universe.ymax, ny + 1)
        rows = []
        for j in range(ny):
            for i in range(nx):
                rows.append((xs[i], ys[j], xs[i + 1], ys[j + 1]))
        tiles = _stretch_boundary(np.array(rows, dtype=np.float64), universe)
        return SpatialPartitioning(boxes=MBRArray(tiles), tiles=True)


class BSPPartitioner(Partitioner):
    """Binary space partitioning by sample medians (balanced tiles).

    Recursively splits the widest axis at the median of the sample centers
    until the target leaf count is reached — the balance-oriented strategy
    of the SATO framework.
    """

    name = "bsp"
    produces_tiles = True

    def partition(
        self, sample: MBRArray, n_partitions: int, universe: MBR
    ) -> SpatialPartitioning:
        """Median-split tiles balancing the sample across leaves."""
        sample = self._validate(sample, n_partitions, universe)
        centers = sample.centers if len(sample) else np.empty((0, 2))
        rows: list[tuple[float, float, float, float]] = []

        def split(box: tuple[float, float, float, float], pts: np.ndarray, want: int):
            if want <= 1 or pts.shape[0] <= 1:
                rows.append(box)
                return
            xmin, ymin, xmax, ymax = box
            horizontal = (xmax - xmin) >= (ymax - ymin)
            axis = 0 if horizontal else 1
            cut = float(np.median(pts[:, axis])) if pts.size else (
                (xmin + xmax) / 2 if horizontal else (ymin + ymax) / 2
            )
            lo_limit, hi_limit = (xmin, xmax) if horizontal else (ymin, ymax)
            # Degenerate medians (all-equal coordinates) fall back to midpoint.
            if not (lo_limit < cut < hi_limit):
                cut = (lo_limit + hi_limit) / 2.0
            left_want = want // 2
            right_want = want - left_want
            mask = pts[:, axis] <= cut
            if horizontal:
                split((xmin, ymin, cut, ymax), pts[mask], left_want)
                split((cut, ymin, xmax, ymax), pts[~mask], right_want)
            else:
                split((xmin, ymin, xmax, cut), pts[mask], left_want)
                split((xmin, cut, xmax, ymax), pts[~mask], right_want)

        split(universe.as_tuple(), centers, n_partitions)
        tiles = _stretch_boundary(np.array(rows, dtype=np.float64), universe)
        return SpatialPartitioning(boxes=MBRArray(tiles), tiles=True)


class QuadTreePartitioner(Partitioner):
    """Quadtree partitions: adaptive tiles that split where samples are dense.

    The SATO framework's density-adaptive tiling: leaves of a quadtree
    built over the sample tile the universe exactly, so multi-assignment
    is safe, and skewed regions get proportionally more (smaller) tiles.
    """

    name = "quadtree"
    produces_tiles = True

    def partition(
        self, sample: MBRArray, n_partitions: int, universe: MBR
    ) -> SpatialPartitioning:
        """Quadtree-leaf tiles, denser where the sample is dense."""
        sample = self._validate(sample, n_partitions, universe)
        # Leaf capacity sized so ~n_partitions leaves emerge; quadtrees
        # split in fours, so the exact count varies with the skew.
        capacity = max(1, len(sample) // max(n_partitions, 1))
        qt = QuadTree(universe, node_capacity=capacity, max_depth=16)
        qt.insert_many(list(sample))
        rows = np.array([b.as_tuple() for b in qt.leaf_boxes()], dtype=np.float64)
        tiles = _stretch_boundary(rows, universe)
        return SpatialPartitioning(boxes=MBRArray(tiles), tiles=True)


class STRPartitioner(Partitioner):
    """Sort-tile-recursive partitions: leaf-run MBRs of the STR order.

    Produces tight, possibly-overlapping, non-tiling boxes — SpatialHadoop's
    R-tree-style partitioning; best-assignment only.
    """

    name = "str"
    produces_tiles = False

    def partition(
        self, sample: MBRArray, n_partitions: int, universe: MBR
    ) -> SpatialPartitioning:
        """Tight leaf-run MBRs of the sample's STR packing order."""
        sample = self._validate(sample, n_partitions, universe)
        if len(sample) == 0:
            return SpatialPartitioning(
                boxes=MBRArray(np.array([universe.as_tuple()])), tiles=False
            )
        capacity = max(1, -(-len(sample) // n_partitions))
        order = str_packing_order(sample.data, capacity)
        rows = []
        for lo in range(0, len(sample), capacity):
            chunk = sample.data[order[lo : lo + capacity]]
            rows.append(
                (
                    chunk[:, 0].min(),
                    chunk[:, 1].min(),
                    chunk[:, 2].max(),
                    chunk[:, 3].max(),
                )
            )
        return SpatialPartitioning(boxes=MBRArray(np.array(rows)), tiles=False)


class HilbertPartitioner(Partitioner):
    """Hilbert-curve partitions: equal runs along the curve (non-tiling)."""

    name = "hilbert"
    produces_tiles = False

    def partition(
        self, sample: MBRArray, n_partitions: int, universe: MBR
    ) -> SpatialPartitioning:
        """MBRs of equal-length runs along the Hilbert curve."""
        sample = self._validate(sample, n_partitions, universe)
        if len(sample) == 0:
            return SpatialPartitioning(
                boxes=MBRArray(np.array([universe.as_tuple()])), tiles=False
            )
        order = hilbert_sort_order(sample.centers, universe)
        run = max(1, -(-len(sample) // n_partitions))
        rows = []
        for lo in range(0, len(sample), run):
            chunk = sample.data[order[lo : lo + run]]
            rows.append(
                (
                    chunk[:, 0].min(),
                    chunk[:, 1].min(),
                    chunk[:, 2].max(),
                    chunk[:, 3].max(),
                )
            )
        return SpatialPartitioning(boxes=MBRArray(np.array(rows)), tiles=False)


_PARTITIONERS = {
    "grid": GridPartitioner,
    "bsp": BSPPartitioner,
    "quadtree": QuadTreePartitioner,
    "str": STRPartitioner,
    "hilbert": HilbertPartitioner,
}


def make_partitioner(name: str) -> Partitioner:
    """Instantiate a partitioner by name."""
    try:
        return _PARTITIONERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown partitioner {name!r}; options: {sorted(_PARTITIONERS)}"
        ) from None
