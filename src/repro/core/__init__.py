"""The paper's core contribution: the generalized spatial-join framework.

* :mod:`repro.core.framework` — the three-stage model of Fig. 1.
* :mod:`repro.core.partitioning` — sampling-based partitioners.
* :mod:`repro.core.globaljoin` — partition-pairing strategies.
* :mod:`repro.core.localjoin` — per-partition join algorithms + refinement.
"""

from .framework import (
    DataAccessModel,
    RunsOn,
    Stage,
    StageStep,
    StageTrace,
    compare_traces,
)
from .globaljoin import (
    pair_partitions,
    pair_partitions_indexed,
    pair_partitions_nested,
    pair_partitions_sweep,
)
from .localjoin import (
    LOCAL_JOIN_ALGORITHMS,
    indexed_nested_loop_join,
    local_join,
    plane_sweep_join,
    refine_candidates,
    sync_rtree_join,
)
from .predicate import INTERSECTS, JoinPredicate, within_distance
from .partitioning import (
    BSPPartitioner,
    GridPartitioner,
    HilbertPartitioner,
    Partitioner,
    QuadTreePartitioner,
    SpatialPartitioning,
    STRPartitioner,
    make_partitioner,
)

__all__ = [
    "Stage",
    "RunsOn",
    "DataAccessModel",
    "StageStep",
    "StageTrace",
    "compare_traces",
    "SpatialPartitioning",
    "Partitioner",
    "GridPartitioner",
    "BSPPartitioner",
    "QuadTreePartitioner",
    "STRPartitioner",
    "HilbertPartitioner",
    "make_partitioner",
    "pair_partitions",
    "pair_partitions_nested",
    "pair_partitions_sweep",
    "pair_partitions_indexed",
    "local_join",
    "LOCAL_JOIN_ALGORITHMS",
    "indexed_nested_loop_join",
    "plane_sweep_join",
    "sync_rtree_join",
    "refine_candidates",
    "JoinPredicate",
    "INTERSECTS",
    "within_distance",
]
