"""The paper's generalized framework (Fig. 1) as a data model.

The contribution of Section II is a *three-stage decomposition* —
preprocessing, global join, local join — plus a mapping of each system's
components onto the stages: where each step runs (mapper / reducer / job
master / executor / serial local program) and which steps touch HDFS.
This module encodes that mapping so the Fig.-1 reproduction is a checked
artifact, not prose: each system implements ``stage_trace()`` returning a
:class:`StageTrace`, and tests assert the properties the paper derives
from the figure (e.g. SpatialSpark touches HDFS only when reading input).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

__all__ = ["Stage", "RunsOn", "StageStep", "StageTrace", "DataAccessModel"]


class Stage(Enum):
    """The three stages of a distributed spatial join."""

    PREPROCESSING = "preprocessing"
    GLOBAL_JOIN = "global join"
    LOCAL_JOIN = "local join"


class RunsOn(Enum):
    """Where a step executes."""

    MAPPER = "mapper"
    REDUCER = "reducer"
    MASTER = "job master"
    EXECUTOR = "executor"
    LOCAL_PROGRAM = "serial local program"


class DataAccessModel(Enum):
    """The paper's three data access models (Section II)."""

    STREAMING = "streaming"  # HadoopGIS: sequential, partition-blind
    RANDOM = "random"  # SpatialHadoop: block-aware random access
    FUNCTIONAL = "functional"  # SpatialSpark: data-parallel / RDD


@dataclass(frozen=True)
class StageStep:
    """One component of a system's pipeline."""

    name: str
    stage: Stage
    runs_on: RunsOn
    reads_hdfs: bool = False
    writes_hdfs: bool = False
    description: str = ""


@dataclass
class StageTrace:
    """A system's full pipeline in framework terms."""

    system: str
    access_model: DataAccessModel
    geometry_library: str  # "jts" or "geos"
    platform: str  # "hadoop" or "spark"
    steps: list[StageStep] = field(default_factory=list)

    def steps_in(self, stage: Stage) -> list[StageStep]:
        """The steps belonging to one framework stage."""
        return [s for s in self.steps if s.stage == stage]

    @property
    def hdfs_touch_points(self) -> int:
        """Number of HDFS interactions (read + write counts separately)."""
        return sum(int(s.reads_hdfs) + int(s.writes_hdfs) for s in self.steps)

    @property
    def serial_steps(self) -> list[StageStep]:
        return [
            s
            for s in self.steps
            if s.runs_on in (RunsOn.MASTER, RunsOn.LOCAL_PROGRAM)
        ]

    def render(self) -> str:
        """Human-readable rendering (the Fig.-1 reproduction output)."""
        lines = [
            f"system: {self.system}",
            f"  platform: {self.platform}   access model: {self.access_model.value}"
            f"   geometry: {self.geometry_library}",
        ]
        for stage in Stage:
            steps = self.steps_in(stage)
            if not steps:
                continue
            lines.append(f"  [{stage.value}]")
            for s in steps:
                io = []
                if s.reads_hdfs:
                    io.append("reads HDFS")
                if s.writes_hdfs:
                    io.append("writes HDFS")
                io_text = f"  ({', '.join(io)})" if io else ""
                lines.append(f"    - {s.name} @ {s.runs_on.value}{io_text}")
                if s.description:
                    lines.append(f"        {s.description}")
        lines.append(f"  HDFS touch points: {self.hdfs_touch_points}")
        return "\n".join(lines)


def compare_traces(traces: Iterable[StageTrace]) -> str:
    """Side-by-side summary table of several systems' traces."""
    rows = [
        (
            t.system,
            t.platform,
            t.access_model.value,
            t.geometry_library,
            str(len(t.steps)),
            str(len(t.serial_steps)),
            str(t.hdfs_touch_points),
        )
        for t in traces
    ]
    header = ("system", "platform", "access", "geometry", "steps", "serial", "hdfs_io")
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*header)]
    lines += [fmt.format(*r) for r in rows]
    return "\n".join(lines)
