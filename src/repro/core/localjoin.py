"""Local (per-partition) spatial join algorithms.

All three systems end with the same shape of work (Section II.C): inside a
partition pair, MBR-filter item pairs with some algorithm, then refine
with exact geometry.  The algorithm differs per system:

* :func:`indexed_nested_loop_join` — build an index over one side, probe
  with the other (SpatialSpark's natural choice, also HadoopGIS's).
* :func:`plane_sweep_join` — sort both sides by xmin and sweep
  (SpatialHadoop's default).
* :func:`sync_rtree_join` — build R-trees on both sides and do a
  synchronized traversal (SpatialHadoop's alternative).

All return the identical refined pair set; they differ only in filter
cost, which the counters capture.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..geometry.batch import (
    KIND_POINT,
    KIND_POLYGON,
    KIND_POLYLINE,
    GeometryBatch,
    _ranges,
    as_mbr_array,
)
from ..geometry.engine import GeometryEngine
from ..geometry.mbr import MBRArray
from ..geometry.primitives import Geometry, Point, Polygon, PolyLine
from ..index.strtree import STRtree, sync_tree_join
from ..metrics import Counters
from .predicate import INTERSECTS, JoinPredicate

__all__ = [
    "refine_candidates",
    "indexed_nested_loop_join",
    "plane_sweep_join",
    "sync_rtree_join",
    "LOCAL_JOIN_ALGORITHMS",
    "local_join",
]

#: Either representation of one join side: a list of geometry objects or
#: a columnar :class:`~repro.geometry.batch.GeometryBatch`.  Every join
#: below produces bit-identical pairs and counters for both.
GeometrySource = Union[Sequence[Geometry], GeometryBatch]


_EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)


def _lexsorted(pairs: np.ndarray) -> np.ndarray:
    """Sort an ``(n, 2)`` pair array lexicographically (i, then j)."""
    if pairs.shape[0] < 2:
        return pairs
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


def _refine_batch(
    left: GeometryBatch,
    right: GeometryBatch,
    candidates: np.ndarray,
    engine: GeometryEngine,
    predicate: JoinPredicate,
) -> np.ndarray:
    """Columnar refine over CSR kernels: one engine call for all pairs.

    All point-vs-polygon (or point-vs-polyline) candidates are handed to
    the engine's CSR batch method in a single call — the fast engines
    evaluate them in one chunked pass over the packed coords buffer; the
    scalar engines fall back to the historical per-group dispatch inside
    the same method, so counter charges match the object path exactly
    either way.  Survivors come back as a lexsorted ``(n, 2)`` int64
    ndarray (the columnar pair plane).
    """
    target = KIND_POLYGON if predicate.kind == "intersects" else KIND_POLYLINE
    grouped = (left.kinds[candidates[:, 0]] == KIND_POINT) & (
        right.kinds[candidates[:, 1]] == target
    )
    bp = candidates[grouped]
    # Stable sort by right id: groups keep candidate-encounter order inside.
    bp = bp[np.argsort(bp[:, 1], kind="stable")]
    if bp.shape[0]:
        xy = left.points_xy(bp[:, 0])
        if predicate.kind == "intersects":
            mask = engine.points_in_polygons(right, bp[:, 1], xy)
        else:
            mask = engine.points_within_distances(
                right, bp[:, 1], xy, predicate.distance
            )
        kept = bp[mask]
    else:
        kept = bp
    rest = candidates[~grouped]
    if rest.shape[0]:
        rmask = np.fromiter(
            (
                predicate.evaluate(engine, left[int(i)], right[int(j)])
                for i, j in rest
            ),
            dtype=bool,
            count=rest.shape[0],
        )
        kept = np.concatenate([kept, rest[rmask]])
    return _lexsorted(kept)


def refine_candidates(
    left: GeometrySource,
    right: GeometrySource,
    candidates: "Sequence[tuple[int, int]] | np.ndarray",
    engine: GeometryEngine,
    predicate: JoinPredicate = INTERSECTS,
) -> "list[tuple[int, int]] | np.ndarray":
    """Exact-geometry refinement of MBR-filter candidates.

    Point-vs-polygon intersect candidates and point-vs-polyline distance
    candidates refine through the engine's batch methods (one CSR kernel
    pass on the fast engines); all other kind pairs refine pairwise.
    When both sides are :class:`GeometryBatch` the survivors stay
    columnar — a lexsorted ``(n, 2)`` int64 ndarray; object-list inputs
    keep the documented sorted list-of-tuples form.  Both planes hold
    identical pairs and counter totals.
    """
    if isinstance(left, GeometryBatch) and isinstance(right, GeometryBatch):
        if len(candidates) == 0:
            return _EMPTY_PAIRS
        cand = np.asarray(candidates, dtype=np.int64).reshape(-1, 2)
        return _refine_batch(left, right, cand, engine, predicate)
    if len(candidates) == 0:
        return []
    survivors: list[tuple[int, int]] = []
    batched: dict[int, list[int]] = {}
    rest: list[tuple[int, int]] = []
    batch_right = (
        Polygon if predicate.kind == "intersects" else PolyLine
    )
    for i, j in candidates:
        if isinstance(left[i], Point) and isinstance(right[j], batch_right):
            batched.setdefault(j, []).append(i)
        else:
            rest.append((i, j))
    for j, point_ids in batched.items():
        xy = np.array([(left[i].x, left[i].y) for i in point_ids])
        if predicate.kind == "intersects":
            mask = engine.points_in_polygon(right[j], xy)
        else:
            mask = engine.points_within_distance(right[j], xy, predicate.distance)
        survivors.extend((i, j) for i, keep in zip(point_ids, mask) if keep)
    for i, j in rest:
        if predicate.evaluate(engine, left[i], right[j]):
            survivors.append((i, j))
    survivors.sort()
    return survivors


def indexed_nested_loop_join(
    left: GeometrySource,
    right: GeometrySource,
    engine: GeometryEngine,
    *,
    counters: Optional[Counters] = None,
    leaf_capacity: int = 16,
    predicate: JoinPredicate = INTERSECTS,
    info: Optional[dict] = None,
) -> "list[tuple[int, int]] | np.ndarray":
    """Index the right side with an STR tree, probe with every left MBR.

    For distance predicates the probe boxes are expanded by the margin,
    keeping the filter a superset of the exact matches.  Both input
    planes probe all boxes in one level-synchronous ``query_many``
    traversal — bit-identical hits and traversal accounting to one tree
    walk per geometry, without the per-geometry Python loop.
    """
    counters = counters if counters is not None else Counters()
    if not len(left) or not len(right):
        return _EMPTY_PAIRS if isinstance(left, GeometryBatch) and isinstance(
            right, GeometryBatch) else []
    tree = STRtree(as_mbr_array(right), counters=counters,
                   leaf_capacity=leaf_capacity)
    probes = as_mbr_array(left)
    if predicate.filter_margin:
        probes = MBRArray(
            probes.data
            + np.array([-1.0, -1.0, 1.0, 1.0]) * predicate.filter_margin
        )
    hits = tree.query_many(probes)
    counts = np.fromiter((h.size for h in hits), dtype=np.int64, count=len(hits))
    qi = np.repeat(np.arange(len(hits), dtype=np.int64), counts)
    cj = np.concatenate(hits) if hits else np.empty(0, dtype=np.int64)
    if isinstance(left, GeometryBatch) and isinstance(right, GeometryBatch):
        candidates: "np.ndarray | list[tuple[int, int]]" = np.stack(
            [qi, cj], axis=1)
    else:
        candidates = list(zip(qi.tolist(), cj.tolist()))
    counters.add("join.candidates", len(candidates))
    if info is not None:
        info["candidates"] = len(candidates)
    return refine_candidates(left, right, candidates, engine, predicate)


def plane_sweep_join(
    left: GeometrySource,
    right: GeometrySource,
    engine: GeometryEngine,
    *,
    counters: Optional[Counters] = None,
    predicate: JoinPredicate = INTERSECTS,
    info: Optional[dict] = None,
) -> "list[tuple[int, int]] | np.ndarray":
    """Classic plane-sweep MBR join along the x axis.

    Distance predicates sweep with the left boxes expanded by the margin.
    Batch inputs replace the Python event loop with a sort +
    ``searchsorted`` stripe sweep producing the same candidate multiset
    and the same ``join.sweep_ops`` total (derived in closed form from
    the event-loop semantics); object inputs keep the reference loop,
    accumulating ``sweep_ops`` locally and charging once per call.
    """
    counters = counters if counters is not None else Counters()
    if not len(left) or not len(right):
        return _EMPTY_PAIRS if isinstance(left, GeometryBatch) and isinstance(
            right, GeometryBatch) else []
    lb = as_mbr_array(left).data
    if predicate.filter_margin:
        lb = lb + np.array([-1.0, -1.0, 1.0, 1.0]) * predicate.filter_margin
    rb = as_mbr_array(right).data
    n, m = lb.shape[0], rb.shape[0]
    counters.add("sort.ops", n * max(np.log2(max(n, 2)), 1) + m * max(np.log2(max(m, 2)), 1))
    if isinstance(left, GeometryBatch) and isinstance(right, GeometryBatch):
        candidates: "np.ndarray | list[tuple[int, int]]" = (
            _sweep_candidates_batch(lb, rb, counters)
        )
    else:
        candidates = _sweep_candidates_object(lb, rb, counters)
    counters.add("join.candidates", len(candidates))
    if info is not None:
        info["candidates"] = len(candidates)
    return refine_candidates(left, right, candidates, engine, predicate)


def _sweep_candidates_object(
    lb: np.ndarray, rb: np.ndarray, counters: Counters
) -> list[tuple[int, int]]:
    """Reference event-loop sweep (object plane): defines the semantics.

    Events are the xmin of every box, merged left-first on ties; each
    event prunes the opposite active list and pairs with its survivors.
    ``join.sweep_ops`` — one per event plus the surviving active-list
    length — is accumulated locally and charged once at the end.
    """
    lorder = np.argsort(lb[:, 0], kind="stable")
    rorder = np.argsort(rb[:, 0], kind="stable")
    n, m = len(lorder), len(rorder)
    candidates: list[tuple[int, int]] = []
    li = ri = 0
    active_left: list[int] = []  # indices into lb, still open
    active_right: list[int] = []
    sweep_ops = 0
    while li < n or ri < m:
        take_left = ri >= m or (li < n and lb[lorder[li], 0] <= rb[rorder[ri], 0])
        if take_left:
            i = int(lorder[li])
            li += 1
            x = lb[i, 0]
            active_right = [j for j in active_right if rb[j, 2] >= x]
            sweep_ops += len(active_right) + 1
            for j in active_right:
                if lb[i, 1] <= rb[j, 3] and rb[j, 1] <= lb[i, 3]:
                    candidates.append((i, j))
            active_left.append(i)
        else:
            j = int(rorder[ri])
            ri += 1
            x = rb[j, 0]
            active_left = [i for i in active_left if lb[i, 2] >= x]
            sweep_ops += len(active_left) + 1
            for i in active_left:
                if lb[i, 1] <= rb[j, 3] and rb[j, 1] <= lb[i, 3]:
                    candidates.append((i, j))
            active_right.append(j)
    counters.add("join.sweep_ops", sweep_ops)
    return candidates


def _sweep_candidates_batch(
    lb: np.ndarray, rb: np.ndarray, counters: Counters
) -> np.ndarray:
    """Vectorized stripe sweep: same pairs and counters, no event loop.

    The event loop emits (i, j) exactly once, at whichever event opens
    second: either ``lb0_i <= rb0_j <= lb2_i`` (right event j finds i
    active) or ``rb0_j < lb0_i <= rb2_j`` (left event i finds j active)
    — a disjoint, complete split of x-overlap.  Both cases enumerate via
    ``searchsorted`` against the sorted xmin arrays.  ``join.sweep_ops``
    totals follow the same decomposition in closed form: each event
    charges one plus the size of the pruned opposite active list, which
    is a difference of two ``searchsorted`` ranks (boxes opened before
    the event minus boxes already closed).
    """
    n, m = lb.shape[0], rb.shape[0]
    l0, l2 = lb[:, 0], lb[:, 2]
    r0, r2 = rb[:, 0], rb[:, 2]
    l0s, l2s = np.sort(l0), np.sort(l2)
    r0s, r2s = np.sort(r0), np.sort(r2)
    sweep_ops = n + m
    # Left event at x = l0_i sees {j : r0_j < l0_i <= r2_j} active.
    sweep_ops += int(
        np.searchsorted(r0s, l0, side="left").sum()
        - np.searchsorted(r2s, l0, side="left").sum()
    )
    # Right event at x = r0_j sees {i : l0_i <= r0_j <= l2_i} active
    # (ties open left-first, so l0_i == r0_j counts as active).
    sweep_ops += int(
        np.searchsorted(l0s, r0, side="right").sum()
        - np.searchsorted(l2s, r0, side="left").sum()
    )
    counters.add("join.sweep_ops", sweep_ops)
    # Case 1: emitted at right event j — lb0_i <= rb0_j <= lb2_i.
    rorder = np.argsort(r0, kind="stable")
    r0_sorted = r0[rorder]
    lo = np.searchsorted(r0_sorted, l0, side="left")
    hi = np.searchsorted(r0_sorted, l2, side="right")
    c1 = hi - lo
    ii1 = np.repeat(np.arange(n, dtype=np.int64), c1)
    jj1 = rorder[_ranges(lo, c1, int(c1.sum()))]
    # Case 2: emitted at left event i — rb0_j < lb0_i <= rb2_j.
    lorder = np.argsort(l0, kind="stable")
    l0_sorted = l0[lorder]
    lo2 = np.searchsorted(l0_sorted, r0, side="right")
    hi2 = np.searchsorted(l0_sorted, r2, side="right")
    c2 = hi2 - lo2
    jj2 = np.repeat(np.arange(m, dtype=np.int64), c2)
    ii2 = lorder[_ranges(lo2, c2, int(c2.sum()))]
    ii = np.concatenate([ii1, ii2])
    jj = np.concatenate([jj1, jj2])
    keep = (lb[ii, 1] <= rb[jj, 3]) & (rb[jj, 1] <= lb[ii, 3])
    return np.stack([ii[keep], jj[keep]], axis=1)


def sync_rtree_join(
    left: GeometrySource,
    right: GeometrySource,
    engine: GeometryEngine,
    *,
    counters: Optional[Counters] = None,
    leaf_capacity: int = 16,
    predicate: JoinPredicate = INTERSECTS,
    info: Optional[dict] = None,
) -> "list[tuple[int, int]] | np.ndarray":
    """Synchronized traversal of STR trees built over both sides.

    Distance predicates build the left tree over margin-expanded boxes.
    The traversal itself is the iterative level-synchronous frontier
    expansion in :func:`~repro.index.strtree.sync_tree_join`; its
    ndarray candidates flow straight into the columnar refine for batch
    inputs and convert to tuples for the object plane.
    """
    counters = counters if counters is not None else Counters()
    if not len(left) or not len(right):
        return _EMPTY_PAIRS if isinstance(left, GeometryBatch) and isinstance(
            right, GeometryBatch) else []
    left_boxes = as_mbr_array(left)
    if predicate.filter_margin:
        left_boxes = MBRArray(
            left_boxes.data
            + np.array([-1.0, -1.0, 1.0, 1.0]) * predicate.filter_margin
        )
    ltree = STRtree(left_boxes, counters=counters, leaf_capacity=leaf_capacity)
    rtree = STRtree(as_mbr_array(right), counters=counters,
                    leaf_capacity=leaf_capacity)
    candidates: "np.ndarray | list[tuple[int, int]]" = sync_tree_join(
        ltree, rtree, counters)
    counters.add("join.candidates", len(candidates))
    if info is not None:
        info["candidates"] = len(candidates)
    if not (isinstance(left, GeometryBatch) and isinstance(right, GeometryBatch)):
        candidates = list(map(tuple, candidates.tolist()))
    return refine_candidates(left, right, candidates, engine, predicate)


LOCAL_JOIN_ALGORITHMS = {
    "indexed_nested_loop": indexed_nested_loop_join,
    "plane_sweep": plane_sweep_join,
    "sync_rtree": sync_rtree_join,
}


def local_join(
    algorithm: str,
    left: GeometrySource,
    right: GeometrySource,
    engine: GeometryEngine,
    *,
    counters: Optional[Counters] = None,
    predicate: JoinPredicate = INTERSECTS,
    info: Optional[dict] = None,
) -> list[tuple[int, int]]:
    """Dispatch a local join by algorithm name.

    *info*, when given, receives algorithm-side observations that are
    awkward to recover from the shared ledger under parallel backends
    (counter adds redirect to per-task sinks, so snapshot/diff around
    the call reads zero there): currently ``info["candidates"]``, the
    MBR-filter candidate count before refinement.
    """
    try:
        fn = LOCAL_JOIN_ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown local join algorithm {algorithm!r}; "
            f"options: {sorted(LOCAL_JOIN_ALGORITHMS)}"
        ) from None
    return fn(left, right, engine, counters=counters, predicate=predicate,
              info=info)
