"""Local (per-partition) spatial join algorithms.

All three systems end with the same shape of work (Section II.C): inside a
partition pair, MBR-filter item pairs with some algorithm, then refine
with exact geometry.  The algorithm differs per system:

* :func:`indexed_nested_loop_join` — build an index over one side, probe
  with the other (SpatialSpark's natural choice, also HadoopGIS's).
* :func:`plane_sweep_join` — sort both sides by xmin and sweep
  (SpatialHadoop's default).
* :func:`sync_rtree_join` — build R-trees on both sides and do a
  synchronized traversal (SpatialHadoop's alternative).

All return the identical refined pair set; they differ only in filter
cost, which the counters capture.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..geometry.batch import (
    KIND_POINT,
    KIND_POLYGON,
    KIND_POLYLINE,
    GeometryBatch,
    as_mbr_array,
)
from ..geometry.engine import GeometryEngine
from ..geometry.mbr import MBRArray
from ..geometry.primitives import Geometry, Point, Polygon, PolyLine
from ..index.strtree import STRtree, sync_tree_join
from ..metrics import Counters
from .predicate import INTERSECTS, JoinPredicate

__all__ = [
    "refine_candidates",
    "indexed_nested_loop_join",
    "plane_sweep_join",
    "sync_rtree_join",
    "LOCAL_JOIN_ALGORITHMS",
    "local_join",
    "GeometrySource",
]

#: Either representation of one join side: a list of geometry objects or
#: a columnar :class:`~repro.geometry.batch.GeometryBatch`.  Every join
#: below produces bit-identical pairs and counters for both.
GeometrySource = Union[Sequence[Geometry], GeometryBatch]


def _refine_batch(
    left: GeometryBatch,
    right: GeometryBatch,
    candidates: np.ndarray,
    engine: GeometryEngine,
    predicate: JoinPredicate,
) -> list[tuple[int, int]]:
    """Columnar refine: same grouping as the object path, no object scans.

    The point coordinates of each group come straight out of the packed
    buffer (``points_xy``); only the right-side polygon/polyline of each
    group is materialised (lazily, cached) for the exact kernel.  Group
    sizes — and therefore every engine counter charge — match the object
    path exactly; survivors are sorted, so ordering differences between
    the grouping strategies never surface.
    """
    survivors: list[tuple[int, int]] = []
    target = KIND_POLYGON if predicate.kind == "intersects" else KIND_POLYLINE
    grouped = (left.kinds[candidates[:, 0]] == KIND_POINT) & (
        right.kinds[candidates[:, 1]] == target
    )
    bp = candidates[grouped]
    # Stable sort by right id: groups keep candidate-encounter order inside.
    bp = bp[np.argsort(bp[:, 1], kind="stable")]
    group_js, group_starts = np.unique(bp[:, 1], return_index=True)
    group_ends = np.append(group_starts[1:], bp.shape[0])
    for j, s, e in zip(group_js, group_starts, group_ends):
        point_rows = bp[s:e, 0]
        xy = left.points_xy(point_rows)
        if predicate.kind == "intersects":
            mask = engine.points_in_polygon(right[j], xy)
        else:
            mask = engine.points_within_distance(right[j], xy, predicate.distance)
        j = int(j)
        survivors.extend((int(i), j) for i, keep in zip(point_rows, mask) if keep)
    for i, j in candidates[~grouped]:
        if predicate.evaluate(engine, left[int(i)], right[int(j)]):
            survivors.append((int(i), int(j)))
    survivors.sort()
    return survivors


def refine_candidates(
    left: GeometrySource,
    right: GeometrySource,
    candidates: "Sequence[tuple[int, int]] | np.ndarray",
    engine: GeometryEngine,
    predicate: JoinPredicate = INTERSECTS,
) -> list[tuple[int, int]]:
    """Exact-geometry refinement of MBR-filter candidates.

    Point-vs-polygon intersect candidates and point-vs-polyline distance
    candidates are grouped per right-side geometry and refined with one
    batched kernel call (the vectorized fast path); all other kind pairs
    refine pairwise.  Output is sorted for determinism.  When both sides
    are :class:`GeometryBatch`, grouping and point gathers are columnar.
    """
    if len(candidates) == 0:
        return []
    if isinstance(left, GeometryBatch) and isinstance(right, GeometryBatch):
        cand = np.asarray(candidates, dtype=np.int64).reshape(-1, 2)
        return _refine_batch(left, right, cand, engine, predicate)
    survivors: list[tuple[int, int]] = []
    batched: dict[int, list[int]] = {}
    rest: list[tuple[int, int]] = []
    batch_right = (
        Polygon if predicate.kind == "intersects" else PolyLine
    )
    for i, j in candidates:
        if isinstance(left[i], Point) and isinstance(right[j], batch_right):
            batched.setdefault(j, []).append(i)
        else:
            rest.append((i, j))
    for j, point_ids in batched.items():
        xy = np.array([(left[i].x, left[i].y) for i in point_ids])
        if predicate.kind == "intersects":
            mask = engine.points_in_polygon(right[j], xy)
        else:
            mask = engine.points_within_distance(right[j], xy, predicate.distance)
        survivors.extend((i, j) for i, keep in zip(point_ids, mask) if keep)
    for i, j in rest:
        if predicate.evaluate(engine, left[i], right[j]):
            survivors.append((i, j))
    survivors.sort()
    return survivors


def indexed_nested_loop_join(
    left: GeometrySource,
    right: GeometrySource,
    engine: GeometryEngine,
    *,
    counters: Optional[Counters] = None,
    leaf_capacity: int = 16,
    predicate: JoinPredicate = INTERSECTS,
) -> list[tuple[int, int]]:
    """Index the right side with an STR tree, probe with every left MBR.

    For distance predicates the probe boxes are expanded by the margin,
    keeping the filter a superset of the exact matches.  A batch left
    side probes all boxes in one level-synchronous ``query_many``
    traversal instead of one tree walk per geometry.
    """
    counters = counters if counters is not None else Counters()
    if not len(left) or not len(right):
        return []
    tree = STRtree(as_mbr_array(right), counters=counters,
                   leaf_capacity=leaf_capacity)
    if isinstance(left, GeometryBatch):
        probes = left.mbrs
        if predicate.filter_margin:
            probes = MBRArray(
                probes.data
                + np.array([-1.0, -1.0, 1.0, 1.0]) * predicate.filter_margin
            )
        hits = tree.query_many(probes)
        counts = np.fromiter((h.size for h in hits), dtype=np.int64, count=len(hits))
        qi = np.repeat(np.arange(len(hits), dtype=np.int64), counts)
        cj = np.concatenate(hits) if hits else np.empty(0, dtype=np.int64)
        candidates: "np.ndarray | list[tuple[int, int]]" = np.stack([qi, cj], axis=1)
    else:
        candidates = []
        for i, geom in enumerate(left):
            for j in tree.query(predicate.expand(geom.mbr)):
                candidates.append((i, int(j)))
    counters.add("join.candidates", len(candidates))
    return refine_candidates(left, right, candidates, engine, predicate)


def plane_sweep_join(
    left: GeometrySource,
    right: GeometrySource,
    engine: GeometryEngine,
    *,
    counters: Optional[Counters] = None,
    predicate: JoinPredicate = INTERSECTS,
) -> list[tuple[int, int]]:
    """Classic plane-sweep MBR join along the x axis.

    Distance predicates sweep with the left boxes expanded by the margin.
    """
    counters = counters if counters is not None else Counters()
    if not len(left) or not len(right):
        return []
    lb = as_mbr_array(left).data
    if predicate.filter_margin:
        lb = lb + np.array([-1.0, -1.0, 1.0, 1.0]) * predicate.filter_margin
    rb = as_mbr_array(right).data
    lorder = np.argsort(lb[:, 0], kind="stable")
    rorder = np.argsort(rb[:, 0], kind="stable")
    n, m = len(lorder), len(rorder)
    counters.add("sort.ops", n * max(np.log2(max(n, 2)), 1) + m * max(np.log2(max(m, 2)), 1))
    candidates: list[tuple[int, int]] = []
    li = ri = 0
    active_left: list[int] = []  # indices into lb, still open
    active_right: list[int] = []
    while li < n or ri < m:
        take_left = ri >= m or (li < n and lb[lorder[li], 0] <= rb[rorder[ri], 0])
        if take_left:
            i = int(lorder[li])
            li += 1
            x = lb[i, 0]
            active_right = [j for j in active_right if rb[j, 2] >= x]
            counters.add("join.sweep_ops", len(active_right) + 1)
            for j in active_right:
                if lb[i, 1] <= rb[j, 3] and rb[j, 1] <= lb[i, 3]:
                    candidates.append((i, j))
            active_left.append(i)
        else:
            j = int(rorder[ri])
            ri += 1
            x = rb[j, 0]
            active_left = [i for i in active_left if lb[i, 2] >= x]
            counters.add("join.sweep_ops", len(active_left) + 1)
            for i in active_left:
                if lb[i, 1] <= rb[j, 3] and rb[j, 1] <= lb[i, 3]:
                    candidates.append((i, j))
            active_right.append(j)
    counters.add("join.candidates", len(candidates))
    return refine_candidates(left, right, candidates, engine, predicate)


def sync_rtree_join(
    left: GeometrySource,
    right: GeometrySource,
    engine: GeometryEngine,
    *,
    counters: Optional[Counters] = None,
    leaf_capacity: int = 16,
    predicate: JoinPredicate = INTERSECTS,
) -> list[tuple[int, int]]:
    """Synchronized traversal of STR trees built over both sides.

    Distance predicates build the left tree over margin-expanded boxes.
    """
    counters = counters if counters is not None else Counters()
    if not len(left) or not len(right):
        return []
    left_boxes = as_mbr_array(left)
    if predicate.filter_margin:
        left_boxes = MBRArray(
            left_boxes.data
            + np.array([-1.0, -1.0, 1.0, 1.0]) * predicate.filter_margin
        )
    ltree = STRtree(left_boxes, counters=counters, leaf_capacity=leaf_capacity)
    rtree = STRtree(as_mbr_array(right), counters=counters,
                    leaf_capacity=leaf_capacity)
    candidates = sync_tree_join(ltree, rtree, counters)
    counters.add("join.candidates", len(candidates))
    return refine_candidates(left, right, candidates, engine, predicate)


LOCAL_JOIN_ALGORITHMS = {
    "indexed_nested_loop": indexed_nested_loop_join,
    "plane_sweep": plane_sweep_join,
    "sync_rtree": sync_rtree_join,
}


def local_join(
    algorithm: str,
    left: GeometrySource,
    right: GeometrySource,
    engine: GeometryEngine,
    *,
    counters: Optional[Counters] = None,
    predicate: JoinPredicate = INTERSECTS,
) -> list[tuple[int, int]]:
    """Dispatch a local join by algorithm name."""
    try:
        fn = LOCAL_JOIN_ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown local join algorithm {algorithm!r}; "
            f"options: {sorted(LOCAL_JOIN_ALGORITHMS)}"
        ) from None
    return fn(left, right, engine, counters=counters, predicate=predicate)
