"""Adaptive repartitioning: split hot cells at finer granularity.

SATO-style sampled partition-quality statistics (Aji et al., "Effective
Spatial Data Partitioning for Scalable Query Processing") decide *when*
to split: a cell whose sampled record count exceeds ``hot_factor`` × the
mean is a straggler in the making.  LocationSpark's remedy is applied
*to those cells only*: each hot cell is re-gridded with BSP-style median
splits of its in-cell sample — the sub-cells tile the original cell
exactly, so a tiling partitioning stays a tiling and best-assignment
partitionings keep their expand-to-contents safety net.

Determinism discipline (the DET003 fixture pins this): hot cells are
selected by ``(-count, cell_id)`` and the rebuilt box list iterates
cells in ascending original id order — never set/dict-arrival order —
so the emitted partitioning is a pure function of (partitioning, sample).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.partitioning import SpatialPartitioning
from ..geometry.batch import as_mbr_array
from ..geometry.mbr import MBRArray

__all__ = ["QualityStats", "SplitReport", "quality_stats", "split_hot_cells"]


@dataclass(frozen=True)
class QualityStats:
    """SATO-style sampled per-cell load statistics of a partitioning."""

    counts: tuple[int, ...]
    mean: float
    max_count: int
    #: max/mean sampled cell load (1 = balanced; large = hot cells).
    skew: float
    #: cell ids over the hot threshold, ascending (deterministic order).
    hot_cells: tuple[int, ...]


def _stats_from_counts(counts: np.ndarray, hot_factor: float) -> QualityStats:
    mean = float(counts.mean()) if counts.size else 0.0
    max_count = int(counts.max()) if counts.size else 0
    # A cell needs >= 2 sampled records to be splittable at all.
    hot = (
        np.flatnonzero((counts > hot_factor * mean) & (counts >= 2))
        if mean > 0
        else np.array([], dtype=np.int64)
    )
    return QualityStats(
        counts=tuple(int(c) for c in counts),
        mean=mean,
        max_count=max_count,
        skew=(max_count / mean) if mean > 0 else 0.0,
        hot_cells=tuple(int(c) for c in hot),
    )


def quality_stats(
    partitioning: SpatialPartitioning, sample, *, hot_factor: float = 4.0
) -> QualityStats:
    """Sampled load per cell via deterministic point assignment.

    Sample MBR centers are assigned with
    :meth:`~repro.core.partitioning.SpatialPartitioning.assign_points`
    (lowest-id tie-break on shared edges), so the statistics are
    bit-identical across backends and planes.
    """
    boxes = as_mbr_array(sample)
    if len(partitioning) == 0 or len(boxes) == 0:
        return _stats_from_counts(np.zeros(len(partitioning), dtype=np.int64),
                                  hot_factor)
    assign = partitioning.assign_points(boxes.centers)
    counts = np.bincount(assign, minlength=len(partitioning))
    return _stats_from_counts(counts, hot_factor)


@dataclass(frozen=True)
class SplitReport:
    """What :func:`split_hot_cells` did to one partitioning."""

    #: original ids of the cells that were split, ascending.
    hot_cells: tuple[int, ...]
    cells_before: int
    cells_after: int

    @property
    def cells_added(self) -> int:
        return self.cells_after - self.cells_before


def _median_split(
    box: tuple[float, float, float, float], pts: np.ndarray, want: int,
    rows: list,
) -> None:
    """Recursive BSP median split of *box* into ≈ *want* leaves.

    The same balance-oriented scheme as
    :class:`~repro.core.partitioning.BSPPartitioner`: split the widest
    axis at the sample median (midpoint fallback on degenerate medians),
    recurse with the points on each side.  The leaves tile *box* exactly.
    """
    if want <= 1 or pts.shape[0] <= 1:
        rows.append(box)
        return
    xmin, ymin, xmax, ymax = box
    horizontal = (xmax - xmin) >= (ymax - ymin)
    axis = 0 if horizontal else 1
    cut = float(np.median(pts[:, axis]))
    lo_limit, hi_limit = (xmin, xmax) if horizontal else (ymin, ymax)
    if not (lo_limit < cut < hi_limit):
        cut = (lo_limit + hi_limit) / 2.0
    left_want = want // 2
    right_want = want - left_want
    mask = pts[:, axis] <= cut
    if horizontal:
        _median_split((xmin, ymin, cut, ymax), pts[mask], left_want, rows)
        _median_split((cut, ymin, xmax, ymax), pts[~mask], right_want, rows)
    else:
        _median_split((xmin, ymin, xmax, cut), pts[mask], left_want, rows)
        _median_split((xmin, cut, xmax, ymax), pts[~mask], right_want, rows)


def split_hot_cells(
    partitioning: SpatialPartitioning,
    sample,
    *,
    hot_factor: float = 4.0,
    max_splits: int = 4,
    leaves: int = 8,
) -> tuple[SpatialPartitioning, QualityStats, SplitReport]:
    """Re-grid the hot cells of *partitioning* at finer granularity.

    Returns ``(new_partitioning, quality_stats, split_report)``.  When no
    cell is hot the input partitioning is returned unchanged (same
    object), so the feature is charge-free on balanced data.
    """
    boxes = as_mbr_array(sample)
    n = len(partitioning)
    if n == 0 or len(boxes) == 0:
        stats = _stats_from_counts(np.zeros(n, dtype=np.int64), hot_factor)
        return partitioning, stats, SplitReport((), n, n)
    centers = boxes.centers
    assign = partitioning.assign_points(centers)
    counts = np.bincount(assign, minlength=n)
    stats = _stats_from_counts(counts, hot_factor)
    if not stats.hot_cells:
        return partitioning, stats, SplitReport((), n, n)
    # Budget the hottest cells first, then process in ascending id order
    # so the output box order never depends on load ties or set order.
    budget = sorted(
        sorted(stats.hot_cells, key=lambda c: (-counts[c], c))[:max_splits]
    )
    hot_set = frozenset(budget)
    data = partitioning.boxes.data
    rows: list[tuple[float, float, float, float]] = []
    for cell in range(n):
        if cell not in hot_set:
            rows.append(tuple(data[cell]))
            continue
        _median_split(tuple(data[cell]), centers[assign == cell], leaves, rows)
    new = SpatialPartitioning(
        boxes=MBRArray(np.array(rows, dtype=np.float64)),
        tiles=partitioning.tiles,
    )
    return new, stats, SplitReport(tuple(budget), n, len(new))
