"""Skew-aware shuffle machinery: sFilter pruning + adaptive repartitioning.

LocationSpark (Tang et al., PAPERS.md) names the two mechanisms this
package supplies to the three reproduced systems:

* an **sFilter** (:class:`SFilter`) — a spatial bloom filter built from
  one side's MBRs that drops records whose MBR provably cannot match
  anything on the other side *before* they enter the MapReduce shuffle
  or the RDD exchange.  Conservative by construction: a pruned record
  has an MBR disjoint from every opposite-side MBR (never a false
  negative; false positives merely forgo savings).
* **adaptive repartitioning** (:func:`split_hot_cells`) — SATO-style
  sampled partition-quality statistics (:func:`quality_stats`, Aji et
  al.) decide *when* a cell is hot, and the hot cells are re-gridded at
  finer granularity with median splits so the sampled load balances.

Both are opt-in per system via the ``shuffle=`` constructor kwarg (or a
plan with ``shuffle="skew"``); with the feature off, every charge and
byte is bit-identical to the pre-feature pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .repartition import QualityStats, SplitReport, quality_stats, split_hot_cells
from .sfilter import SFilter

__all__ = [
    "SFilter",
    "ShuffleConfig",
    "QualityStats",
    "SplitReport",
    "quality_stats",
    "split_hot_cells",
    "resolve_shuffle",
]


@dataclass(frozen=True)
class ShuffleConfig:
    """Knobs of the skew/prune pipeline (frozen: safe to share/hash).

    ``hot_factor`` is the SATO-style trigger: a cell is hot when its
    sampled count exceeds ``hot_factor`` × the mean cell count.  Hot
    cells are re-gridded into ``split_leaves`` median-split sub-cells,
    at most ``max_splits`` cells per partitioning.  ``resolution`` is
    the sFilter bitmap's cells per axis.
    """

    sfilter: bool = True
    repartition: bool = True
    hot_factor: float = 4.0
    max_splits: int = 4
    split_leaves: int = 8
    resolution: int = 64


def resolve_shuffle(
    value: Union[None, bool, ShuffleConfig],
) -> Optional[ShuffleConfig]:
    """Normalize a system's ``shuffle=`` kwarg to a config or ``None``.

    ``None``/``False`` → off (the default, bit-identical to the legacy
    pipelines); ``True`` → the default :class:`ShuffleConfig`; a config
    passes through.
    """
    if value is None or value is False:
        return None
    if value is True:
        return ShuffleConfig()
    if isinstance(value, ShuffleConfig):
        return value
    raise TypeError(
        f"shuffle= accepts None, a bool or a ShuffleConfig, not {value!r}"
    )
