"""The sFilter: a spatial bloom filter over one join side's MBRs.

A coarse occupancy bitmap over the build side's extent: bit (j, i) is set
iff at least one build-side MBR intersects grid cell (j, i).  Queries ask
"could this box intersect *any* build-side box?" — answered in O(1) per
box from a 2-D prefix-sum (summed-area table) of the bitmap, vectorized
over whole :class:`~repro.geometry.mbr.MBRArray` batches.

The guarantee the property tests pin down: **never a false negative**.
If a query box Q intersects some build box B, their (non-empty)
intersection lies inside the build extent; any point of it falls in a
cell that both Q's clipped cell range and B's cell range cover, so the
bit is set and Q is kept.  A query box wholly outside the build extent
can intersect nothing and is always prunable; an *empty* build side
prunes everything.  False positives (a kept box that matches nothing)
only forgo savings — correctness never depends on the filter.
"""

from __future__ import annotations

import numpy as np

from ..geometry.batch import as_mbr_array

__all__ = ["SFilter"]


class SFilter:
    """Grid-bitmap filter built from MBRs; query with :meth:`contains`."""

    def __init__(self, boxes, *, resolution: int = 64):
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        boxes = as_mbr_array(boxes)
        self.n_build = len(boxes)
        if self.n_build == 0:
            # Empty build side: nothing can match, prune every query box.
            self.nx = self.ny = 0
            self.bounds = (0.0, 0.0, 0.0, 0.0)
            self._psum = None
            return
        extent = boxes.extent()
        self.bounds = extent.as_tuple()
        xmin, ymin, xmax, ymax = self.bounds
        # Degenerate axes (all boxes share one x or y) collapse to 1 cell.
        self.nx = resolution if xmax > xmin else 1
        self.ny = resolution if ymax > ymin else 1
        self._cw = (xmax - xmin) / self.nx if xmax > xmin else 1.0
        self._ch = (ymax - ymin) / self.ny if ymax > ymin else 1.0
        data = boxes.data
        i0, j0 = self._cell_of(data[:, 0], data[:, 1])
        i1, j1 = self._cell_of(data[:, 2], data[:, 3])
        bitmap = np.zeros((self.ny, self.nx), dtype=bool)
        single = (i0 == i1) & (j0 == j1)
        bitmap[j0[single], i0[single]] = True
        for k in np.flatnonzero(~single):
            bitmap[j0[k] : j1[k] + 1, i0[k] : i1[k] + 1] = True
        self.cells_set = int(bitmap.sum())
        psum = np.zeros((self.ny + 1, self.nx + 1), dtype=np.int64)
        np.cumsum(np.cumsum(bitmap, axis=0), axis=1, out=psum[1:, 1:])
        self._psum = psum

    # ------------------------------------------------------------- geometry
    @staticmethod
    def _axis_cell(vals: np.ndarray, vmin: float, cw: float, n: int):
        # A degenerate axis (zero-width extent) collapses to one cell;
        # dividing by its zero cell width would produce NaN/inf.  Clip
        # before the int cast: a tiny cell width can push the float
        # quotient past the int64 range.
        if cw <= 0.0:
            return np.zeros(len(vals), dtype=np.int64)
        return np.clip(np.floor((vals - vmin) / cw), 0, n - 1).astype(np.int64)

    def _cell_of(self, xs: np.ndarray, ys: np.ndarray):
        xmin, ymin, _, _ = self.bounds
        i = self._axis_cell(xs, xmin, self._cw, self.nx)
        j = self._axis_cell(ys, ymin, self._ch, self.ny)
        return i, j

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny

    @property
    def nbytes(self) -> int:
        """Approximate serialized size (bitmap bits + header)."""
        return self.n_cells // 8 + 64

    # --------------------------------------------------------------- query
    def contains(self, boxes, margin: float = 0.0) -> np.ndarray:
        """Keep mask: ``True`` where a box *may* match the build side.

        *margin* expands the query boxes (distance joins); axis-aligned
        expansion is side-symmetric, so applying it on the query side
        alone is exact: ``expand(Q, m) ∩ B ≠ ∅  ⟺  Q ∩ expand(B, m) ≠ ∅``.
        ``False`` means *provably* no build-side MBR intersects the
        (expanded) box — the prune decision is safe by construction.
        """
        boxes = as_mbr_array(boxes)
        n = len(boxes)
        if self.n_build == 0 or n == 0:
            return np.zeros(n, dtype=bool)
        q = boxes.data
        qx0, qy0 = q[:, 0] - margin, q[:, 1] - margin
        qx1, qy1 = q[:, 2] + margin, q[:, 3] + margin
        xmin, ymin, xmax, ymax = self.bounds
        outside = (qx1 < xmin) | (qx0 > xmax) | (qy1 < ymin) | (qy0 > ymax)
        i0, j0 = self._cell_of(qx0, qy0)
        i1, j1 = self._cell_of(qx1, qy1)
        s = self._psum
        occupied = (
            s[j1 + 1, i1 + 1] - s[j0, i1 + 1] - s[j1 + 1, i0] + s[j0, i0]
        ) > 0
        return ~outside & occupied

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SFilter(build={self.n_build}, grid={self.nx}x{self.ny}, "
            f"set={getattr(self, 'cells_set', 0)})"
        )
