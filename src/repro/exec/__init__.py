"""Multi-core task execution backends for the simulated substrates.

``MapReduceJob`` map/reduce attempts and ``RDD`` per-partition stage
tasks run on a pluggable :class:`ExecutorBackend` (serial, threads, or
forked processes).  Parallel execution is *observationally equivalent*
to serial: every task runs against its own scratch counters and side
channel, and outcomes are merged in task-index order, so result pairs,
per-phase counters and failure outcomes are bit-identical across
backends — only wall-clock time changes.
"""

from .backend import (
    BACKENDS,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    merge_outcomes,
    resolve_backend,
)
from .pool import run_ordered
from .task import TaskOutcome, emit, redirect_counters, run_task

__all__ = [
    "run_ordered",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "resolve_backend",
    "merge_outcomes",
    "TaskOutcome",
    "emit",
    "redirect_counters",
    "run_task",
]
