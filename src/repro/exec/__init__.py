"""Multi-core task execution backends for the simulated substrates.

``MapReduceJob`` map/reduce attempts and ``RDD`` per-partition stage
tasks run on a pluggable :class:`ExecutorBackend` (serial, threads, or
a warm pool of forked processes).  Parallel execution is
*observationally equivalent* to serial: every task runs against its own
scratch counters and side channel, and outcomes are merged in
task-index order, so result pairs, per-phase counters and failure
outcomes are bit-identical across backends — only wall-clock time
changes.

The process path (:mod:`repro.exec.shm_pool` + :mod:`repro.exec.shm`)
forks its workers once per run and keeps them warm across stages; large
arrays and ``GeometryBatch`` planes cross process boundaries through
``multiprocessing.shared_memory`` segments instead of pickle streams.
"""

from .backend import (
    BACKENDS,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    merge_outcomes,
    resolve_backend,
)
from .pool import run_ordered
from .shm import RESULT_MIN_BYTES, SHARE_MIN_BYTES, ArrayRef, live_segment_names
from .shm_pool import PoolBrokenError, WarmPool, shutdown_warm_pools
from .task import TaskOutcome, emit, redirect_counters, run_task

__all__ = [
    "run_ordered",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "resolve_backend",
    "merge_outcomes",
    "TaskOutcome",
    "emit",
    "redirect_counters",
    "run_task",
    "WarmPool",
    "PoolBrokenError",
    "shutdown_warm_pools",
    "live_segment_names",
    "ArrayRef",
    "SHARE_MIN_BYTES",
    "RESULT_MIN_BYTES",
]
