"""Ordered fan-out over a thread pool for the query service.

The service front-end dispatches independent queries concurrently, but
its results must stay deterministic: :func:`run_ordered` returns results
in *submission order* regardless of completion order, mirroring the
task-index merge discipline of :func:`repro.exec.merge_outcomes`.  The
callables themselves must not share mutable state (the service gives
each query its own environment and counters); exceptions propagate to
the caller with their original traceback, after all submitted work has
finished.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = ["run_ordered"]

#: repro-lint whole-program declaration (WRK001): the query closures
#: handed to ``run_ordered`` execute on dispatcher threads concurrently —
#: the same transitive purity contract as pool-worker task bodies.
_DISPATCH_POINTS = ("run_ordered",)

T = TypeVar("T")


def run_ordered(fns: Sequence[Callable[[], T]], workers: int = 1) -> list[T]:
    """Run *fns* with up to *workers* threads; results in submission order.

    ``workers <= 1`` (or a single callable) runs serially on the calling
    thread — the degenerate case has no pool and therefore exactly the
    serial execution's thread identity, which keeps thread-local counter
    redirects working for ``concurrency=1``.
    """
    if workers <= 1 or len(fns) <= 1:
        return [fn() for fn in fns]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn) for fn in fns]
        # list() in submission order; .result() re-raises the first
        # failure only after the executor has drained remaining work.
        return [f.result() for f in futures]
