"""Pluggable multi-core task execution backends.

The substrates (``MapReduceJob``, ``RDD``) hand their independent task
bodies to an :class:`ExecutorBackend` instead of looping over them.
Three implementations are provided:

* :class:`SerialBackend` — runs tasks one by one in the calling thread
  (the default; zero dependencies, zero overhead beyond the wrapper).
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``; parallelism is
  bounded by the GIL but NumPy kernels and any releasing code overlap.
* :class:`ProcessBackend` — a fork-based ``ProcessPoolExecutor`` giving
  real multi-core execution of the pure-Python geometry/refinement work.

**Determinism is the design constraint**: every backend runs each task
against its own scratch :class:`~repro.metrics.Counters` (see
:mod:`repro.exec.task`) and :func:`merge_outcomes` folds the scratches
back in task-index order, so counters, phase records, result ordering
and failure outcomes are bit-identical across backends.  The backends
only change wall-clock time, never the simulated run.

Task bodies are closures over driver state; they cannot be pickled, so
:class:`ProcessBackend` relies on ``fork`` (the task list is published in
a module global that forked workers inherit, and only task *indices*
cross the pipe).  On platforms without ``fork`` it degrades to threads.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from typing import Any, Callable, Optional, Sequence

from ..metrics import _REDIRECT, Counters
from ..trace.core import attach as _attach_span
from .task import TaskOutcome, run_task

__all__ = [
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "merge_outcomes",
    "BACKENDS",
]


def merge_outcomes(
    outcomes: Sequence[TaskOutcome], shared: Counters
) -> tuple[list, dict]:
    """Fold task outcomes into the shared counters, in task-index order.

    Returns ``(results, side)`` where *results* is the per-task result
    list and *side* maps each :func:`~repro.exec.task.emit` key to the
    list of values emitted under it (task order, then emit order).  When
    a task captured an error, the scratches of all earlier tasks *and*
    of the failing task are merged before the error is re-raised — the
    exact state a serial run leaves behind when that task raises.
    """
    results: list = []
    side: dict = {}
    for outcome in outcomes:
        shared.merge(outcome.counters)
        # Trace spans graft here — in the same task-index order the
        # scratches merge — so the tree structure is backend-independent.
        _attach_span(outcome.span)
        for key, value in outcome.side:
            side.setdefault(key, []).append(value)
        if outcome.error is not None:
            raise outcome.error
        results.append(outcome.result)
    return results, side


def _in_task() -> bool:
    return getattr(_REDIRECT, "task_side", None) is not None


class ExecutorBackend:
    """Runs independent task bodies; subclasses choose the concurrency."""

    name = "abstract"

    def __init__(self, workers: int = 1):
        self.workers = max(1, int(workers))
        #: per-stage timing rows appended by :meth:`run_tasks`.
        self.profile: list[dict] = []

    # ------------------------------------------------------------- dispatch
    def run_tasks(
        self, label: str, fns: Sequence[Callable[[], Any]], shared: Counters
    ) -> list[TaskOutcome]:
        """Execute all task bodies and return their outcomes, in order.

        Also appends a per-stage timing row (label, task count, summed
        task seconds, max task seconds) to :attr:`profile`.
        """
        if not fns:
            return []
        # Allocate the redirect token in the driver thread before any
        # worker does: concurrent lazy allocation would be benign only by
        # luck, and forked workers should inherit the same key.
        shared.token
        if len(fns) == 1 or _in_task():
            # Nested dispatch (a task body triggering another stage) and
            # single-task stages always run inline.
            outcomes = self._serial(fns, shared)
        else:
            outcomes = self._execute(fns, shared)
        task_seconds = [o.seconds for o in outcomes]
        self.profile.append(
            {
                "label": label,
                "tasks": len(outcomes),
                "task_seconds": sum(task_seconds),
                "max_task_seconds": max(task_seconds, default=0.0),
            }
        )
        return outcomes

    def _serial(
        self, fns: Sequence[Callable[[], Any]], shared: Counters
    ) -> list[TaskOutcome]:
        outcomes = []
        for index, fn in enumerate(fns):
            outcome = run_task(index, fn, shared)
            outcomes.append(outcome)
            if outcome.error is not None:
                break  # serial semantics: later tasks never start
        return outcomes

    def _execute(
        self, fns: Sequence[Callable[[], Any]], shared: Counters
    ) -> list[TaskOutcome]:
        raise NotImplementedError

    # ------------------------------------------------------------ reporting
    def profile_summary(self) -> dict:
        """Aggregate per-task timing for ``RunReport.engine_profile``."""
        return {
            "backend": self.name,
            "workers": self.workers,
            "stages": len(self.profile),
            "tasks": sum(row["tasks"] for row in self.profile),
            "task_seconds": sum(row["task_seconds"] for row in self.profile),
            "phases": list(self.profile),
        }


class SerialBackend(ExecutorBackend):
    """One task at a time, in the calling thread (the default)."""

    name = "serial"

    def __init__(self, workers: int = 1):
        super().__init__(1)

    def _execute(self, fns, shared):
        return self._serial(fns, shared)


class ThreadBackend(ExecutorBackend):
    """``ThreadPoolExecutor``-based backend (GIL-bounded concurrency).

    Tasks are dispatched as one contiguous index slice per worker (not
    one future per task), so pool overhead is paid ``workers`` times per
    stage instead of ``tasks`` times.  Each slice runs its tasks serially
    in one thread and outcomes are flattened back in task-index order, so
    the merged counters and results stay bit-identical to serial.

    Pure-Python task bodies still serialize on the GIL — on such
    workloads this backend is a portability fallback (expect ~1× or
    slightly below serial), and real speedup requires the fork-based
    :class:`ProcessBackend`.  Only NumPy kernels and other GIL-releasing
    sections genuinely overlap.
    """

    name = "thread"

    def _execute(self, fns, shared):
        workers = min(self.workers, len(fns))
        # Contiguous slices, sized as evenly as possible.
        base, extra = divmod(len(fns), workers)
        slices = []
        start = 0
        for w in range(workers):
            stop = start + base + (1 if w < extra else 0)
            slices.append(range(start, stop))
            start = stop

        def run_slice(indices):
            return [run_task(i, fns[i], shared) for i in indices]

        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            chunks = pool.map(run_slice, slices)
            return [outcome for chunk in chunks for outcome in chunk]


#: Task list published for forked ProcessBackend workers (fork-inherited;
#: only task indices are pickled across the pipe).
_FORK_STATE: Optional[tuple[Sequence[Callable[[], Any]], Counters]] = None


def _fork_worker(index: int) -> TaskOutcome:
    fns, shared = _FORK_STATE
    return run_task(index, fns[index], shared)


class ProcessBackend(ExecutorBackend):
    """Fork-based multi-process backend: real multi-core execution.

    Each task runs in a forked worker against an inherited snapshot of
    the driver state; only its :class:`TaskOutcome` (result records,
    scratch counters, side outputs, error, timing) crosses back.  Falls
    back to :class:`ThreadBackend` semantics where ``fork`` is missing.

    Columnar :class:`~repro.geometry.batch.GeometryBatch` payloads cross
    the pipe as their underlying arrays (``GeometryBatch.__reduce__``),
    never as per-geometry objects — crossing a batch costs a handful of
    buffer copies regardless of geometry count.
    """

    name = "process"

    @staticmethod
    def available() -> bool:
        """Whether this platform supports fork-based process pools."""
        return hasattr(os, "fork") and (
            "fork" in multiprocessing.get_all_start_methods()
        )

    def _execute(self, fns, shared):
        if not self.available():  # pragma: no cover - non-POSIX fallback
            return ThreadBackend(self.workers)._execute(fns, shared)
        global _FORK_STATE
        workers = min(self.workers, len(fns))
        _FORK_STATE = (fns, shared)
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            ) as pool:
                return list(pool.map(_fork_worker, range(len(fns))))
        finally:
            _FORK_STATE = None


BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def resolve_backend(
    backend: "str | ExecutorBackend | None" = None, workers: int = 1
) -> ExecutorBackend:
    """Build the executor for a run.

    *backend* is a name from :data:`BACKENDS`, an already-built backend
    (returned as-is), or None — meaning serial for ``workers <= 1`` and
    the best available parallel backend (process, else thread) above.
    """
    if isinstance(backend, ExecutorBackend):
        return backend
    if backend is None:
        if workers <= 1:
            return SerialBackend()
        backend = "process" if ProcessBackend.available() else "thread"
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {backend!r}; options: {sorted(BACKENDS)}"
        ) from None
    return cls(workers)
