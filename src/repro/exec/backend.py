"""Pluggable multi-core task execution backends.

The substrates (``MapReduceJob``, ``RDD``) hand their independent task
bodies to an :class:`ExecutorBackend` instead of looping over them.
Three implementations are provided:

* :class:`SerialBackend` — runs tasks one by one in the calling thread
  (the default; zero dependencies, zero overhead beyond the wrapper).
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``; parallelism is
  bounded by the GIL but NumPy kernels and any releasing code overlap.
* :class:`ProcessBackend` — a fork-based ``ProcessPoolExecutor`` giving
  real multi-core execution of the pure-Python geometry/refinement work.

**Determinism is the design constraint**: every backend runs each task
against its own scratch :class:`~repro.metrics.Counters` (see
:mod:`repro.exec.task`) and :func:`merge_outcomes` folds the scratches
back in task-index order, so counters, phase records, result ordering
and failure outcomes are bit-identical across backends.  The backends
only change wall-clock time, never the simulated run.

:class:`ProcessBackend` dispatches onto a persistent *warm pool*
(:mod:`repro.exec.shm_pool`): workers fork once and stay alive across
every stage of a run, each stage crosses the pipes as one broadcast
payload plus one contiguous index slice per worker, and large arrays /
``GeometryBatch`` planes travel through ``multiprocessing.shared_memory``
segments instead of pickle bytes (:mod:`repro.exec.shm`).  On platforms
without ``fork`` it degrades to threads — loudly: the degradation charges
the ``exec.backend_fallback`` counter and surfaces a warning on the
:class:`~repro.systems.base.RunReport`.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import weakref
from typing import Any, Callable, Sequence

from ..metrics import _REDIRECT, Counters
from ..trace.core import attach as _attach_span
from .task import TaskOutcome, run_task

__all__ = [
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "merge_outcomes",
    "BACKENDS",
]

#: repro-lint whole-program declaration (WRK001): every function-valued
#: argument at a ``*.run_tasks(...)`` call site is a task body that may
#: execute inside a pool worker — everything reachable from it must be
#: free of wall-clock reads, unseeded RNG, module-global writes, and
#: out-of-plane shared memory.
_DISPATCH_POINTS = ("ExecutorBackend.run_tasks",)


def _even_slices(n: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``(lo, hi)`` task-index slices, sized as evenly as
    possible — the common dispatch geometry of the thread and process
    backends (identical slicing keeps their stage shapes comparable)."""
    workers = min(workers, n)
    base, extra = divmod(n, workers)
    slices = []
    start = 0
    for w in range(workers):
        stop = start + base + (1 if w < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


def merge_outcomes(
    outcomes: Sequence[TaskOutcome], shared: Counters
) -> tuple[list, dict]:
    """Fold task outcomes into the shared counters, in task-index order.

    Returns ``(results, side)`` where *results* is the per-task result
    list and *side* maps each :func:`~repro.exec.task.emit` key to the
    list of values emitted under it (task order, then emit order).  When
    a task captured an error, the scratches of all earlier tasks *and*
    of the failing task are merged before the error is re-raised — the
    exact state a serial run leaves behind when that task raises.
    """
    results: list = []
    side: dict = {}
    for outcome in outcomes:
        shared.merge(outcome.counters)
        # Trace spans graft here — in the same task-index order the
        # scratches merge — so the tree structure is backend-independent.
        _attach_span(outcome.span)
        for key, value in outcome.side:
            side.setdefault(key, []).append(value)
        if outcome.error is not None:
            raise outcome.error
        results.append(outcome.result)
    return results, side


def _in_task() -> bool:
    return getattr(_REDIRECT, "task_side", None) is not None


class ExecutorBackend:
    """Runs independent task bodies; subclasses choose the concurrency."""

    name = "abstract"

    def __init__(self, workers: int = 1):
        self.workers = max(1, int(workers))
        #: per-stage timing rows appended by :meth:`run_tasks`.
        self.profile: list[dict] = []

    # ------------------------------------------------------------- dispatch
    def run_tasks(
        self, label: str, fns: Sequence[Callable[[], Any]], shared: Counters
    ) -> list[TaskOutcome]:
        """Execute all task bodies and return their outcomes, in order.

        Also appends a per-stage timing row (label, task count, summed
        task seconds, max task seconds) to :attr:`profile`.
        """
        if not fns:
            return []
        # Allocate the redirect token in the driver thread before any
        # worker does: concurrent lazy allocation would be benign only by
        # luck, and forked workers should inherit the same key.
        shared.token
        if len(fns) == 1 or _in_task():
            # Nested dispatch (a task body triggering another stage) and
            # single-task stages always run inline.
            outcomes = self._serial(fns, shared)
        else:
            outcomes = self._execute(fns, shared)
        task_seconds = [o.seconds for o in outcomes]
        self.profile.append(
            {
                "label": label,
                "tasks": len(outcomes),
                "task_seconds": sum(task_seconds),
                "max_task_seconds": max(task_seconds, default=0.0),
            }
        )
        return outcomes

    def _serial(
        self, fns: Sequence[Callable[[], Any]], shared: Counters
    ) -> list[TaskOutcome]:
        outcomes = []
        for index, fn in enumerate(fns):
            outcome = run_task(index, fn, shared)
            outcomes.append(outcome)
            if outcome.error is not None:
                break  # serial semantics: later tasks never start
        return outcomes

    def _execute(
        self, fns: Sequence[Callable[[], Any]], shared: Counters
    ) -> list[TaskOutcome]:
        raise NotImplementedError

    # ------------------------------------------------------------ reporting
    def profile_summary(self) -> dict:
        """Aggregate per-task timing for ``RunReport.engine_profile``."""
        return {
            "backend": self.name,
            "workers": self.workers,
            "stages": len(self.profile),
            "tasks": sum(row["tasks"] for row in self.profile),
            "task_seconds": sum(row["task_seconds"] for row in self.profile),
            "phases": list(self.profile),
        }


class SerialBackend(ExecutorBackend):
    """One task at a time, in the calling thread (the default)."""

    name = "serial"

    def __init__(self, workers: int = 1):
        super().__init__(1)

    def _execute(self, fns, shared):
        return self._serial(fns, shared)


class ThreadBackend(ExecutorBackend):
    """``ThreadPoolExecutor``-based backend (GIL-bounded concurrency).

    Tasks are dispatched as one contiguous index slice per worker (not
    one future per task), so pool overhead is paid ``workers`` times per
    stage instead of ``tasks`` times.  Each slice runs its tasks serially
    in one thread and outcomes are flattened back in task-index order, so
    the merged counters and results stay bit-identical to serial.

    Pure-Python task bodies still serialize on the GIL — on such
    workloads this backend is a portability fallback (expect ~1× or
    slightly below serial), and real speedup requires the fork-based
    :class:`ProcessBackend`.  Only NumPy kernels and other GIL-releasing
    sections genuinely overlap.
    """

    name = "thread"

    def _execute(self, fns, shared):
        from ..geometry.kernels import parallel_chunk_scope

        workers = min(self.workers, len(fns))
        slices = _even_slices(len(fns), workers)

        def run_slice(bounds):
            lo, hi = bounds
            return [run_task(i, fns[i], shared) for i in range(lo, hi)]

        # Larger CSR kernel chunks while slices run concurrently: keeps
        # each thread inside NumPy's GIL-releasing loops for longer.
        with parallel_chunk_scope(workers):
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=workers
            ) as pool:
                chunks = pool.map(run_slice, slices)
                return [outcome for chunk in chunks for outcome in chunk]


class ProcessBackend(ExecutorBackend):
    """Warm-pool multi-process backend: real multi-core execution.

    Stages dispatch onto a persistent pool of forked workers
    (:class:`~repro.exec.shm_pool.WarmPool`) that stays alive for the
    backend's whole lifetime — fork cost is paid once per run, not once
    per stage — and each worker receives one contiguous task-index slice
    per stage, mirroring :class:`ThreadBackend`'s dispatch geometry.

    Data crosses process boundaries zero-copy where it counts: large
    arrays and :class:`~repro.geometry.batch.GeometryBatch` planes map
    into ``multiprocessing.shared_memory`` segments, immutable HDFS
    blocks ship once per pool lifetime, and result ndarrays return
    through preallocated shared arenas (:mod:`repro.exec.shm`).

    The pool itself lives in a module registry under an integer
    *pool key* — never on the backend instance, which must stay
    picklable inside shipped task closures.  A backend that owns its key
    releases the pool when it is garbage-collected; a service can pass a
    shared *pool_key* so many backends (one per query environment) reuse
    one warm pool, releasing it at ``service.close()``.

    Where ``fork`` is missing the backend degrades to
    :class:`ThreadBackend` semantics — charging ``exec.backend_fallback``
    once and recording a warning surfaced on the run's ``RunReport``.
    """

    name = "process"

    def __init__(self, workers: int = 1, pool_key: "int | None" = None):
        super().__init__(workers)
        self._owns_pool = pool_key is None
        self._pool_key = pool_key
        self._fallback_noted = False
        #: warning strings surfaced on RunReport.warnings by the systems.
        self.warnings: tuple = ()

    @staticmethod
    def available() -> bool:
        """Whether this platform supports fork-based process pools."""
        return hasattr(os, "fork") and (
            "fork" in multiprocessing.get_all_start_methods()
        )

    def _key(self) -> int:
        from . import shm_pool

        if self._pool_key is None:
            self._pool_key = shm_pool.reserve_key()
            # Release the pool when the owning backend dies.  The pid
            # guard keeps by-value copies of this backend unpickled in
            # workers from tearing down the driver's live pool.
            weakref.finalize(
                self, shm_pool.release_pool, self._pool_key, os.getpid()
            )
        return self._pool_key

    def close(self) -> None:
        """Release the owned warm pool (idempotent; no-op when shared)."""
        from . import shm_pool

        if self._owns_pool and self._pool_key is not None:
            shm_pool.release_pool(self._pool_key, os.getpid())
            self._pool_key = None

    def warm_up(self) -> None:
        """Fork the workers now (from the calling thread).

        Services call this from the main thread at construction so the
        fork never happens on a dispatcher thread mid-query.
        """
        from . import shm_pool

        if self.available():
            shm_pool.get_pool(self._key(), self.workers)

    def _note_fallback(self, shared: Counters) -> None:
        if not self._fallback_noted:
            self._fallback_noted = True
            shared.add("exec.backend_fallback", 1)
            self.warnings = self.warnings + (
                "process backend unavailable on this platform "
                "(no fork start method); degraded to thread semantics",
            )

    def _execute(self, fns, shared):
        if not self.available():  # pragma: no cover - non-POSIX fallback
            self._note_fallback(shared)
            return ThreadBackend(self.workers)._execute(fns, shared)
        from . import shm_pool

        pool = shm_pool.get_pool(self._key(), self.workers)
        slices = _even_slices(len(fns), self.workers)
        return pool.run_stage(fns, shared, slices)


BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def resolve_backend(
    backend: "str | ExecutorBackend | None" = None, workers: int = 1
) -> ExecutorBackend:
    """Build the executor for a run.

    *backend* is a name from :data:`BACKENDS`, an already-built backend
    (returned as-is), or None — meaning serial for ``workers <= 1`` and
    the best available parallel backend (process, else thread) above.
    """
    if isinstance(backend, ExecutorBackend):
        return backend
    if backend is None:
        if workers <= 1:
            return SerialBackend()
        backend = "process" if ProcessBackend.available() else "thread"
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {backend!r}; options: {sorted(BACKENDS)}"
        ) from None
    return cls(workers)
