"""Task isolation for the executor backends.

A *task* is one unit of substrate work — a MapReduce map/reduce attempt
or one RDD partition of a stage.  To run tasks concurrently while keeping
the run's accounting bit-identical to serial execution, every task body
executes against its own scratch state:

* **Counters** — charges made through the run's shared
  :class:`~repro.metrics.Counters` instance are redirected (thread-local,
  per-instance) into a scratch ledger captured in the task's
  :class:`TaskOutcome`.  The caller merges scratches back in task-index
  order, so the shared counters end up identical no matter how the tasks
  were interleaved — or in which process they ran.
* **Side outputs** — task bodies that need to hand structured data back
  to the driver (e.g. SpatialHadoop's reducers materializing partitions)
  call :func:`emit` instead of mutating closure state; closure mutation
  is invisible to the driver when the task ran in another process.
* **Errors** — modelled failures (broken pipes, OOM) raised inside a
  task are captured, not propagated, and re-raised by the merge loop at
  the failing task's index, reproducing serial failure order exactly.
* **Timing** — each outcome carries the real wall-clock seconds of the
  task body, surfaced in ``RunReport.engine_profile["exec"]`` so real
  multi-core speedup is observable next to the simulated seconds.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from ..metrics import _REDIRECT, Counters
from ..trace import core as _trace

__all__ = ["TaskOutcome", "run_task", "emit", "redirect_counters"]


@dataclass
class TaskOutcome:
    """Everything one task attempt produced, ready to merge in order."""

    index: int
    result: Any = None
    counters: Counters = field(default_factory=Counters)
    side: list = field(default_factory=list)  # [(key, value), ...] in emit order
    error: Optional[BaseException] = None
    seconds: float = 0.0
    #: The task's finished trace span (None when tracing is off).  It is
    #: recorded *detached* and grafted by ``merge_outcomes`` in task-index
    #: order so the trace tree is identical on every backend.
    span: Optional[_trace.Span] = None


@contextmanager
def redirect_counters(shared: Counters, sink: Counters) -> Iterator[None]:
    """Route charges against *shared* into *sink* for the current thread."""
    sinks = getattr(_REDIRECT, "sinks", None)
    if sinks is None:
        sinks = _REDIRECT.sinks = {}
    key = shared.token
    prev = sinks.get(key)
    sinks[key] = sink
    try:
        yield
    finally:
        if prev is None:
            del sinks[key]
        else:
            sinks[key] = prev


#: The side-output list of the task currently running in this thread.
def _current_side() -> Optional[list]:
    return getattr(_REDIRECT, "task_side", None)


def emit(key: Any, value: Any) -> None:
    """Record a (key, value) side output of the current task.

    Side outputs are the process-safe replacement for mutating closure
    state from a task body: they travel back to the driver inside the
    :class:`TaskOutcome` and are merged in task-index order.
    """
    side = _current_side()
    if side is None:
        raise RuntimeError(
            "emit() called outside a task body; side outputs only exist "
            "while an ExecutorBackend is running the task"
        )
    side.append((key, value))


def run_task(index: int, fn: Callable[[], Any], shared: Counters) -> TaskOutcome:
    """Execute one task body in isolation and capture its outcome."""
    outcome = TaskOutcome(index=index)
    prev_side = getattr(_REDIRECT, "task_side", None)
    _REDIRECT.task_side = outcome.side
    start = time.perf_counter()
    try:
        with redirect_counters(shared, outcome.counters):
            if _trace.active():
                # Detached: the span must not attach to whatever happens to
                # be open in *this* thread (worker threads have no open
                # spans; the serial backend would attach here but parallel
                # ones could not) — merge_outcomes grafts it in task-index
                # order instead, so the tree is backend-independent.
                with _trace.span(
                    "task", kind="task", counters=shared, detach=True,
                    index=index,
                ) as sp:
                    outcome.span = sp
                    outcome.result = fn()
            else:
                outcome.result = fn()
    except Exception as err:  # modelled failures surface via the merge loop
        outcome.error = err
    finally:
        outcome.seconds = time.perf_counter() - start
        _REDIRECT.task_side = prev_side
    return outcome
