"""The persistent warm worker pool behind :class:`ProcessBackend`.

The previous process path forked a fresh ``ProcessPoolExecutor`` for
*every stage* and shipped one pickled index per task; at Table-1 scale
that meant ~9 pool setups and ~850 task round-trips per join, and the
backend measured **slower than serial**.  This pool inverts the design:

* **fork once per run** — workers are forked on the first parallel stage
  and stay alive across every later stage (and, through a shared pool
  key, across every query of a :class:`~repro.service.SpatialQueryService`);
* **one round-trip per worker per stage** — the driver pickles the stage
  payload once, broadcasts the same bytes to every worker, and assigns
  each worker one contiguous task-index slice, exactly like
  :class:`~repro.exec.backend.ThreadBackend`;
* **zero-copy data plane** — large arrays and ``GeometryBatch`` planes
  cross through ``multiprocessing.shared_memory`` segments owned by the
  pool's :class:`~repro.exec.shm.ShmRegistry`; immutable HDFS blocks ship
  once per pool lifetime; result arrays return through preallocated
  per-worker arenas (see :mod:`repro.exec.shm`).

Determinism is untouched: workers run the same
:func:`~repro.exec.task.run_task` isolation as every other backend, the
slices are concatenated in task-index order, and trace spans recorded in
workers graft through the ordinary merge.  Pools are registered in a
module table keyed by integer *pool keys* (never stored on backend
instances, which must stay picklable inside task closures); cleanup runs
on owner finalization, explicit release, and a process-exit backstop.
"""

from __future__ import annotations

import atexit
import itertools
import os
import sys
import threading
import traceback
import weakref
from typing import Optional, Sequence

from ..metrics import Counters
from ..trace import core as _trace
from .shm import (
    ArenaRef,
    AttachCache,
    ResultArena,
    ShmRegistry,
    _attach_segment,
    _create_segment,
    _unlink_segment,
    dump_payload,
    dump_results,
    load_payload,
    load_results,
)
from .task import run_task

__all__ = [
    "WarmPool",
    "PoolBrokenError",
    "reserve_key",
    "get_pool",
    "release_pool",
    "shutdown_warm_pools",
]

#: repro-lint whole-program declarations (WRK001).  ``_worker_main`` is
#: the warm worker's own loop — its body executes in the forked child —
#: and any function-valued argument reaching ``WarmPool.run_stage``
#: crosses the pipe into that loop.
_WORKER_ENTRY_POINTS = ("_worker_main",)
_DISPATCH_POINTS = ("WarmPool.run_stage",)

#: Initial size of each worker's shared result arena; grown (doubled past
#: the observed need) whenever a stage's results overflow into inline
#: pickle bytes.
DEFAULT_ARENA_BYTES = 1 << 22


class PoolBrokenError(RuntimeError):
    """A worker died or desynchronized; the pool was torn down."""


class _PoolState:
    """What :class:`~repro.exec.shm.ShipPickler` needs from the pool."""

    def __init__(self, registry: ShmRegistry, importable_modules):
        self.registry = registry
        self.importable_modules = importable_modules
        #: id(obj) -> (weakref, token) ship-once memo (driver side).
        self._known: dict[int, tuple] = {}
        self._tokens = itertools.count(1)
        self._dead_tokens: list[int] = []

    def known_token(self, obj):
        # id() here is a memo hint only — the weakref identity check on
        # the next line rejects any address-reuse collision, and the
        # cross-process key is the explicit monotonic token, never id().
        entry = self._known.get(id(obj))  # repro: noqa[DET001]
        if entry is not None and entry[0]() is obj:
            return entry[1], False
        token = next(self._tokens)
        dead = self._dead_tokens

        def _on_dead(_wr, *, _dead=dead, _token=token):
            _dead.append(_token)

        self._known[id(obj)] = (  # repro: noqa[DET001]
            weakref.ref(obj, _on_dead), token,
        )
        return token, True

    def drain_dead_tokens(self) -> list[int]:
        if not self._dead_tokens:
            return []
        # The death callbacks captured this exact list: clear in place.
        tokens = list(self._dead_tokens)
        self._dead_tokens.clear()
        self._known = {
            key: entry for key, entry in self._known.items()
            if entry[0]() is not None
        }
        return tokens


class WarmPool:
    """A fork-once pool of warm workers speaking the shm stage protocol."""

    def __init__(self, workers: int, arena_bytes: int = DEFAULT_ARENA_BYTES):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self.workers = max(1, int(workers))
        self.registry = ShmRegistry()
        self.state = _PoolState(self.registry, frozenset(sys.modules))
        self.broken = False
        self._closed = False
        self._lock = threading.Lock()
        self._conns = []
        self._procs = []
        self._arenas: list = [None] * self.workers  # (SharedMemory, size)
        self._arena_bytes = [arena_bytes] * self.workers
        self.stats = {
            "stages": 0,
            "payload_bytes": 0,
            "result_bytes": 0,
            "arena_overflow_bytes": 0,
        }
        try:
            for _ in range(self.workers):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child,), daemon=True
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
        except BaseException:
            self.shutdown()
            raise

    # ------------------------------------------------------------ dispatch
    def run_stage(
        self,
        fns: Sequence,
        shared: Counters,
        slices: Sequence[tuple[int, int]],
    ) -> list:
        """Run one stage: broadcast the payload, collect ordered outcomes.

        *slices* is a list of ``(lo, hi)`` task-index ranges, one per
        participating worker, covering ``range(len(fns))`` contiguously.
        """
        with self._lock:
            if self.broken or self._closed:
                raise PoolBrokenError("warm pool is not available")
            seg_forgets = self.registry.drain_forgets()
            token_forgets = self.state.drain_dead_tokens()
            trace_on = _trace.active()
            payload = dump_payload((list(fns), shared), self.state)
            self.stats["stages"] += 1
            self.stats["payload_bytes"] += len(payload)
            # EVERY worker receives every stage — workers idle this stage
            # get an empty slice.  Skipping them would desynchronize their
            # ship-once KNOWN stores and forget lists from the driver's.
            slices = list(slices)
            while len(slices) < self.workers:
                slices.append((0, 0))
            active = len(slices)
            try:
                for w, (lo, hi) in enumerate(slices):
                    arena_ref = self._ensure_arena(w)
                    self._conns[w].send((
                        "stage", lo, hi, trace_on,
                        seg_forgets, token_forgets, arena_ref,
                    ))
                    self._conns[w].send_bytes(payload)
                outcomes = []
                errors = []
                for w in range(active):
                    status = self._conns[w].recv()
                    if status[0] == "ok":
                        blob = self._conns[w].recv_bytes()
                        self.stats["result_bytes"] += len(blob)
                        arena = self._attach_arena(w)
                        outcomes.extend(load_results(blob, arena))
                        del arena
                        overflow = status[1]
                        if overflow:
                            # Some result arrays fell back to inline
                            # pickle: retire this arena (after reading
                            # it!) and provision a bigger one next stage.
                            self.stats["arena_overflow_bytes"] += overflow
                            need = self._arena_bytes[w] + overflow
                            self._arena_bytes[w] = 2 * need
                            self._drop_arena(w)
                    else:
                        errors.append(f"worker {w}: {status[1]}")
                if errors:
                    raise PoolBrokenError(
                        "warm pool stage failed:\n" + "\n".join(errors)
                    )
                return outcomes
            except (EOFError, ConnectionError, OSError, BrokenPipeError) as err:
                self._teardown()
                raise PoolBrokenError(
                    f"warm pool worker died mid-stage: {err!r}"
                ) from err
            except PoolBrokenError:
                self._teardown()
                raise

    # -------------------------------------------------------------- arenas
    def _ensure_arena(self, w: int) -> ArenaRef:
        entry = self._arenas[w]
        if entry is None:
            size = self._arena_bytes[w]
            seg = _create_segment(size)
            entry = self._arenas[w] = (seg, size)
        return ArenaRef(entry[0].name, entry[1])

    def _drop_arena(self, w: int) -> None:
        entry = self._arenas[w]
        if entry is not None:
            _unlink_segment(entry[0])
            self._arenas[w] = None

    def _attach_arena(self, w: int) -> Optional[ResultArena]:
        entry = self._arenas[w]
        if entry is None:
            return None
        seg, size = entry
        return ResultArena(seg.buf, size)

    # ------------------------------------------------------------ teardown
    def shutdown(self) -> None:
        """Stop workers and unlink every shared segment (idempotent)."""
        with self._lock:
            self._teardown()

    def _teardown(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.broken = True
        for conn in self._conns:
            try:
                conn.send(("shutdown",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for w in range(self.workers):
            self._drop_arena(w)
        self.registry.close()


# ----------------------------------------------------------------- registry
_POOL_KEYS = itertools.count(1)
_POOLS: dict[int, WarmPool] = {}
_POOLS_LOCK = threading.Lock()


def reserve_key() -> int:
    """Allocate a pool key (no pool is created until :func:`get_pool`)."""
    return next(_POOL_KEYS)


def get_pool(key: int, workers: int) -> WarmPool:
    """The live pool registered under *key*, creating/replacing as needed.

    A broken pool (worker death, stage desync) is transparently replaced;
    a pool whose worker count no longer matches is rebuilt.
    """
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is not None and (pool.broken or pool.workers != workers):
            pool.shutdown()
            pool = None
        if pool is None:
            pool = _POOLS[key] = WarmPool(workers)
        return pool


def release_pool(key: int, owner_pid: Optional[int] = None) -> None:
    """Shut down and forget the pool under *key*.

    *owner_pid* guards finalizers that may run in a forked child holding
    a by-value copy of the owning backend: only the creating process
    tears the shared pool down.
    """
    if owner_pid is not None and owner_pid != os.getpid():
        return
    with _POOLS_LOCK:
        pool = _POOLS.pop(key, None)
    if pool is not None:
        pool.shutdown()


def shutdown_warm_pools() -> None:
    """Process-exit backstop: tear down every pool still registered."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_warm_pools)


# -------------------------------------------------------------- worker side
def _worker_main(conn) -> None:
    """Warm worker loop: stages in, outcomes out, until shutdown."""
    cache = AttachCache()
    known: dict = {}
    arena_seg = None  # (name, SharedMemory)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # driver died: exit quietly
            break
        if msg[0] == "shutdown":
            break
        _, lo, hi, trace_on, seg_forgets, token_forgets, arena_ref = msg
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):  # pragma: no cover - driver died
            break
        try:
            cache.forget(seg_forgets)
            for token in token_forgets:
                known.pop(token, None)
            if arena_seg is not None and arena_seg[0] != arena_ref.name:
                try:
                    arena_seg[1].close()
                except BufferError:  # pragma: no cover - view exported
                    pass
                arena_seg = None
            if arena_seg is None:
                arena_seg = (arena_ref.name, _attach_segment(arena_ref.name))
            arena = ResultArena(arena_seg[1].buf, arena_ref.size)
            _trace.set_worker_session(trace_on)
            fns, shared = load_payload(blob, cache, known)
            outcomes = [run_task(i, fns[i], shared) for i in range(lo, hi)]
            result = dump_results(outcomes, arena)
            conn.send(("ok", arena.overflow))
            conn.send_bytes(result)
            del fns, shared, outcomes, result, arena
        except BaseException:
            try:
                conn.send(("err", traceback.format_exc()))
            except (OSError, BrokenPipeError):  # pragma: no cover
                break
    cache.close()
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass
