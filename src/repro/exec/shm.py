"""The zero-copy shared-memory data plane of the warm process pool.

The fork-per-stage process backend paid three taxes the columnar data
plane was built to avoid: every stage re-pickled every
:class:`~repro.geometry.batch.GeometryBatch` buffer into the task pipe,
every task paid one executor round-trip, and every result array crossed
back through a second pickle.  This module supplies the transport that
removes the first and third tax for :mod:`repro.exec.shm_pool`:

* :class:`ShmRegistry` (driver side) places NumPy buffers into named
  ``multiprocessing.shared_memory`` segments **once** — repeated ships of
  the same array resolve to the same segment through an identity cache —
  and owns every segment's lifetime: normal reclaim (the source array was
  garbage collected), explicit :meth:`ShmRegistry.close`, and the
  process-exit backstop all unlink through the registry, so nothing is
  orphaned in ``/dev/shm``.
* :class:`AttachCache` (worker side) maps segments on first reference and
  returns **read-only** array views over the mapped buffer — workers
  never copy, and never mutate, the shared plane.
* :class:`ShipPickler` is the driver→worker payload pickler: large arrays
  become :class:`ArrayRef` descriptors, geometry batches ship through the
  :meth:`GeometryBatch.attach_shared` protocol, immutable HDFS blocks
  ship **once per pool lifetime** (identity-memoized ``KNOWN`` tokens),
  and task closures — unpicklable by reference — are rebuilt by value
  (marshalled code + cells), bound to the worker's real module namespace
  whenever the module is importable there.
* :class:`ResultArena` carries large result arrays (``PairBlock`` data,
  materialized partitions) back through a preallocated per-worker shared
  segment; small object-plane payloads fall back to plain pickle bytes.

Segment names are derived from the creating pid and a monotonic counter —
no RNG, no clock — so repeated runs create the same name sequence and the
leak tests can account for every segment this process ever created.
"""

from __future__ import annotations

import builtins
import importlib
import io
import itertools
import marshal
import os
import pickle
import sys
import types
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

__all__ = [
    "ArrayRef",
    "ArenaRef",
    "ShmRegistry",
    "AttachCache",
    "ResultArena",
    "load_payload",
    "load_results",
    "dump_results",
    "live_segment_names",
    "SHARE_MIN_BYTES",
    "RESULT_MIN_BYTES",
]

#: Arrays below this size are cheaper to inline into the pickle stream
#: than to place in a dedicated segment (page-granular mappings).
SHARE_MIN_BYTES = 1 << 12
#: Result arrays below this size ride inside the result pickle.
RESULT_MIN_BYTES = 1 << 12

_SEG_IDS = itertools.count(1)
#: Names of segments created by this process and not yet unlinked — the
#: leak tests assert this is empty after runs, errors and pool teardown.
_LIVE_SEGMENTS: set[str] = set()


def _segment_name() -> str:
    """Deterministic per-process segment name (pid + monotonic counter)."""
    return f"reproshm_{os.getpid()}_{next(_SEG_IDS)}"


def live_segment_names() -> frozenset[str]:
    """Segments this process created and still owns (test/debug hook)."""
    return frozenset(_LIVE_SEGMENTS)


def _create_segment(size: int) -> shared_memory.SharedMemory:
    seg = shared_memory.SharedMemory(name=_segment_name(), create=True, size=size)
    _LIVE_SEGMENTS.add(seg.name)
    return seg


def _unlink_segment(seg: shared_memory.SharedMemory) -> None:
    name = seg.name
    try:
        seg.close()
    except BufferError:  # pragma: no cover - exported views still alive
        pass
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already reclaimed
        pass
    _LIVE_SEGMENTS.discard(name)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without adopting its lifetime.

    The driver's registry owns every unlink; an attach must therefore
    leave the resource tracker alone entirely.  ``track=False`` (3.13+)
    does exactly that.  On older interpreters the attach would register
    the name with *whichever* tracker the attaching process has — and a
    worker forked before the driver's tracker started lazily spawns its
    own, which then never sees the driver's unregister and floods exit
    with bogus leak warnings.  So pre-3.13 the attach runs with
    ``resource_tracker.register`` swapped for a no-op: only workers (and
    their single dispatch thread) attach, so the swap cannot race.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


# --------------------------------------------------------------------- refs
@dataclass(frozen=True)
class ArrayRef:
    """A picklable descriptor of one shared C-contiguous array."""

    name: str
    dtype: str
    shape: tuple

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ArenaRef:
    """A picklable descriptor of one worker's result segment."""

    name: str
    size: int


# ----------------------------------------------------------------- registry
class ShmRegistry:
    """Driver-side owner of every shared input segment.

    ``share`` is identity-memoized: sharing the same array object twice
    returns the same :class:`ArrayRef` without a second copy.  The cache
    verifies ``ref() is arr`` before trusting a hit — ``id()`` alone can
    be recycled by the allocator after a GC (the repo's DET001 lesson).
    Dead entries queue their segment for reclaim; :meth:`drain_forgets`
    unlinks them and reports the names so workers drop their mappings.
    """

    def __init__(self):
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        #: id(arr) -> (weakref(arr), ArrayRef)
        self._by_id: dict[int, tuple] = {}
        self._dead: list[str] = []
        self.bytes_shared = 0
        self.segments_created = 0
        self._closed = False

    def __len__(self) -> int:
        return len(self._segments)

    def share(self, arr: np.ndarray) -> Optional[ArrayRef]:
        """Place *arr* in shared memory (memoized); None = inline instead.

        Object-dtype arrays and tiny arrays are not worth a segment; the
        caller pickles those inline.
        """
        if self._closed:
            raise RuntimeError("registry is closed")
        if arr.dtype == object or arr.nbytes < SHARE_MIN_BYTES:
            return None
        # id() here is a cache hint only — the weakref identity check on
        # the next line rejects any address-reuse collision.
        entry = self._by_id.get(id(arr))  # repro: noqa[DET001]
        if entry is not None and entry[0]() is arr:
            return entry[1]
        data = np.ascontiguousarray(arr)
        seg = _create_segment(data.nbytes)
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)
        view[...] = data
        ref = ArrayRef(seg.name, data.dtype.str, tuple(data.shape))
        self._segments[seg.name] = seg
        self.bytes_shared += data.nbytes
        self.segments_created += 1

        def _on_dead(_wr, *, _self=weakref.ref(self), _name=seg.name):
            registry = _self()
            if registry is not None:
                registry._dead.append(_name)

        self._by_id[id(arr)] = (  # repro: noqa[DET001]
            weakref.ref(arr, _on_dead), ref,
        )
        return ref

    def drain_forgets(self) -> list[str]:
        """Unlink segments whose source arrays died; names for workers."""
        if not self._dead:
            return []
        names, self._dead = self._dead, []
        for name in names:
            seg = self._segments.pop(name, None)
            if seg is not None:
                _unlink_segment(seg)
        # Dead identity-cache entries point at dead weakrefs; sweep them.
        self._by_id = {
            key: entry for key, entry in self._by_id.items()
            if entry[0]() is not None
        }
        return names

    def close(self) -> None:
        """Unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for seg in self._segments.values():
            _unlink_segment(seg)
        self._segments.clear()
        self._by_id.clear()
        self._dead.clear()


# -------------------------------------------------------------- worker side
class AttachCache:
    """Worker-side cache of mapped segments; views are read-only."""

    def __init__(self):
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def get(self, ref: ArrayRef) -> np.ndarray:
        """A read-only array view over the referenced segment."""
        seg = self._segments.get(ref.name)
        if seg is None:
            seg = self._segments[ref.name] = _attach_segment(ref.name)
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
        view.flags.writeable = False
        return view

    def forget(self, names) -> None:
        """Drop mappings of reclaimed segments (deferred while views live)."""
        for name in names:
            seg = self._segments.pop(name, None)
            if seg is not None:
                try:
                    seg.close()
                except BufferError:  # pragma: no cover - view still exported
                    pass

    def close(self) -> None:
        """Drop every mapping (worker shutdown)."""
        self.forget(list(self._segments))


class ResultArena:
    """Bump allocator over one preallocated shared result segment.

    The **driver** creates (and unlinks) the segment; the worker attaches
    and writes result arrays sequentially.  When a stage's results exceed
    the arena, the overflow arrays fall back to inline pickle bytes and
    the worker reports how much was missing so the driver can grow the
    arena for the next stage.
    """

    ALIGN = 64

    def __init__(self, buf: memoryview, size: int):
        self._buf = buf
        self.size = size
        self.used = 0
        self.overflow = 0

    def reset(self) -> None:
        """Recycle the arena for the next stage."""
        self.used = 0
        self.overflow = 0

    def put(self, data: np.ndarray) -> Optional[int]:
        """Copy *data* into the arena; returns its offset, or None if full."""
        start = -(-self.used // self.ALIGN) * self.ALIGN
        if start + data.nbytes > self.size:
            self.overflow += data.nbytes
            return None
        view = np.ndarray(data.shape, dtype=data.dtype,
                          buffer=self._buf[start:start + data.nbytes])
        view[...] = data
        self.used = start + data.nbytes
        return start

    def read(self, offset: int, dtype: str, shape: tuple) -> np.ndarray:
        """Copy one array back out (driver side)."""
        dt = np.dtype(dtype)
        count = 1
        for dim in shape:
            count *= dim
        nbytes = count * dt.itemsize
        view = np.ndarray(shape, dtype=dt, buffer=self._buf[offset:offset + nbytes])
        return np.array(view)  # materialize: the arena is reused next stage


# ------------------------------------------------- unpickle-time resolution
#: Worker-side attach cache / KNOWN store active during payload loading,
#: and driver-side arena active during result loading.  Both sides
#: unpickle on one thread at a time (the pool serializes stages), so a
#: module slot is sufficient — and keeps the reduce functions picklable.
_ACTIVE_CACHE: Optional[AttachCache] = None
_ACTIVE_KNOWN: Optional[dict] = None
_ACTIVE_ARENA: Optional[ResultArena] = None


def _attach_array(ref: ArrayRef) -> np.ndarray:
    return _ACTIVE_CACHE.get(ref)


def _arena_array(offset: int, dtype: str, shape: tuple) -> np.ndarray:
    return _ACTIVE_ARENA.read(offset, dtype, shape)


def _attach_batch(refs: tuple):
    from ..geometry.batch import GeometryBatch

    return GeometryBatch.from_shared(refs, _resolve_plane)


def _resolve_plane(ref):
    """One plane of a shared batch: an ArrayRef or an inlined array."""
    if isinstance(ref, ArrayRef):
        return _ACTIVE_CACHE.get(ref)
    return ref


def _known_fetch(token: int):
    try:
        return _ACTIVE_KNOWN[token]
    except KeyError:  # pragma: no cover - driver/worker memo drift
        raise RuntimeError(
            f"shared-object token {token} unknown to this worker; the "
            "driver's ship-once memo and the worker store diverged"
        ) from None


def _known_store(token: int, obj):
    _ACTIVE_KNOWN[token] = obj
    return obj


def _load_module(name: str) -> types.ModuleType:
    return importlib.import_module(name)


# ----------------------------------------------- by-value function shipping
class _EmptyCell:
    """Sentinel for closure cells that were empty at pickling time."""


_EMPTY_CELL = _EmptyCell()


def _make_function(code_bytes, module: Optional[str], name, qualname, ncells):
    """Build the function skeleton (cells empty, state filled later).

    When *module* is importable here the function binds to the real
    module namespace — module-level mutables (redirect tables, registries)
    keep their identity.  Otherwise a fresh globals dict is used and
    :func:`_fill_function` installs the shipped global values.
    """
    code = marshal.loads(code_bytes)
    g = None
    if module is not None:
        try:
            g = importlib.import_module(module).__dict__
        except Exception:
            g = None
    if g is None:
        g = {"__builtins__": builtins, "__repro_synthesized__": True}
    cells = tuple(types.CellType() for _ in range(ncells))
    fn = types.FunctionType(code, g, name, None, cells or None)
    fn.__qualname__ = qualname
    return fn


def _fill_function(fn, state):
    """State setter of the 6-tuple reduce: runs after memoization, so
    cell cycles (a closure referencing itself) rebuild correctly."""
    shipped = state.get("globals")
    if shipped and fn.__globals__.get("__repro_synthesized__"):
        # Only a synthesized namespace accepts shipped globals; a real
        # module dict must never be clobbered with stale copies.
        fn.__globals__.update(shipped)
    fn.__defaults__ = state["defaults"]
    fn.__kwdefaults__ = state["kwdefaults"]
    if state["dict"]:
        fn.__dict__.update(state["dict"])
    for cell, value in zip(fn.__closure__ or (), state["cells"]):
        if not isinstance(value, _EmptyCell):
            cell.cell_contents = value


def _global_names(code: types.CodeType) -> set:
    """Global names referenced by *code*, including nested code objects."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _global_names(const)
    return names


def _is_importable(obj, module_name: str, qualname: str) -> bool:
    module = sys.modules.get(module_name)
    if module is None:
        return False
    target = module
    try:
        for part in qualname.split("."):
            target = getattr(target, part)
    except AttributeError:
        return False
    return target is obj


# ----------------------------------------------------------------- picklers
class ShipPickler(pickle.Pickler):
    """Driver→worker payload pickler of the warm pool.

    *pool_state* provides the shared plumbing: ``registry`` (segment
    owner), ``known_token(obj)`` (ship-once identity memo, returning
    ``(token, first_time)``), and ``importable_modules`` (modules the
    forked workers inherited — anything else ships by value).
    """

    def __init__(self, file, pool_state):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.state = pool_state

    def reducer_override(self, obj):
        """Route functions, modules, arrays, batches and blocks through
        the shared-memory transports; everything else pickles normally."""
        if isinstance(obj, types.FunctionType):
            return self._reduce_function(obj)
        if isinstance(obj, types.ModuleType):
            return (_load_module, (obj.__name__,))
        if isinstance(obj, np.ndarray) and type(obj) is np.ndarray:
            ref = self.state.registry.share(obj)
            if ref is None:
                return NotImplemented
            return (_attach_array, (ref,))
        klass = type(obj)
        if klass.__name__ == "GeometryBatch":
            from ..geometry.batch import GeometryBatch

            if klass is GeometryBatch:
                return (_attach_batch,
                        (obj.attach_shared(self.state.registry),))
        if klass.__name__ == "Block":
            from ..hdfs.filesystem import Block

            if klass is Block:
                return self._reduce_known(obj)
        return NotImplemented

    # -- ship-once immutables --------------------------------------------
    def _reduce_known(self, block):
        token, first = self.state.known_token(block)
        if not first:
            return (_known_fetch, (token,))
        return (_known_store, (token, _Shipment(block)))

    # -- by-value functions ----------------------------------------------
    def _reduce_function(self, fn):
        module_name = getattr(fn, "__module__", None)
        qualname = getattr(fn, "__qualname__", fn.__name__)
        if (
            module_name is not None
            and module_name in self.state.importable_modules
            and _is_importable(fn, module_name, qualname)
        ):
            return NotImplemented  # plain by-reference pickling
        code = fn.__code__
        cells = []
        for cell in fn.__closure__ or ():
            try:
                cells.append(cell.cell_contents)
            except ValueError:  # not yet filled (self-referential defs)
                cells.append(_EMPTY_CELL)
        bind_module = (
            module_name
            if module_name in self.state.importable_modules
            else None
        )
        shipped_globals = {}
        if bind_module is None:
            fn_globals = fn.__globals__
            for name in sorted(_global_names(code)):
                if name in fn_globals:
                    shipped_globals[name] = fn_globals[name]
        state = {
            "defaults": fn.__defaults__,
            "kwdefaults": fn.__kwdefaults__,
            "dict": fn.__dict__ or None,
            "cells": cells,
            "globals": shipped_globals,
        }
        return (
            _make_function,
            (
                marshal.dumps(code),
                bind_module,
                fn.__name__,
                qualname,
                len(cells),
            ),
            state,
            None,
            None,
            _fill_function,
        )


class _Shipment:
    """Wraps a first-time shipped object so its payload pickles normally
    (returning the object itself from a reducer would recurse)."""

    __slots__ = ("obj",)

    def __init__(self, obj):
        self.obj = obj

    def __reduce__(self):
        from ..hdfs.filesystem import Block

        block = self.obj
        if isinstance(block, Block):
            return (
                _rebuild_block,
                (block.records, block.nbytes, block.aux, block.aux_nbytes),
            )
        raise TypeError(  # pragma: no cover - only blocks ship-once today
            f"no shipment protocol for {type(block).__name__}"
        )


def _rebuild_block(records, nbytes, aux, aux_nbytes):
    from ..hdfs.filesystem import Block

    return Block(records, nbytes, aux, aux_nbytes)


class ResultPickler(pickle.Pickler):
    """Worker→driver outcome pickler: large arrays go through the arena."""

    def __init__(self, file, arena: Optional[ResultArena]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.arena = arena

    def reducer_override(self, obj):
        """Divert large non-object result arrays into the arena."""
        if (
            isinstance(obj, np.ndarray)
            and type(obj) is np.ndarray
            and obj.dtype != object
            and obj.nbytes >= RESULT_MIN_BYTES
            and self.arena is not None
        ):
            data = np.ascontiguousarray(obj)
            offset = self.arena.put(data)
            if offset is None:  # arena full: inline this one
                return NotImplemented
            return (
                _arena_array,
                (offset, data.dtype.str, tuple(data.shape)),
            )
        return NotImplemented


# -------------------------------------------------------------- entry points
def dump_payload(payload, pool_state) -> bytes:
    """Pickle a stage payload once (broadcast to every worker)."""
    buf = io.BytesIO()
    ShipPickler(buf, pool_state).dump(payload)
    return buf.getvalue()


def load_payload(blob: bytes, cache: AttachCache, known: dict):
    """Worker side: unpickle a stage payload against the attach cache."""
    global _ACTIVE_CACHE, _ACTIVE_KNOWN
    _ACTIVE_CACHE, _ACTIVE_KNOWN = cache, known
    try:
        return pickle.loads(blob)
    finally:
        _ACTIVE_CACHE = _ACTIVE_KNOWN = None


def dump_results(outcomes, arena: Optional[ResultArena]) -> bytes:
    """Worker side: pickle outcomes, diverting large arrays to the arena.

    An outcome whose payload cannot pickle is replaced by an error
    outcome carrying the pickling failure — the merge loop then raises it
    at that task's index, like any other task error.
    """
    if arena is not None:
        arena.reset()
    try:
        buf = io.BytesIO()
        ResultPickler(buf, arena).dump(outcomes)
        return buf.getvalue()
    except Exception:
        if arena is not None:
            arena.reset()
        safe = []
        for outcome in outcomes:
            try:
                probe = io.BytesIO()
                ResultPickler(probe, arena).dump(outcome)
                safe.append(outcome)
            except Exception as err:
                from .task import TaskOutcome

                safe.append(TaskOutcome(
                    index=outcome.index,
                    error=RuntimeError(
                        f"task {outcome.index} produced an unpicklable "
                        f"outcome: {type(err).__name__}: {err}"
                    ),
                    seconds=outcome.seconds,
                ))
        if arena is not None:
            arena.reset()
        buf = io.BytesIO()
        ResultPickler(buf, arena).dump(safe)
        return buf.getvalue()


def load_results(blob: bytes, arena: Optional[ResultArena]):
    """Driver side: unpickle outcomes, copying arrays out of the arena."""
    global _ACTIVE_ARENA
    _ACTIVE_ARENA = arena
    try:
        return pickle.loads(blob)
    finally:
        _ACTIVE_ARENA = None
