"""Top-level convenience API.

Two entry points cover the common uses of the repo:

* :func:`repro.experiments.run_experiment` — run a paper experiment cell
  (named dataset pair, named cluster, extrapolated to paper scale).
* :func:`spatial_join` (here) — run *your own* data through one of the
  three systems end to end and get a costed :class:`RunReport` back.

::

    from repro import spatial_join
    from repro.data import census_blocks, taxi_points

    report = spatial_join(
        taxi_points(2_000, seed=7), census_blocks(200, seed=8),
        system="SpatialSpark", cluster="WS", workers=4,
    )
    print(report.breakdown_seconds())
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .cluster.costmodel import CostParams
from .cluster.specs import ClusterConfig
from .core.predicate import INTERSECTS, JoinPredicate
from .exec.backend import ExecutorBackend
from .systems import make_system
from .systems.base import RunEnvironment, RunReport

__all__ = ["spatial_join"]


def spatial_join(
    left: Sequence,
    right: Sequence,
    *,
    system: str = "SpatialSpark",
    predicate: JoinPredicate = INTERSECTS,
    cluster: Union[str, ClusterConfig] = "WS",
    workers: int = 1,
    backend: Union[str, ExecutorBackend, None] = None,
    block_size: int = 1 << 16,
    seed: Optional[int] = None,
    cost_params: Optional[CostParams] = None,
    system_kwargs: Optional[dict] = None,
    trace: bool = False,
) -> RunReport:
    """Join *left* with *right* on a simulated cluster; return a costed report.

    Parameters
    ----------
    left, right:
        The two inputs — sequences of :class:`~repro.geometry.primitives.
        Geometry` objects, :class:`~repro.data.loaders.SpatialRecord`
        lists, or columnar :class:`~repro.geometry.batch.GeometryBatch`
        instances (results and counters are identical either way).
    system:
        ``"HadoopGIS"``, ``"SpatialHadoop"`` or ``"SpatialSpark"``.
    predicate:
        Join semantics; the default is the paper's *intersects*.  Use
        :func:`repro.core.within_distance` for ε-distance joins.
    cluster:
        A paper config name (``"WS"``, ``"EC2-10"`` …), ``EC2-<n>`` for
        any node count, or a :class:`ClusterConfig`.
    workers, backend:
        Task execution backend for the run (see :mod:`repro.exec`);
        parallel backends change wall-clock time only, never results.
    block_size:
        Simulated HDFS block size for the staged inputs.
    seed:
        RNG seed for the systems' sampling steps (default:
        :data:`repro.experiments.runner.DEFAULT_SEED`).
    cost_params:
        Optional cost-model overrides used when costing the clock.
    system_kwargs:
        Extra keyword arguments for the system constructor (e.g.
        ``{"sample_fraction": 0.1}``).
    trace:
        Record a :mod:`repro.trace` span tree of the run and attach it as
        ``report.trace`` (export with
        :func:`repro.trace.write_chrome_trace` or analyze with
        :func:`repro.trace.skew_report`).  Tracing never changes results:
        pairs and counter totals are bit-identical with it on or off.

    Unlike :func:`~repro.experiments.run_experiment`, no paper-scale
    extrapolation happens: the data you pass is the data that runs, and
    the report's seconds describe exactly that workload on the chosen
    cluster.
    """
    from .experiments.runner import DEFAULT_SEED, resolve_cluster

    config = resolve_cluster(cluster)
    env = RunEnvironment.create(
        config,
        block_size=block_size,
        seed=DEFAULT_SEED if seed is None else seed,
        workers=workers,
        backend=backend,
    )
    sys_obj = make_system(system, **(system_kwargs or {}))
    if trace:
        from .trace import Tracer
        from .trace.core import span as trace_span

        tracer = Tracer()
        with tracer.session(
            "spatial_join", kind="experiment", counters=env.counters,
            system=sys_obj.name, cluster=config.name,
        ):
            with trace_span(sys_obj.name, kind="run", counters=env.counters):
                report = sys_obj.run(env, left, right, predicate)
        report.trace = tracer.root
    else:
        report = sys_obj.run(env, left, right, predicate)
    return report.costed(cost_params, cluster=config)
