"""Top-level convenience API.

Three entry points cover the common uses of the repo:

* :func:`repro.experiments.run_experiment` — run a paper experiment cell
  (named dataset pair, named cluster, extrapolated to paper scale).
* :func:`spatial_join` (here) — run *your own* data through one of the
  three systems end to end and get a costed :class:`RunReport` back.
* :class:`repro.service.SpatialQueryService` — prepare datasets once and
  serve many queries against them (joins, range queries, cached results).

::

    from repro import spatial_join
    from repro.data import census_blocks, taxi_points

    report = spatial_join(
        taxi_points(2_000, seed=7), census_blocks(200, seed=8),
        system="SpatialSpark", cluster="WS", workers=4,
    )
    print(report.breakdown_seconds())
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .cluster.costmodel import CostParams
from .cluster.specs import ClusterConfig
from .core.predicate import INTERSECTS, JoinPredicate
from .exec.backend import ExecutorBackend
from .systems.base import RunReport

__all__ = ["spatial_join"]


def spatial_join(
    left: Sequence,
    right: Sequence,
    *,
    system: str = "SpatialSpark",
    predicate: Union[JoinPredicate, str] = INTERSECTS,
    cluster: Union[str, ClusterConfig] = "WS",
    workers: int = 1,
    backend: Union[str, ExecutorBackend, None] = None,
    block_size: int = 1 << 16,
    seed: Optional[int] = None,
    cost_params: Optional[CostParams] = None,
    system_kwargs: Optional[dict] = None,
    trace: bool = False,
    plan: object = "auto",
) -> RunReport:
    """Join *left* with *right* on a simulated cluster; return a costed report.

    A thin wrapper over the service layer's one-shot path
    (:func:`repro.service.one_shot_join`): each system's pipeline is the
    composition ``prepare(a) + prepare(b) + join_prepared`` and this
    call runs both halves in one shared environment, so the report
    carries the full IA / IB / DJ breakdown.  Prepare once and query
    repeatedly instead with :class:`repro.service.SpatialQueryService`.

    Parameters
    ----------
    left, right:
        The two inputs — sequences of :class:`~repro.geometry.primitives.
        Geometry` objects, :class:`~repro.data.loaders.SpatialRecord`
        lists, or columnar :class:`~repro.geometry.batch.GeometryBatch`
        instances (results and counters are identical either way).
    system:
        ``"HadoopGIS"``, ``"SpatialHadoop"`` or ``"SpatialSpark"``.
    predicate:
        Join semantics; the default is the paper's *intersects*.  Accepts
        a :class:`~repro.core.JoinPredicate` (see
        :func:`repro.core.within_distance`) or its string spelling:
        ``"intersects"``, ``"within_distance:500"``.
    cluster:
        A paper config name (``"WS"``, ``"EC2-10"`` …), ``EC2-<n>`` for
        any node count, or a :class:`ClusterConfig`.
    workers, backend:
        Task execution backend for the run (see :mod:`repro.exec`);
        parallel backends change wall-clock time only, never results.
    block_size:
        Simulated HDFS block size for the staged inputs.
    seed:
        RNG seed for the systems' sampling steps (default:
        :data:`repro.experiments.runner.DEFAULT_SEED`).
    cost_params:
        Optional cost-model overrides used when costing the clock.
    system_kwargs:
        Extra keyword arguments for the system constructor (e.g.
        ``{"sample_fraction": 0.1}``).  Copied at this boundary — the
        dict you pass is never mutated.
    trace:
        Record a :mod:`repro.trace` span tree of the run and attach it as
        ``report.trace`` (export with
        :func:`repro.trace.write_chrome_trace` or analyze with
        :func:`repro.trace.skew_report`).  Tracing never changes results:
        pairs and counter totals are bit-identical with it on or off.
    plan:
        ``"auto"`` (the default) lets the cost-based planner
        (:mod:`repro.plan`) pick the local-join algorithm, partitioner,
        granularity and broadcast-vs-shuffle strategy for *system* from
        the inputs' statistics.  Pass a frozen
        :class:`~repro.plan.Plan` to pin every knob (the plan's system
        wins over *system*), or ``None`` for the legacy fixed defaults.
        Explicit *system_kwargs* always override plan fields, and result
        pairs are identical whichever way the knobs were chosen.

    Unlike :func:`~repro.experiments.run_experiment`, no paper-scale
    extrapolation happens: the data you pass is the data that runs, and
    the report's seconds describe exactly that workload on the chosen
    cluster.
    """
    from .service.core import one_shot_join

    return one_shot_join(
        left,
        right,
        system=system,
        predicate=predicate,
        cluster=cluster,
        workers=workers,
        backend=backend,
        block_size=block_size,
        seed=seed,
        cost_params=cost_params,
        system_kwargs=system_kwargs,
        trace=trace,
        plan=plan,
    )
