"""Per-rule fixture snippets: one seeded violation per rule, a
``# repro: noqa[...]``-suppressed variant, and a clean variant."""

import textwrap

import pytest

from repro.analysis import LintSession, lint_paths, lint_source


def lint(src, **kwargs):
    return lint_source(textwrap.dedent(src), "<snippet>", **kwargs)


def codes(src, **kwargs):
    return [f.rule for f in lint(src, **kwargs)]


class TestDET001IdAsKey:
    def test_setdefault_grouping(self):
        src = """
            groups = {}
            groups.setdefault(id(phase), []).append(task)
        """
        assert codes(src) == ["DET001"]

    def test_subscript_and_dict_literal(self):
        assert codes("table[id(x)] = 1\n") == ["DET001"]
        assert codes("table = {id(x): 1}\n") == ["DET001"]

    def test_set_membership_and_add(self):
        assert codes("seen.add(id(x))\n") == ["DET001"]
        assert codes("flag = id(x) in seen\n") == ["DET001"]

    def test_key_function(self):
        assert codes("items.sort(key=id)\n") == ["DET001"]

    def test_noqa(self):
        src = "groups.setdefault(id(x), [])  # repro: noqa[DET001]\n"
        assert codes(src) == []

    def test_clean_uses_of_id(self):
        # id() not used as a key — logging an address is fine.
        assert codes("print(id(x))\n") == []
        assert codes("token = id(x) + 1\n") == []


class TestDET002UnseededRng:
    def test_stdlib_module_rng(self):
        src = """
            import random
            random.shuffle(items)
        """
        assert codes(src) == ["DET002"]

    def test_numpy_module_rng(self):
        src = """
            import numpy as np
            values = np.random.rand(10)
        """
        assert codes(src) == ["DET002"]

    def test_unseeded_default_rng(self):
        src = """
            from numpy.random import default_rng
            rng = default_rng()
        """
        assert codes(src) == ["DET002"]

    def test_noqa(self):
        src = """
            import numpy as np
            values = np.random.rand(10)  # repro: noqa[DET002]
        """
        assert codes(src) == []

    def test_seeded_default_rng_is_clean(self):
        src = """
            import numpy as np
            rng = np.random.default_rng((seed, part))
            values = rng.random(10)
        """
        assert codes(src) == []

    def test_unimported_name_is_not_flagged(self):
        # A local variable merely named ``random`` is not the module.
        assert codes("random = helper()\nrandom.shuffle(x)\n") == []


class TestDET003UnorderedIteration:
    def test_for_over_set_union(self):
        src = """
            for key in set(a) | set(b):
                out.append(key)
        """
        assert codes(src) == ["DET003"]

    def test_comprehension_over_set_variable(self):
        src = """
            seen = set()
            pairs = [f(x) for x in seen]
        """
        assert codes(src) == ["DET003"]

    def test_list_call_over_set(self):
        assert codes("order = list({3, 1, 2})\n") == ["DET003"]

    def test_noqa(self):
        src = """
            for key in set(a) | set(b):  # repro: noqa[DET003]
                out.append(key)
        """
        assert codes(src) == []

    def test_sorted_wrapping_is_clean(self):
        src = """
            for key in sorted(set(a) | set(b)):
                out.append(key)
        """
        assert codes(src) == []

    def test_order_free_reducers_are_clean(self):
        assert codes("total = sum(v for v in {1, 2, 3})\n") == []
        assert codes("n = len({1, 2})\nbig = max(set(a))\n") == []

    def test_set_comprehension_target_is_clean(self):
        # set -> set keeps order invisible.
        assert codes("out = {f(x) for x in set(a)}\n") == []

    def test_hot_cell_split_order_must_be_sorted(self):
        # The adaptive repartitioner's discipline: hot cells are
        # processed in ascending cell-id order.  Splitting in
        # set-arrival order would make the output partitioning (and
        # every downstream ledger) depend on hash seeding.
        flagged = """
            hot = {4, 0, 7}
            for cell in hot:
                rows.extend(split(cell))
        """
        assert codes(flagged) == ["DET003"]
        clean = """
            hot = {4, 0, 7}
            for cell in sorted(hot):
                rows.extend(split(cell))
        """
        assert codes(clean) == []


class TestCLK001WallClock:
    def test_perf_counter_outside_whitelist(self):
        src = """
            import time
            t0 = time.perf_counter()
        """
        assert codes(src) == ["CLK001"]

    def test_datetime_now(self):
        src = """
            import datetime
            stamp = datetime.datetime.now()
        """
        assert codes(src) == ["CLK001"]

    def test_noqa(self):
        src = """
            import time
            t0 = time.time()  # repro: noqa[CLK001]
        """
        assert codes(src) == []

    def test_whitelisted_module_is_clean(self):
        src = """
            import time
            t0 = time.perf_counter()
        """
        assert codes(src, module="repro.trace.core") == []

    def test_sleep_is_not_a_clock_read(self):
        assert codes("import time\ntime.sleep(0.1)\n") == []


class TestCTR001CounterLedger:
    def test_typo_key_flagged(self):
        src = """
            def work(counters):
                counters.add("geom.pip_test")
        """
        assert codes(src) == ["CTR001"]

    def test_non_literal_key_flagged(self):
        src = """
            def work(counters, key):
                counters.add(key, 2.0)
        """
        assert codes(src) == ["CTR001"]

    def test_unregistered_subscript_read(self):
        src = """
            def price(counters):
                return counters["geom.pip_test"]
        """
        assert codes(src) == ["CTR001"]

    def test_noqa(self):
        src = """
            def work(counters, key):
                counters.add(key, 2.0)  # repro: noqa[CTR001]
        """
        assert codes(src) == []

    def test_registered_key_is_clean(self):
        src = """
            def work(counters):
                counters.add("geom.pip_tests")
                counters.add("join.candidates", 12)
                return counters["cpu.ops"]
        """
        assert codes(src) == []

    def test_alias_of_counters_attribute_is_tracked(self):
        src = """
            def work(self):
                c = self.counters
                c.add("not.a.key")
        """
        assert codes(src) == ["CTR001"]

    def test_planner_keys_are_registered(self):
        # The planner/calibrator ledger keys ride the same schema gate as
        # every other subsystem: charging them is clean, typos are not.
        src = """
            def work(counters):
                counters.add("plan.candidates", 27)
                counters.add("plan.cached")
                counters.add("plan.observations", 4)
        """
        assert codes(src) == []
        src_typo = """
            def work(counters):
                counters.add("plan.candidate")
        """
        assert codes(src_typo) == ["CTR001"]

    def test_shuffle_skew_keys_are_registered(self):
        # The skew-aware shuffle ledger keys (repro.shuffle) ride the
        # same schema gate: charging them is clean, typos are not.
        src = """
            def work(counters):
                counters.add("shuffle.records_pruned", 74)
                counters.add("shuffle.bytes_pruned", 18640)
                counters.add("shuffle.sfilter_builds", 2)
                counters.add("skew.cells_split")
                counters.add("skew.cells_added", 7)
        """
        assert codes(src) == []
        src_typo = """
            def work(counters):
                counters.add("shuffle.records_prunedd")
        """
        assert codes(src_typo) == ["CTR001"]

    def test_schema_override(self):
        session = LintSession(counter_schema=["custom.key"])
        src = """
            def work(counters):
                counters.add("custom.key")
        """
        assert codes(src, session=session) == []

    def test_plain_set_add_is_not_a_counter(self):
        src = """
            seen = set()
            seen.add("anything")
        """
        assert codes(src) == []


class TestAPI001ExportIntegrity:
    def _write_package(self, tmp_path, init_source, runner_source="run = 1\n"):
        pkg = tmp_path / "pkg"
        (pkg / "sub").mkdir(parents=True)
        (pkg / "__init__.py").write_text(textwrap.dedent(init_source))
        (pkg / "sub" / "__init__.py").write_text("")
        (pkg / "sub" / "runner.py").write_text(runner_source)
        return pkg

    def test_dangling_all_entry(self, tmp_path):
        pkg = self._write_package(
            tmp_path,
            """
            __all__ = ["present", "missing"]
            present = 1
            """,
        )
        findings = lint_paths([pkg])
        assert [f.rule for f in findings] == ["API001"]
        assert "missing" in findings[0].message

    def test_dangling_lazy_export(self, tmp_path):
        pkg = self._write_package(
            tmp_path,
            """
            __all__ = ["run"]
            _EXPORTS = {"run": ("pkg.sub.runner", "gone")}

            def __getattr__(name):
                raise AttributeError(name)
            """,
        )
        findings = lint_paths([pkg])
        assert [f.rule for f in findings] == ["API001"]
        assert "gone" in findings[0].message

    def test_unresolvable_module(self, tmp_path):
        pkg = self._write_package(
            tmp_path,
            """
            _EXPORTS = {"run": ("pkg.sub.nosuch", "run")}
            """,
        )
        findings = lint_paths([pkg])
        assert [f.rule for f in findings] == ["API001"]

    def test_resolving_exports_are_clean(self, tmp_path):
        pkg = self._write_package(
            tmp_path,
            """
            __all__ = ["run", "present"]
            present = 1
            _EXPORTS = {"run": ("pkg.sub.runner", "run")}

            def __getattr__(name):
                raise AttributeError(name)
            """,
        )
        assert lint_paths([pkg]) == []

    def test_lazy_export_missing_from_all(self, tmp_path):
        pkg = self._write_package(
            tmp_path,
            """
            __all__ = ["present"]
            present = 1
            _EXPORTS = {"run": ("pkg.sub.runner", "run")}

            def __getattr__(name):
                raise AttributeError(name)
            """,
        )
        findings = lint_paths([pkg])
        assert [f.rule for f in findings] == ["API001"]
        assert "missing from __all__" in findings[0].message

    def test_exports_without_all_are_not_flagged(self, tmp_path):
        pkg = self._write_package(
            tmp_path,
            """
            _EXPORTS = {"run": ("pkg.sub.runner", "run")}

            def __getattr__(name):
                raise AttributeError(name)
            """,
        )
        assert lint_paths([pkg]) == []

    def test_third_party_modules_are_skipped(self, tmp_path):
        pkg = self._write_package(
            tmp_path,
            """
            _EXPORTS = {"array": ("numpy", "array")}
            """,
        )
        assert lint_paths([pkg]) == []

    def test_noqa(self, tmp_path):
        pkg = self._write_package(
            tmp_path,
            """
            __all__ = [
                "missing",  # repro: noqa[API001]
            ]
            """,
        )
        assert lint_paths([pkg]) == []


class TestSHM001SharedMemoryConfinement:
    def test_direct_import_flagged(self):
        src = """
            import multiprocessing.shared_memory
        """
        assert codes(src) == ["SHM001"]

    def test_from_import_flagged(self):
        src = """
            from multiprocessing.shared_memory import SharedMemory
        """
        assert codes(src) == ["SHM001"]
        src = """
            from multiprocessing import shared_memory
        """
        assert codes(src) == ["SHM001"]

    def test_resource_tracker_flagged(self):
        src = """
            from multiprocessing import resource_tracker
        """
        assert codes(src) == ["SHM001"]

    def test_resolved_call_flagged(self):
        src = """
            from multiprocessing.shared_memory import SharedMemory
            seg = SharedMemory(create=True, size=4096)
        """
        assert codes(src) == ["SHM001", "SHM001"]

    def test_whitelisted_module_is_clean(self):
        src = """
            from multiprocessing.shared_memory import SharedMemory
            seg = SharedMemory(create=True, size=4096)
        """
        assert codes(src, module="repro.exec.shm") == []

    def test_pool_module_goes_through_the_plane(self):
        # shm_pool is NOT whitelisted: it must use repro.exec.shm's
        # abstractions, never raw SharedMemory.
        src = """
            from multiprocessing.shared_memory import SharedMemory
        """
        assert codes(src, module="repro.exec.shm_pool") == ["SHM001"]

    def test_relative_import_is_clean(self):
        assert codes("from . import shared_memory\n") == []

    def test_noqa(self):
        src = "import multiprocessing.shared_memory  # repro: noqa[SHM001]\n"
        assert codes(src) == []

    def test_plain_multiprocessing_is_clean(self):
        src = """
            import multiprocessing
            ctx = multiprocessing.get_context("fork")
        """
        assert codes(src) == []


class TestFrameworkMechanics:
    def test_bare_noqa_suppresses_all_rules(self):
        src = "table[id(x)] = list({1, 2})  # repro: noqa\n"
        assert codes(src) == []

    def test_noqa_only_suppresses_named_rule(self):
        src = "table[id(x)] = list({1, 2})  # repro: noqa[DET001]\n"
        assert codes(src) == ["DET003"]

    def test_select_and_ignore(self):
        src = "import time\nt = time.time()\ntable[id(x)] = t\n"
        assert codes(src, session=LintSession(select=["CLK001"])) == ["CLK001"]
        assert codes(src, session=LintSession(ignore=["CLK001"])) == ["DET001"]
        with pytest.raises(ValueError):
            LintSession(select=["NOPE999"])

    def test_syntax_error_becomes_finding(self):
        assert codes("def broken(:\n") == ["E999"]

    def test_findings_are_sorted_and_fingerprinted(self):
        src = "b[id(y)] = 1\na[id(x)] = 1\n"
        findings = lint(src)
        assert [f.line for f in findings] == [1, 2]
        assert len({f.fingerprint for f in findings}) == 2
